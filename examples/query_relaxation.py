"""Query rewriting: how LotusX recovers answers for broken queries.

Users guess wrong tag names, wrong nesting, and values that don't exist.
This example breaks queries in each of those ways and shows the rewrite
engine's repairs, penalties, and the effect on result ranking.

Run with::

    python examples/query_relaxation.py
"""

from repro import LotusXDatabase
from repro.datasets import generate_dblp

BROKEN = [
    ("//article/writer", "wrong tag: 'writer' is not in the schema"),
    ("//dblp/author", "wrong nesting: authors live one level deeper"),
    ('//article[./journal="journal of dreams"]/title', "value doesn't occur"),
    ("//article[./booktitle]/title", "field from the wrong record type"),
]


def main() -> None:
    database = LotusXDatabase(generate_dblp(publications=500, seed=42))

    for query, why in BROKEN:
        print(f"\n=== {query}")
        print(f"    ({why})")
        exact = database.search(query, rewrite=False)
        print(f"    without rewriting: {exact.total_matches} matches")

        response = database.search(query, k=3)
        print(
            f"    with rewriting:    {response.total_matches} matches"
            f" after trying {response.rewrites_tried} rewrites"
        )
        for hit in response:
            print(f"      [{hit.score.combined:.3f}] {hit.xpath}")
            print(f"        repaired query: {hit.source_query}")
            for step in hit.rewrite_steps:
                print(f"        - {step}")

    # The raw rewrite machinery is also available directly.
    print("\n=== raw rewrite candidates for //article/writer (cheapest first)")
    pattern = database.parse_query("//article/writer")
    for candidate in database.rewriter.candidates(pattern)[:8]:
        print(f"  penalty {candidate.penalty:>4}: {candidate.pattern}")
        print(f"    via {candidate.describe()}")


if __name__ == "__main__":
    main()
