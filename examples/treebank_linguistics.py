"""Deep recursion: twig search over parse trees (Treebank-like).

Linguistic corpora are the classical stress test for XML search: the same
tags (NP inside NP inside VP…) nest to depth 15+, so the DataGuide has
hundreds of paths and parent-child chains are highly selective.  This
example shows where the engine's machinery earns its keep on such data —
guide-pruned evaluation, recursive twigs, and position-aware completion
over a huge path space.

Run with::

    python examples/treebank_linguistics.py
"""

import time

from repro import LotusXDatabase
from repro.datasets import generate_treebank
from repro.twig.algorithms.common import build_streams
from repro.twig.algorithms.twig_stack import twig_stack_match


def main() -> None:
    database = LotusXDatabase(generate_treebank(sentences=150, seed=17))
    stats = database.statistics()
    print(
        f"Corpus: {stats.element_count} elements,"
        f" depth up to {stats.max_depth},"
        f" {stats.distinct_paths} distinct paths from just"
        f" {stats.distinct_tags} tags"
    )

    # Recursive twigs: same-tag nesting.
    print("\n--- recursive structure queries ---")
    for query in ["//NP//NP", "//NP//NP//NP", "//S//S", "//PP/NP/PP"]:
        print(f"  {query:15} -> {len(database.matches(query)):5} matches")

    # Linguistic pattern: a verb phrase whose object NP has a PP attachment.
    query = '//VP[./VB][./NP[./PP]]'
    print(f"\n--- {query} ---")
    for hit in database.search(query, k=3, rewrite=False):
        print(f"  {hit.xpath}")
        print(f"    {hit.snippet[:70]}")

    # Guide pruning shines on recursive data: a parent-child chain admits
    # few of the hundreds of paths each tag occurs at.
    print("\n--- guide-pruned evaluation (same answers, less work) ---")
    pattern = database.parse_query("//sentence/S/NP/NN")
    plain_streams = build_streams(pattern, database.streams)
    pruned_streams = build_streams(pattern, database.streams, database.guide)
    started = time.perf_counter()
    plain = twig_stack_match(pattern, plain_streams)
    plain_ms = (time.perf_counter() - started) * 1000
    started = time.perf_counter()
    pruned = twig_stack_match(pattern, pruned_streams)
    pruned_ms = (time.perf_counter() - started) * 1000
    assert len(plain) == len(pruned)
    print(
        f"  stream volume {sum(map(len, plain_streams.values()))} -> "
        f"{sum(map(len, pruned_streams.values()))},"
        f"  time {plain_ms:.1f} ms -> {pruned_ms:.1f} ms"
    )

    # Position-aware completion stays sharp despite the path explosion.
    print("\n--- completion under //S/NP (deep recursive context) ---")
    np_pattern = database.parse_query("//S/NP")
    for candidate in database.complete_tag(np_pattern, np_pattern.nodes()[1], ""):
        print(f"  {candidate.text:6} x{candidate.count}")


if __name__ == "__main__":
    main()
