"""The LotusX demo flow, scripted: build a twig node by node with
position-aware candidates at every step.

This is exactly what the GUI does behind the canvas — every gesture is a
:class:`repro.engine.session.QueryBuilderSession` method.

Run with::

    python examples/autocomplete_session.py
"""

from repro import LotusXDatabase, QueryBuilderSession
from repro.datasets import generate_dblp


def show(step: str, candidates) -> None:
    print(f"\n{step}")
    for candidate in candidates[:6]:
        paths = f"  e.g. {candidate.sample_paths[0]}" if candidate.sample_paths else ""
        print(f"   {candidate.text:22} x{candidate.count}{paths}")


def main() -> None:
    database = LotusXDatabase(generate_dblp(publications=500, seed=42))
    session = QueryBuilderSession(database)

    # The user drops the first node and types "in..."
    show(
        'user types "in" for the first node:',
        session.suggest_tags(prefix="in"),
    )
    record = session.add_node("inproceedings")

    # Attaching a child — only tags that occur under inproceedings appear.
    show(
        "user opens a child edge under <inproceedings>:",
        session.suggest_tags(parent_id=record),
    )
    venue = session.add_node("booktitle", parent_id=record)

    # Typing a value — candidates come from booktitle values only.
    show(
        'user types "i" into the booktitle node:',
        session.suggest_values(venue, "i"),
    )
    session.set_predicate(venue, "=", "icde")

    # Another branch; the live counter updates after every gesture.
    author = session.add_node("author", parent_id=record)
    session.set_output(author)
    print("\ncurrent twig:", session.query_text())
    print("equivalent XPath:", session.to_xpath())
    print("live result counter:", session.preview_count())

    # Narrow by author-name prefix using value completion.
    show(
        'user types "j" into the author node:',
        session.suggest_values(author, "j"),
    )
    candidates = session.suggest_values(author, "j")
    if candidates:
        session.set_predicate(author, "~", candidates[0].text.split()[0])

    print("\nfinal twig:", session.query_text())
    response = session.run(k=5)
    print(f"{response.total_matches} results:")
    for hit in response:
        print(f"  {hit.xpath}: {hit.snippet}")


if __name__ == "__main__":
    main()
