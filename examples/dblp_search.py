"""Bibliography search — the workload the LotusX demo ran on DBLP.

Shows selective twig queries, ranking breakdowns, order-sensitive
queries, algorithm selection, and evaluation plans on a DBLP-shaped
corpus.

Run with::

    python examples/dblp_search.py
"""

from repro import Algorithm, LotusXDatabase
from repro.datasets import generate_dblp
from repro.twig.algorithms.common import AlgorithmStats


def main() -> None:
    database = LotusXDatabase(generate_dblp(publications=800, seed=42))
    print("Indexed:", database)

    # A typical bibliographic twig: articles about "twig" with their
    # authors; the title branch constrains, the author node is returned.
    query = '//article[./title~"twig"]/author!'
    print(f"\n--- {query} ---")
    response = database.search(query, k=5)
    print(f"{response.total_matches} matches in {response.elapsed_seconds*1000:.1f} ms")
    for hit in response:
        score = hit.score
        print(
            f"  [{score.combined:.3f}  struct={score.structural:.2f}"
            f" text={score.textual:.2f}] {hit.xpath}: {hit.snippet}"
        )

    # Numeric range predicates.
    query = '//inproceedings[./year[.>=2010]][./booktitle="icde"]/title'
    print(f"\n--- {query} ---")
    for hit in database.search(query, k=5):
        print(f"  {hit.xpath}: {hit.snippet}")

    # Order-sensitive twig: title must precede year *in the document* —
    # true for every record here, so ordered matches == unordered.
    unordered = database.parse_query("//article[./title][./year]")
    ordered = database.parse_query("ordered://article[./title][./year]")
    reversed_order = database.parse_query("ordered://article[./year][./title]")
    print("\n--- order sensitivity ---")
    print("unordered matches:        ", len(database.matches(unordered)))
    print("ordered (title<year):     ", len(database.matches(ordered)))
    print("ordered (year<title):     ", len(database.matches(reversed_order)))

    # The evaluation plan, and per-algorithm statistics.
    query = "//dblp//author"
    print(f"\n--- explain {query} ---")
    plan = database.explain(query)
    print("algorithm:", plan["algorithm"])
    for node in plan["nodes"]:
        print(f"  node {node['tag']:8} stream={node['stream_size']}")

    print("\n--- the same query under each algorithm ---")
    for algorithm in (Algorithm.NAIVE, Algorithm.STRUCTURAL_JOIN, Algorithm.TWIG_STACK):
        stats = AlgorithmStats()
        matches = database.matches(query, algorithm, stats)
        print(
            f"  {algorithm.value:16} matches={len(matches):5}"
            f" scanned={stats.elements_scanned:6}"
            f" intermediates={stats.intermediate_results:6}"
        )


if __name__ == "__main__":
    main()
