"""The ICDE 2012 demonstration, scripted.

LotusX was a demo paper; its artifact was a live walkthrough.  This
script *is* that walkthrough: each section exercises one claim from the
abstract and prints the evidence, end to end, on a generated DBLP-shaped
corpus.

Run with::

    python examples/demo_walkthrough.py
"""

from repro import LotusXDatabase, QueryBuilderSession
from repro.datasets import generate_dblp


def banner(claim: str) -> None:
    print(f"\n{'=' * 72}\nCLAIM: {claim}\n{'=' * 72}")


def main() -> None:
    database = LotusXDatabase(generate_dblp(publications=600, seed=42))
    print("Corpus:", database.statistics().as_dict())

    # ------------------------------------------------------------------
    banner(
        '"graphical interface ... without the need of learning query'
        ' language and data schemas"'
    )
    session = QueryBuilderSession(database)
    print("The user knows nothing; the first keystroke already helps:")
    for candidate in session.suggest_tags(prefix="")[:5]:
        print(f"   place a <{candidate.text}> node?  (x{candidate.count})")
    article = session.add_node("article")
    print("\nThe schema panel is inferred, never asked for:")
    from repro.summary.schema import infer_schema

    for line in infer_schema(database.document).to_dtd().splitlines()[:4]:
        print("  ", line)

    # ------------------------------------------------------------------
    banner('"position-aware" and "auto-completion" ... candidates on-the-fly')
    print("Typing into a child slot of <article> proposes only what occurs there:")
    for candidate in session.suggest_tags(parent_id=article, prefix=""):
        print(f"   {candidate.text:10} x{candidate.count}")
    title = session.add_node("title", parent_id=article)
    print('\nTyping "hol" into the title node (values at //article/title only):')
    for candidate in session.suggest_values(title, "hol", whole_values=False)[:3]:
        print(f"   {candidate.text:12} x{candidate.count}")
    global_hits = database.autocomplete.complete_value_global("hol", k=3)
    print("versus the position-blind global pool:", [c.text for c in global_hits])

    # ------------------------------------------------------------------
    banner('"complex twig queries (including order sensitive queries)"')
    session.set_predicate(title, "~", "holistic")
    author = session.add_node("author", parent_id=article)
    session.set_output(author)
    print("twig:", session.query_text())
    print("count:", session.preview_count())
    session.set_ordered(True)
    print("ordered variant count:", session.preview_count())
    session.set_ordered(False)
    optional_note = session.add_node("pages", parent_id=article)
    session.set_optional(optional_note)
    print("with optional pages? branch:", session.query_text())
    print("count (unchanged — optional never filters):", session.preview_count())

    # ------------------------------------------------------------------
    banner('"a new ranking strategy ... to rank the query effectively"')
    response = session.run(k=3, rewrite=False)
    for rank, hit in enumerate(response, start=1):
        score = hit.score
        print(
            f" {rank}. [{score.combined:.3f}"
            f" = struct {score.structural:.2f} + text {score.textual:.2f}]"
            f" {hit.xpath}"
        )
        print("    ", hit.highlighted_snippet)

    # ------------------------------------------------------------------
    banner('"a query rewriting solution ... to rewrite the query effectively"')
    broken = "//article/booktitle"  # articles have journals, not booktitles
    print("broken query:", broken)
    response = database.search(broken, k=2)
    print(
        f"rewritten automatically ({response.rewrites_tried} candidates tried):"
    )
    for hit in response:
        print(f"   {hit.xpath}  via {'; '.join(hit.rewrite_steps)}")

    # ------------------------------------------------------------------
    banner("bonus: the schema-free path — keyword search (SLCA)")
    keyword_response = database.keyword_search("holistic lu", k=3)
    for hit in keyword_response:
        data = hit.as_dict()
        print(f"   [{data['score']:.3f}] <{data['tag']}> {data['snippet'][:70]}")

    print("\nDemo complete — every abstract claim exercised.")


if __name__ == "__main__":
    main()
