"""Quickstart: index a corpus, search it, and peek at every major feature.

Run with::

    python examples/quickstart.py
"""

from repro import LotusXDatabase
from repro.datasets import generate_books


def main() -> None:
    # 1. Build a database from any XML document.  Here we use the bundled
    #    bookstore generator; LotusXDatabase.from_file works on your files.
    database = LotusXDatabase(generate_books(books=60, seed=3))
    print("Indexed:", database)
    print("Statistics:", database.statistics().as_dict())

    # 2. Ranked search with the textual twig syntax.
    print("\n--- search: fantasy books about xml ---")
    response = database.search('//book[./genre="fantasy"][./title~"xml"]')
    for rank, hit in enumerate(response, start=1):
        print(f"{rank}. [{hit.score.combined:.3f}] {hit.xpath}")
        print(f"   {hit.snippet}")

    # 3. If a query has no answers, LotusX rewrites it automatically.
    print("\n--- search with an impossible predicate (watch the rewrite) ---")
    response = database.search('//book[./genre="steampunk"]/title')
    print(
        f"found {response.total_matches} matches,"
        f" rewrites used: {response.used_rewrites}"
    )
    for hit in response.results[:3]:
        print(f"  {hit.xpath}  via: {'; '.join(hit.rewrite_steps)}")

    # 4. Position-aware autocompletion: what can occur under <book>?
    print("\n--- tag candidates under //book ---")
    pattern = database.parse_query("//book")
    for candidate in database.complete_tag(pattern, pattern.root, prefix=""):
        print(f"  {candidate.text:15} x{candidate.count}")

    # 5. Value completion at a position.
    print("\n--- genre values starting with 's' ---")
    genre_pattern = database.parse_query("//book/genre")
    genre_node = genre_pattern.root.children[0]
    for candidate in database.complete_value(genre_pattern, genre_node, "s"):
        print(f"  {candidate.text:20} x{candidate.count}")

    # 6. Export the query for external engines.
    query = '//book[./price[.<20]][./genre="poetry"]/title'
    print("\n--- translation ---")
    print("twig:  ", query)
    print("xpath: ", database.to_xpath(query))
    print("xquery:", database.to_xquery(query).replace("\n", " | "))


if __name__ == "__main__":
    main()
