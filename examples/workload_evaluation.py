"""Evaluating LotusX on *your own* corpus: sample → estimate → profile.

The toolkit for anyone pointing this engine at a new XML collection:

1. carve a random but guaranteed-satisfiable workload out of the corpus
   (`repro.twig.sample`);
2. sanity-check the cardinality estimator against it (q-errors);
3. profile each query under every algorithm to see which one your data
   shape favors.

Run with::

    python examples/workload_evaluation.py [path/to/corpus.xml]
"""

import random
import statistics
import sys

from repro import LotusXDatabase
from repro.datasets import generate_xmark
from repro.twig.estimate import estimate_cardinality, q_error
from repro.twig.sample import sample_workload


def main() -> None:
    if len(sys.argv) > 1:
        database = LotusXDatabase.from_file(sys.argv[1])
    else:
        print("(no corpus given — using a generated XMark-like one)")
        database = LotusXDatabase(generate_xmark(items=120, seed=7))
    print("Corpus:", database.statistics().as_dict())

    # 1. Sample a workload the corpus is guaranteed to answer.
    workload = sample_workload(
        database.labeled, seed=2024, count=12, max_nodes=5
    )
    print(f"\nSampled {len(workload)} satisfiable twigs, e.g.:")
    for pattern in workload[:3]:
        print("  ", pattern)

    # 2. Estimator sanity check.
    print("\n--- cardinality estimation on the sampled workload ---")
    errors = []
    for pattern in workload:
        estimate = estimate_cardinality(
            pattern, database.guide, database.term_index
        )
        actual = len(database.matches(pattern))
        errors.append(q_error(estimate, actual))
    print(
        f"q-error: median {statistics.median(errors):.2f},"
        f" p90 {sorted(errors)[int(len(errors) * 0.9)]:.2f},"
        f" max {max(errors):.2f}"
    )

    # 3. Which algorithm does this data shape favor?
    print("\n--- per-algorithm profile of one sampled twig ---")
    rng = random.Random(3)
    pattern = rng.choice([p for p in workload if p.size >= 3] or workload)
    print("query:", pattern)
    data = database.profile(pattern)
    print(f"estimated {data['estimated_matches']} matches")
    for row in data["profiles"]:
        print(
            f"  {row['algorithm']:16} {row['median_ms']:>8} ms"
            f"  scanned={row['elements_scanned']:<6}"
            f" intermediates={row['intermediate_results']:<6}"
            f" matches={row['matches']}"
        )


if __name__ == "__main__":
    main()
