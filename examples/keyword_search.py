"""Schema-free keyword search (SLCA semantics).

The complement to twig search: the user types nothing but words, and the
engine returns the *smallest* elements whose subtree contains all of them
— so "jiaheng twig" meets at a publication record, not at the whole
bibliography.

Run with::

    python examples/keyword_search.py
"""

from repro import LotusXDatabase
from repro.datasets import generate_dblp


def main() -> None:
    database = LotusXDatabase(generate_dblp(publications=800, seed=42))
    print("Indexed:", database)

    for query in [
        "holistic twig",
        "xml ranking lu",
        "icde position aware",
        "dewey labeling 2005",
    ]:
        response = database.keyword_search(query, k=5)
        print(f"\n=== keywords: {query!r}  (terms used: {list(response.terms)})")
        print(f"    {response.total_slcas} smallest answers")
        for rank, hit in enumerate(response, start=1):
            data = hit.as_dict()
            print(
                f"    {rank}. [{data['score']:.3f}] <{data['tag']}>"
                f" {data['xpath']}"
            )
            print(f"       {data['snippet'][:90]}")

    # Conjunctive semantics: adding terms shrinks and *raises* answers.
    print("\n=== conjunctive semantics ===")
    for query in ["twig", "twig holistic", "twig holistic ranking"]:
        response = database.keyword_search(query, k=3)
        depths = [hit.element.level for hit in response]
        print(
            f"  {query!r:32} -> {response.total_slcas:4} answers,"
            f" depths {depths}"
        )


if __name__ == "__main__":
    main()
