"""Launch the LotusX web GUI on a generated corpus.

Run with::

    python examples/run_server.py [port]

then open http://127.0.0.1:8080/ — type a twig query, press Ctrl+Space
for position-aware completion, Enter to search.
"""

import sys

from repro import LotusXDatabase
from repro.datasets import generate_dblp
from repro.server.app import serve


def main() -> None:
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 8080
    print("Generating and indexing a 1000-publication DBLP-like corpus...")
    database = LotusXDatabase(generate_dblp(publications=1000, seed=42))
    print("Ready:", database.statistics().as_dict())
    print(f"Serving http://127.0.0.1:{port}/  (Ctrl-C to stop)")
    try:
        serve(database, port=port)
    except KeyboardInterrupt:
        print("\nbye")


if __name__ == "__main__":
    main()
