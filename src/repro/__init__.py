"""repro — a reproduction of LotusX (ICDE 2012).

A position-aware XML twig search engine with auto-completion, result
ranking, and query rewriting, built on from-scratch substrates: an XML
parser, region/Dewey/extended-Dewey labeling, a DataGuide structural
summary, inverted term + completion indexes, and the holistic twig-join
algorithm family.

Quickstart::

    from repro import LotusXDatabase

    db = LotusXDatabase.from_file("dblp.xml")

    # Ranked search with automatic rewriting.
    for hit in db.search('//article[./title~"twig"]/author'):
        print(hit.xpath, "-", hit.snippet)

    # Position-aware autocompletion while building a twig node-by-node.
    from repro import QueryBuilderSession
    session = QueryBuilderSession(db)
    article = session.add_node("article")
    print(session.suggest_tags(parent_id=article, prefix="t"))
"""

from repro.engine.database import LotusXDatabase
from repro.engine.results import SearchResponse, SearchResult
from repro.engine.session import QueryBuilderSession, SessionError
from repro.engine.store import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotInfo,
    SnapshotIntegrityError,
    SnapshotVersionError,
    StoreError,
    load_snapshot,
    read_snapshot_info,
    save_snapshot,
)
from repro.keyword import KeywordHit, KeywordResponse, keyword_search
from repro.labeling import LabeledDocument, label_document
from repro.resilience import (
    AdmissionGate,
    Deadline,
    DeadlineExceeded,
    Overloaded,
    PayloadTooLarge,
    ResilienceError,
)
from repro.twig.parse import TwigSyntaxError, parse_twig
from repro.twig.pattern import Axis, TwigPattern
from repro.twig.planner import Algorithm
from repro.xmlio import parse_file, parse_string

__version__ = "0.1.0"

__all__ = [
    "AdmissionGate",
    "Algorithm",
    "Axis",
    "Deadline",
    "DeadlineExceeded",
    "LabeledDocument",
    "KeywordHit",
    "KeywordResponse",
    "LotusXDatabase",
    "Overloaded",
    "PayloadTooLarge",
    "QueryBuilderSession",
    "ResilienceError",
    "SearchResponse",
    "SearchResult",
    "SessionError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotInfo",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "StoreError",
    "TwigPattern",
    "TwigSyntaxError",
    "__version__",
    "keyword_search",
    "label_document",
    "load_snapshot",
    "parse_file",
    "parse_string",
    "parse_twig",
    "read_snapshot_info",
    "save_snapshot",
]
