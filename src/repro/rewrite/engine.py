"""The rewrite engine: best-first search over relaxations.

Starting from the user's pattern, rule applications are explored in
cumulative-penalty order (uniform-cost search with structural
deduplication), each candidate is evaluated against the corpus, and
productive rewrites are returned with their penalties — the abstract's
"query rewriting solution ... to rank and rewrite the query effectively".
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.rewrite.rules import RewriteRule
from repro.twig.match import Match
from repro.twig.pattern import TwigPattern

#: Evaluates a pattern and returns its matches.
Evaluator = Callable[[TwigPattern], list[Match]]


@dataclass(frozen=True, slots=True)
class RewriteCandidate:
    """A rewritten pattern with its relaxation history."""

    pattern: TwigPattern
    penalty: float
    steps: tuple[str, ...]

    def describe(self) -> str:
        if not self.steps:
            return "original query"
        return "; ".join(self.steps)


@dataclass
class RewriteOutcome:
    """Result of :meth:`QueryRewriter.search_with_rewrites`."""

    #: Productive candidates (the original first if it had results).
    productive: list[tuple[RewriteCandidate, list[Match]]] = field(
        default_factory=list
    )
    #: How many candidate patterns were evaluated in total.
    evaluated: int = 0
    #: True when the original pattern already had results.
    original_succeeded: bool = False
    #: True when a deadline cut the rewrite exploration short.
    truncated: bool = False
    #: Degradation markers (e.g. ``"rewrites-skipped"`` when exploration
    #: was skipped entirely because the budget was nearly exhausted).
    degraded: tuple[str, ...] = ()

    @property
    def found_any(self) -> bool:
        return bool(self.productive)

    def best(self) -> tuple[RewriteCandidate, list[Match]] | None:
        return self.productive[0] if self.productive else None


class QueryRewriter:
    """Uniform-cost exploration of the relaxation space."""

    def __init__(
        self,
        rules: list[RewriteRule],
        max_penalty: float = 6.0,
        max_expansions: int = 200,
    ) -> None:
        self._rules = rules
        self._max_penalty = max_penalty
        self._max_expansions = max_expansions

    def candidates(self, pattern: TwigPattern) -> list[RewriteCandidate]:
        """All distinct rewrites within the penalty budget, cheapest first
        (the original pattern itself is not included)."""
        return list(self.iter_candidates(pattern))

    def iter_candidates(
        self, pattern: TwigPattern, deadline: Deadline | None = None
    ):
        """Lazily yield rewrites in non-decreasing penalty order."""
        counter = itertools.count()
        seen: set[tuple] = {pattern.signature()}
        frontier: list[tuple[float, int, RewriteCandidate]] = []
        heapq.heappush(
            frontier, (0.0, next(counter), RewriteCandidate(pattern, 0.0, ()))
        )
        expansions = 0
        while frontier and expansions < self._max_expansions:
            if deadline is not None:
                deadline.check("rewrite.explore")
            penalty, _, candidate = heapq.heappop(frontier)
            if candidate.steps:
                yield candidate
            expansions += 1
            for rule in self._rules:
                for step in rule.apply(candidate.pattern):
                    total = penalty + step.penalty
                    if total > self._max_penalty:
                        continue
                    signature = step.pattern.signature()
                    if signature in seen:
                        continue
                    seen.add(signature)
                    heapq.heappush(
                        frontier,
                        (
                            total,
                            next(counter),
                            RewriteCandidate(
                                step.pattern,
                                total,
                                candidate.steps + (step.description,),
                            ),
                        ),
                    )

    def search_with_rewrites(
        self,
        pattern: TwigPattern,
        evaluator: Evaluator,
        min_results: int = 1,
        max_productive: int = 3,
        deadline: Deadline | None = None,
    ) -> RewriteOutcome:
        """Evaluate ``pattern``; if it yields fewer than ``min_results``
        matches, explore rewrites (cheapest first) until
        ``max_productive`` rewritten queries have produced results or the
        search budget runs out.

        ``deadline`` shapes degradation: an expiry while evaluating the
        *original* pattern propagates (the caller owns that salvage); one
        during rewrite exploration ends the exploration with whatever
        productive rewrites were found (``truncated=True``); and when the
        budget is already nearly spent after the original, exploration is
        skipped entirely (``degraded=("rewrites-skipped",)``) — a late
        relaxed answer is worse than a fast exact "no results".
        """
        outcome = RewriteOutcome()
        original = RewriteCandidate(pattern, 0.0, ())
        matches = evaluator(pattern)
        outcome.evaluated = 1
        if matches:
            outcome.productive.append((original, matches))
            outcome.original_succeeded = True
        if len(matches) >= min_results:
            return outcome
        if deadline is not None and deadline.near():
            outcome.degraded = ("rewrites-skipped",)
            return outcome
        try:
            for candidate in self.iter_candidates(pattern, deadline):
                rewritten_matches = evaluator(candidate.pattern)
                outcome.evaluated += 1
                if rewritten_matches:
                    outcome.productive.append((candidate, rewritten_matches))
                    if len(outcome.productive) >= max_productive + (
                        1 if outcome.original_succeeded else 0
                    ):
                        break
        except DeadlineExceeded:
            outcome.truncated = True
        return outcome
