"""Query rewriting: relaxation rules + best-first rewrite search."""

from repro.rewrite.engine import (
    Evaluator,
    QueryRewriter,
    RewriteCandidate,
    RewriteOutcome,
)
from repro.rewrite.rules import (
    AxisGeneralization,
    EqualsToContains,
    LeafRemoval,
    NodePromotion,
    PredicateRemoval,
    RequiredToOptional,
    RewriteRule,
    RewriteStep,
    TagSubstitution,
    TagToWildcard,
    default_rules,
)

__all__ = [
    "AxisGeneralization",
    "EqualsToContains",
    "Evaluator",
    "LeafRemoval",
    "NodePromotion",
    "PredicateRemoval",
    "QueryRewriter",
    "RequiredToOptional",
    "RewriteCandidate",
    "RewriteOutcome",
    "RewriteRule",
    "RewriteStep",
    "TagSubstitution",
    "TagToWildcard",
    "default_rules",
]
