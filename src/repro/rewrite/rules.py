"""Relaxation rules for query rewriting.

When a twig query returns nothing (the user guessed structure or values
the corpus doesn't have), LotusX rewrites it into nearby queries that do.
Each rule proposes single-step rewrites with a *penalty*: how much result
quality degrades by accepting the relaxation.  The rewrite engine explores
rule applications in total-penalty order, and the ranking layer carries
the penalty into result scores.

Rules (cheapest first):

====================  =======  ==============================================
rule                  penalty  effect
====================  =======  ==============================================
AxisGeneralization    1.0      one ``/`` edge becomes ``//``
EqualsToContains      1.0      ``="v"`` becomes ``~"v"`` (keyword semantics)
RequiredToOptional    1.5      a non-output branch becomes optional (``?``)
PredicateRemoval      2.0      a value predicate is dropped
LeafRemoval           2.0      a non-output leaf node is dropped
NodePromotion         2.0      an interior node is dropped, children
                               reattach to its parent via ``//``
TagSubstitution       2.5      an unsatisfiable node's tag is replaced by a
                               tag that does occur at that position
TagToWildcard         3.0      a node's tag becomes ``*``
====================  =======  ==============================================
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.autocomplete.context import candidate_positions
from repro.summary.dataguide import DataGuide
from repro.twig.pattern import (
    Axis,
    ContainsPredicate,
    EqualsPredicate,
    QueryNode,
    TwigPattern,
)


@dataclass(frozen=True, slots=True)
class RewriteStep:
    """One single-rule rewrite of a pattern."""

    pattern: TwigPattern
    penalty: float
    description: str


class RewriteRule:
    """Base class: generates single-step rewrites of a pattern."""

    #: Penalty added per application of this rule.
    penalty: float = 1.0

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        raise NotImplementedError


def _clone_node(pattern: TwigPattern, node_id: int) -> tuple[TwigPattern, QueryNode]:
    clone = pattern.copy()
    node = clone.find_node(node_id)
    assert node is not None
    return clone, node


class AxisGeneralization(RewriteRule):
    """Turn one parent-child edge into ancestor-descendant."""

    penalty = 1.0

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        for node in pattern.nodes():
            if node.parent is not None and node.axis is Axis.CHILD:
                clone, target = _clone_node(pattern, node.node_id)
                target.axis = Axis.DESCENDANT
                yield RewriteStep(
                    clone,
                    self.penalty,
                    f"generalize edge to //{target.display_tag}",
                )


class EqualsToContains(RewriteRule):
    """Relax exact value equality to keyword containment."""

    penalty = 1.0

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        for node in pattern.nodes():
            if isinstance(node.predicate, EqualsPredicate):
                terms = node.predicate.terms()
                if not terms:
                    continue
                clone, target = _clone_node(pattern, node.node_id)
                target.predicate = ContainsPredicate(terms)
                yield RewriteStep(
                    clone,
                    self.penalty,
                    f'relax {target.display_tag}="..." to keyword containment',
                )


class PredicateRemoval(RewriteRule):
    """Drop one value predicate entirely."""

    penalty = 2.0

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        for node in pattern.nodes():
            if node.predicate is not None:
                clone, target = _clone_node(pattern, node.node_id)
                target.predicate = None
                yield RewriteStep(
                    clone,
                    self.penalty,
                    f"drop the predicate on {target.display_tag}",
                )


class RequiredToOptional(RewriteRule):
    """Make a failing branch optional instead of deleting it.

    Gentler than :class:`LeafRemoval` / :class:`NodePromotion`: matches
    that *do* have the branch keep (and rank on) it, matches that don't
    are admitted anyway.
    """

    penalty = 1.5

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        output_ids = {node.node_id for node in pattern.output_nodes()}
        for node in pattern.nodes():
            if node.is_root or node.optional:
                continue
            subtree_ids = {n.node_id for n in node.iter_subtree()}
            if subtree_ids & output_ids:
                continue  # outputs must stay required
            clone, target = _clone_node(pattern, node.node_id)
            target.optional = True
            yield RewriteStep(
                clone,
                self.penalty,
                f"make branch {target.display_tag} optional",
            )


class LeafRemoval(RewriteRule):
    """Remove one non-output leaf node."""

    penalty = 2.0

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        for node in pattern.nodes():
            if node.is_leaf and not node.is_root and not node.is_output:
                clone, target = _clone_node(pattern, node.node_id)
                assert target.parent is not None
                target.parent.children.remove(target)
                yield RewriteStep(
                    clone,
                    self.penalty,
                    f"drop leaf node {target.display_tag}",
                )


class NodePromotion(RewriteRule):
    """Remove an interior node; its children reattach to its parent
    with descendant axes (so the structural requirement weakens
    rather than disappears)."""

    penalty = 2.0

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        for node in pattern.nodes():
            if node.is_root or node.is_leaf or node.is_output:
                continue
            clone, target = _clone_node(pattern, node.node_id)
            parent = target.parent
            assert parent is not None
            index = parent.children.index(target)
            for child in target.children:
                child.parent = parent
                child.axis = Axis.DESCENDANT
            parent.children[index : index + 1] = target.children
            yield RewriteStep(
                clone,
                self.penalty,
                f"promote children of {target.display_tag} and drop it",
            )


class TagSubstitution(RewriteRule):
    """Replace the tag of a structurally unsatisfiable node with a tag
    that *does* occur at the node's position.

    Only fires for nodes whose candidate position set is empty (the node
    is why the query returns nothing), and proposes at most
    ``max_alternatives`` replacement tags, most frequent first.  An
    optional synonym table is tried first with a lower penalty.
    """

    penalty = 2.5
    synonym_penalty = 1.5

    def __init__(
        self,
        guide: DataGuide,
        synonyms: dict[str, tuple[str, ...]] | None = None,
        max_alternatives: int = 3,
    ) -> None:
        self._guide = guide
        self._synonyms = synonyms or {}
        self._max_alternatives = max_alternatives

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        # Top-down-only positions: a node is "broken" iff its own path is
        # infeasible while its parent's is fine — full bottom-up pruning
        # would blame every node in the pattern for one impossible leaf.
        positions = candidate_positions(pattern, self._guide, prune=False)
        for node in pattern.nodes():
            if node.tag is None or positions.get(node.node_id):
                continue
            if node.parent is not None and not positions.get(node.parent.node_id):
                continue  # the break is higher up; fix it there
            for alternative in self._alternatives(pattern, node, positions):
                clone, target = _clone_node(pattern, node.node_id)
                target.tag = alternative.tag
                yield RewriteStep(
                    clone,
                    alternative.penalty,
                    f"replace tag {node.tag!r} with {alternative.tag!r}",
                )

    def _alternatives(self, pattern, node, positions):
        seen: set[str] = set()
        produced = 0
        for synonym in self._synonyms.get(node.tag, ()):
            if synonym != node.tag and synonym not in seen:
                seen.add(synonym)
                produced += 1
                yield _Alternative(synonym, self.synonym_penalty)
                if produced >= self._max_alternatives:
                    return
        # Tags occurring at the node's possible positions, by frequency.
        if node.parent is not None:
            parent_positions = positions.get(node.parent.node_id, set())
            if node.axis is Axis.CHILD:
                pool = self._guide.child_tags_of(parent_positions)
            else:
                pool = self._guide.descendant_tags_of(parent_positions)
        else:
            pool = {tag: self._guide.tag_count(tag) for tag in self._guide.all_tags()}
        ranked = sorted(pool.items(), key=lambda item: (-item[1], item[0]))
        for tag, _count in ranked:
            if tag != node.tag and tag not in seen:
                seen.add(tag)
                produced += 1
                yield _Alternative(tag, self.penalty)
                if produced >= self._max_alternatives:
                    return


@dataclass(frozen=True, slots=True)
class _Alternative:
    tag: str
    penalty: float


class TagToWildcard(RewriteRule):
    """Replace one node's tag with the wildcard."""

    penalty = 3.0

    def apply(self, pattern: TwigPattern) -> Iterator[RewriteStep]:
        for node in pattern.nodes():
            if node.tag is not None:
                clone, target = _clone_node(pattern, node.node_id)
                target.tag = None
                yield RewriteStep(
                    clone,
                    self.penalty,
                    f"replace tag {node.tag!r} with the wildcard",
                )


def default_rules(
    guide: DataGuide, synonyms: dict[str, tuple[str, ...]] | None = None
) -> list[RewriteRule]:
    """The standard rule set, cheapest-first."""
    return [
        AxisGeneralization(),
        EqualsToContains(),
        RequiredToOptional(),
        PredicateRemoval(),
        LeafRemoval(),
        NodePromotion(),
        TagSubstitution(guide, synonyms),
        TagToWildcard(),
    ]
