"""Delta segments: an LSM-flavoured, incrementally updatable corpus.

A :class:`SegmentedCorpus` holds the live corpus as an ordered list of
**segments** — segment 0 is the (possibly snapshot-loaded) base, later
segments are small deltas flushed by the writer — where each segment is
a full per-shard :class:`~repro.engine.database.LotusXDatabase` built by
the sharding machinery (:func:`repro.shard.partitioner.build_shard_database`).

The core invariant, the one every read-path correctness proof hangs on:

    At every generation, the segment list together with its
    :class:`~repro.shard.partitioner.ShardSpec`\\ s is *exactly* a valid
    ``partition_document`` output for the current live document.

That means: units (top-level documents) laid out contiguously across
segments, every segment's non-root labels forming one dense global tick
block at ``2 * element_offset + 1``, the replicated root widened to
``(0, 2 * total_elements - 1)``, root attributes on every replica and
root direct text on segment 0 only, and exact global ordinal offsets.
Because that is precisely the shape :class:`~repro.shard.database.ShardedDatabase`
was built (and byte-identity-tested) against, overlay reads through a
fresh ``ShardedDatabase`` view are identical to a cold rebuild.

**Why labels stay dense.**  :mod:`repro.labeling.region` provides a
general gap allocator that could leave slack between segments so that
inserts never touch existing labels.  This corpus deliberately pins the
slack to zero: the structural score reads *absolute* region spans
(compactness is ``(max(end) - min(start) + 1) // 2``) and keyword
specificity reads ``region.end - region.start`` as a subtree size, so a
gapped layout would leak the slack into scores and break byte-identity
with a cold rebuild.  The allocator is still the bookkeeping mechanism:
every segment owns one :class:`~repro.labeling.region.TickBlock`, an
in-place size change is attempted with
:meth:`~repro.labeling.region.RegionAllocator.resize` (which succeeds
exactly when no later segment would have to move — e.g. growth at the
corpus tail), and :class:`~repro.labeling.region.GapExhausted` is the
signal that later segments must be relabeled (their blocks released and
re-allocated at shifted bases).

Mutation cost profile (the LSM trade):

* insert — the batch's new documents flush into one fresh tail segment:
  O(batch), no existing segment touched (beyond the root-width patch);
* update, same subtree size — rebuild only the owning segment;
* update with size change, or delete — rebuild the owning segment and
  relabel/rebuild every later segment (the suffix shift);
* compaction — fold the accumulated delta segments back into few big
  ones (:meth:`SegmentedCorpus.compact_deltas`) or into a single base
  (:meth:`SegmentedCorpus.compact`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import LotusXDatabase
from repro.labeling.region import GapExhausted, Region, RegionAllocator, TickBlock
from repro.ranking.scorer import LotusXScorer
from repro.shard.partitioner import (
    ShardSpec,
    build_shard_database,
    copy_subtree,
    subtree_element_count,
)
from repro.xmlio.tree import Document, Element, Text


class DuplicateDocument(ValueError):
    """An insert's document id already exists in the corpus."""


class UnknownDocument(KeyError):
    """An update/delete names a document id the corpus does not hold."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class Mutation:
    """One validated mutation, ready to apply.

    ``unit`` is the parsed top-level subtree for insert/update (a
    parentless :class:`~repro.xmlio.tree.Element`), ``None`` for delete.
    """

    seqno: int
    op: str
    doc_id: str
    unit: Element | None = None


@dataclass
class LiveSegment:
    """One segment: a contiguous run of documents plus its index.

    ``units`` holds the segment's *master copies* (parentless subtrees
    the segment document is rebuilt from).  A segment adopted from an
    existing database (the base at startup) starts with ``units=None``
    and materializes copies lazily, on first rebuild — an untouched base
    never pays the copy.
    """

    doc_ids: list[str]
    weights: list[int]
    units: list[Element] | None = None
    database: LotusXDatabase | None = None
    spec: ShardSpec | None = None
    block: TickBlock | None = None

    @property
    def element_count(self) -> int:
        """Elements in this segment's units (root replica excluded)."""
        return sum(self.weights)


@dataclass
class ApplyResult:
    """What one :meth:`SegmentedCorpus.apply` call did."""

    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    segments_rebuilt: int = 0
    segments_relabeled: int = 0
    segments_dropped: int = 0
    counters: dict = field(default_factory=dict)


class SegmentedCorpus:
    """The live, single-writer corpus behind a ``SegmentedDatabase``.

    Not thread-safe: exactly one mutator (the
    :class:`~repro.write.writer.DocumentWriter` apply loop) may call
    :meth:`apply` / :meth:`compact_deltas` / :meth:`compact` at a time.
    Readers never touch the corpus directly — they query an immutable
    :class:`~repro.shard.database.ShardedDatabase` view built by
    :meth:`build_view` after each batch.
    """

    #: Document-id prefix used for the base corpus's positional ids.
    BASE_ID_PREFIX = "base"

    def __init__(
        self,
        base_database: LotusXDatabase,
        scorer: LotusXScorer | None = None,
        synonyms: dict[str, tuple[str, ...]] | None = None,
        document_ids: tuple[str, ...] | list[str] | None = None,
    ) -> None:
        root = base_database.document.root
        self.spine_tag = root.tag
        self.root_attributes = dict(root.attributes)
        #: The root's *direct* text (kept on segment 0 only, exactly as
        #: ``partition_document`` places it).
        self.root_texts = [
            child.value for child in root.children if isinstance(child, Text)
        ]
        self.scorer = scorer
        self.synonyms = synonyms
        units = root.child_elements()
        weights = [subtree_element_count(unit) for unit in units]
        total = 1 + sum(weights)
        if document_ids is not None:
            # Resuming from a checkpoint: the snapshot carries the ids the
            # rotated WAL's update/delete records address documents by.
            if len(document_ids) != len(units):
                raise ValueError(
                    f"{len(document_ids)} document ids for"
                    f" {len(units)} base documents"
                )
            if len(set(document_ids)) != len(document_ids):
                raise ValueError("duplicate base document ids")
            base_ids = [str(doc_id) for doc_id in document_ids]
        else:
            base_ids = [
                f"{self.BASE_ID_PREFIX}-{index + 1}" for index in range(len(units))
            ]
        base = LiveSegment(
            doc_ids=base_ids,
            weights=weights,
            units=None,  # adopted: materialized only if the base is rebuilt
            database=base_database,
            spec=ShardSpec(
                index=0,
                shard_count=1,
                spine_tag=self.spine_tag,
                unit_range=(0, len(units)),
                element_offset=0,
                element_count=total,
                total_elements=total,
                child_ordinal_offsets={},
            ),
        )
        self.allocator = RegionAllocator(0, None)
        if base.element_count:
            base.block = self.allocator.allocate_tail(2 * base.element_count)
        self.segments: list[LiveSegment] = [base]
        self._ids = set(base.doc_ids)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    @property
    def document_count(self) -> int:
        return sum(len(segment.doc_ids) for segment in self.segments)

    @property
    def total_elements(self) -> int:
        return 1 + sum(segment.element_count for segment in self.segments)

    def document_ids(self) -> list[str]:
        """All live document ids, corpus (document) order."""
        return [doc_id for segment in self.segments for doc_id in segment.doc_ids]

    def contains(self, doc_id: str) -> bool:
        return doc_id in self._ids

    def _locate(self, doc_id: str) -> tuple[int, int]:
        for index, segment in enumerate(self.segments):
            try:
                return index, segment.doc_ids.index(doc_id)
            except ValueError:
                continue
        raise UnknownDocument(f"no document with id {doc_id!r}")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def apply(self, mutations: list[Mutation]) -> ApplyResult:
        """Apply one batch of validated mutations.

        The logical unit lists are updated first, then the layout is
        recomputed once (:meth:`_relayout`): specs for every segment, a
        rebuild for segments whose content or label base changed, and a
        root-width patch for untouched survivors.  The batch's inserts
        flush into a single fresh tail segment.
        """
        result = ApplyResult()
        pending_ids: list[str] = []
        pending_units: list[Element] = []
        dirty: set[int] = set()  # identity keys of segments to rebuild

        for mutation in mutations:
            doc_id = mutation.doc_id
            if mutation.op == "insert":
                if doc_id in self._ids or doc_id in pending_ids:
                    raise DuplicateDocument(f"document {doc_id!r} already exists")
                pending_ids.append(doc_id)
                pending_units.append(mutation.unit)
                self._ids.add(doc_id)
                result.inserts += 1
            elif mutation.op == "update":
                if doc_id in pending_ids:
                    pending_units[pending_ids.index(doc_id)] = mutation.unit
                    result.updates += 1
                    continue
                index, position = self._locate(doc_id)
                segment = self.segments[index]
                self._materialize(segment)
                segment.units[position] = mutation.unit
                segment.weights[position] = subtree_element_count(mutation.unit)
                dirty.add(id(segment))
                result.updates += 1
            elif mutation.op == "delete":
                if doc_id in pending_ids:
                    position = pending_ids.index(doc_id)
                    del pending_ids[position]
                    del pending_units[position]
                else:
                    index, position = self._locate(doc_id)
                    segment = self.segments[index]
                    self._materialize(segment)
                    del segment.units[position]
                    del segment.weights[position]
                    del segment.doc_ids[position]
                    dirty.add(id(segment))
                self._ids.discard(doc_id)
                result.deletes += 1
            else:
                raise ValueError(f"unknown mutation op {mutation.op!r}")

        if pending_ids:
            self.segments.append(
                LiveSegment(
                    doc_ids=pending_ids,
                    weights=[subtree_element_count(unit) for unit in pending_units],
                    units=pending_units,
                )
            )
        # An emptied delta segment disappears; segment 0 stays (it
        # carries the root replica's direct text).
        survivors = [
            segment
            for index, segment in enumerate(self.segments)
            if index == 0 or segment.doc_ids
        ]
        result.segments_dropped = len(self.segments) - len(survivors)
        self.segments = survivors
        rebuilt, relabeled = self._relayout(dirty)
        result.segments_rebuilt = rebuilt
        result.segments_relabeled = relabeled
        return result

    def compact_deltas(self, keep_segments: int = 2) -> int:
        """Minor compaction: fold the delta tail into one segment.

        Merges segments ``1..`` into a single delta so the segment count
        returns to at most ``keep_segments``.  Delta bases are contiguous,
        so nothing outside the merged range is relabeled.  Returns the
        number of segments merged away (0 when below the threshold).
        """
        if len(self.segments) <= max(2, keep_segments):
            return 0
        merged = self._merge_segments(self.segments[1:])
        before = len(self.segments)
        self.segments = [self.segments[0], merged]
        self._relayout({id(merged)})
        return before - len(self.segments)

    def compact(self) -> int:
        """Major compaction: fold *everything* into a new base segment.

        The result is a single segment holding the whole live corpus —
        the in-memory equivalent of a from-scratch rebuild, used before
        checkpointing.  Returns the number of segments merged away.
        """
        if len(self.segments) == 1:
            return 0
        merged = self._merge_segments(self.segments)
        before = len(self.segments)
        self.segments = [merged]
        self._relayout({id(merged)})
        return before - 1

    def checkpoint_document(self) -> Document:
        """The live corpus as one monolithic document (fresh copies)."""
        root = Element(self.spine_tag, dict(self.root_attributes))
        for value in self.root_texts:
            root.append(Text(value))
        for segment in self.segments:
            for unit in self._iter_units(segment):
                root.append(copy_subtree(unit))
        return Document(root, source_name="live corpus")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def build_view(self, executor_mode: str = "serial", max_workers: int | None = None):
        """A fresh read view over the current segments.

        The view is a :class:`~repro.shard.database.ShardedDatabase` in
        serial mode (segments live in-process; scatter overhead would be
        pure loss): coordinator state — merged guide, completion facade,
        global term stats — is rebuilt per view, while the expensive
        per-segment indexes are reused as-is.  ``source_document=None``
        lets the fallback reassemble the *live* corpus on demand.
        """
        from repro.shard.database import ShardedDatabase

        return ShardedDatabase(
            [segment.database for segment in self.segments],
            [segment.spec for segment in self.segments],
            source_document=None,
            executor_mode=executor_mode,
            max_workers=max_workers,
            scorer=self.scorer,
            synonyms=self.synonyms,
        )

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def _relayout(self, dirty: set[int]) -> tuple[int, int]:
        """Recompute specs, tick blocks, and databases after a mutation.

        ``dirty`` holds ``id()`` keys of segments whose *content*
        changed.  Everything else is decided from the layout: a segment
        whose tick block cannot stay where it is (its label base moved,
        or an in-place :meth:`~repro.labeling.region.RegionAllocator.resize`
        raises :class:`~repro.labeling.region.GapExhausted` because a
        later segment sits flush against it) is released and re-allocated
        at its new base — the relabel.  Surviving segments only receive
        the root-width patch when the corpus element count changed.

        Returns ``(segments_rebuilt, segments_relabeled)``.
        """
        total = self.total_elements
        specs: list[ShardSpec] = []
        offset = 0
        unit_position = 0
        ordinals: dict[str, int] = {}
        for index, segment in enumerate(self.segments):
            specs.append(
                ShardSpec(
                    index=index,
                    shard_count=len(self.segments),
                    spine_tag=self.spine_tag,
                    unit_range=(
                        unit_position,
                        unit_position + len(segment.doc_ids),
                    ),
                    element_offset=offset,
                    element_count=1 + segment.element_count,
                    total_elements=total,
                    child_ordinal_offsets=dict(ordinals),
                )
            )
            offset += segment.element_count
            unit_position += len(segment.doc_ids)
            for unit in self._iter_units(segment):
                ordinals[unit.tag] = ordinals.get(unit.tag, 0) + 1

        allocator = self.allocator
        # Pass 1: decide which tick blocks stay.  A block stays when its
        # base is unchanged and an in-place resize fits (trivially, when
        # the width is unchanged; for a real growth only when no later
        # block sits flush against it — i.e. at the corpus tail).
        stays: list[bool] = []
        for segment, spec in zip(self.segments, specs):
            width = 2 * segment.element_count
            block = segment.block
            ok = block is not None and block.base == 2 * spec.element_offset + 1
            if ok and block.width != width:
                if width > block.width:
                    try:
                        allocator.resize(block, width)
                    except GapExhausted:
                        ok = False
                elif segment is self.segments[-1]:
                    # Shrinking the corpus tail keeps the layout dense.
                    allocator.resize(block, width)
                else:
                    # Shrinking in place would leave slack before the
                    # next block; density (see module docstring) forbids
                    # it, so the suffix is repacked instead.
                    ok = False
            stays.append(ok and width > 0)
        kept = {
            id(segment.block)
            for segment, ok in zip(self.segments, stays)
            if ok and segment.block is not None
        }
        for block in [b for b in allocator.blocks if id(b) not in kept]:
            allocator.release(block)
        # Pass 2: re-allocate moved blocks left to right; each lands
        # exactly after its predecessor, restoring the dense layout.
        relabeled = 0
        previous: TickBlock | None = None
        for segment, spec, ok in zip(self.segments, specs, stays):
            width = 2 * segment.element_count
            if ok:
                previous = segment.block
                continue
            segment.block = (
                allocator.allocate(width, after=previous) if width else None
            )
            if segment.block is not None:
                if segment.block.base != 2 * spec.element_offset + 1:
                    raise RuntimeError(
                        f"tick layout drifted: segment {spec.index} block at"
                        f" {segment.block.base}, labels at"
                        f" {2 * spec.element_offset + 1}"
                    )
                previous = segment.block
            if (
                id(segment) not in dirty
                and segment.spec is not None
                and segment.database is not None
            ):
                relabeled += 1

        rebuilt = 0
        root_end = 2 * total - 1
        for segment, spec in zip(self.segments, specs):
            old = segment.spec
            needs_rebuild = (
                segment.database is None
                or id(segment) in dirty
                or old is None
                or old.element_offset != spec.element_offset
            )
            if needs_rebuild:
                self._rebuild_segment(segment, spec)
                rebuilt += 1
            else:
                if old.total_elements != spec.total_elements:
                    self._patch_root_width(segment, root_end)
                segment.spec = spec
        self._ids = {
            doc_id for segment in self.segments for doc_id in segment.doc_ids
        }
        return rebuilt, relabeled

    def _rebuild_segment(self, segment: LiveSegment, spec: ShardSpec) -> None:
        self._materialize(segment)
        replica = Element(self.spine_tag, dict(self.root_attributes))
        if spec.index == 0:
            for value in self.root_texts:
                replica.append(Text(value))
        for unit in segment.units:
            replica.append(copy_subtree(unit))
        document = Document(
            replica,
            source_name=f"live segment {spec.index + 1}/{spec.shard_count}",
        )
        segment.database = build_shard_database(
            document, spec, self.scorer, self.synonyms
        )
        segment.spec = spec

    def _patch_root_width(self, segment: LiveSegment, end: int) -> None:
        """Re-widen a surviving segment's root replica in place.

        This is the *only* in-place mutation a live reader can observe:
        the shared root ``LabeledElement`` and the columnar root row take
        the new corpus width the moment the corpus changes size.  Every
        derived cache (filtered-stream memos, plan caches, completions)
        is invalidated when the new view's generation is stamped.
        """
        database = segment.database
        root_labeled = database.labeled.elements[0]
        if root_labeled.region.end != end:
            root_labeled.region = Region(0, end, 0)
            database.streams.rewiden_root(end)

    def _materialize(self, segment: LiveSegment) -> None:
        """Give an adopted segment its own master unit copies."""
        if segment.units is None:
            segment.units = [
                copy_subtree(unit)
                for unit in segment.database.document.root.child_elements()
            ]

    def _iter_units(self, segment: LiveSegment):
        if segment.units is not None:
            return iter(segment.units)
        return iter(segment.database.document.root.child_elements())

    def _merge_segments(self, segments: list[LiveSegment]) -> LiveSegment:
        for segment in segments:
            self._materialize(segment)
        return LiveSegment(
            doc_ids=[d for segment in segments for d in segment.doc_ids],
            weights=[w for segment in segments for w in segment.weights],
            units=[u for segment in segments for u in segment.units],
        )

    def __repr__(self) -> str:
        return (
            f"SegmentedCorpus(segments={len(self.segments)},"
            f" documents={self.document_count}, elements={self.total_elements})"
        )
