"""The live write path: WAL-backed incremental updates over delta segments.

``repro.write`` turns the (otherwise immutable) indexed corpus into a
single-writer, many-reader live database:

* :mod:`repro.write.wal` — a size- and checksum-framed write-ahead log;
  every accepted mutation is durable in the WAL *before* it is applied,
  and recovery replays the valid prefix of the log (truncating a torn
  tail) to land back on exactly the pre-crash state.
* :mod:`repro.write.segments` — :class:`~repro.write.segments.SegmentedCorpus`,
  the LSM-flavoured delta-segment store.  Inserts flush into small tail
  segments; updates rebuild only the owning segment (plus, when the
  subtree size changes, the suffix whose labels must shift); background
  compaction folds deltas back into the base.
* :mod:`repro.write.writer` — :class:`~repro.write.writer.DocumentWriter`,
  the single-writer mutation pipeline (validate → WAL append → queue →
  apply batch → swap the serving view).

The facade readers query is :class:`repro.engine.segmented.SegmentedDatabase`.
"""

from repro.write.wal import WalError, WalRecord, WriteAheadLog
from repro.write.segments import Mutation, SegmentedCorpus
from repro.write.writer import (
    DocumentWriter,
    DuplicateDocument,
    UnknownDocument,
    WriterClosed,
    WriterWedged,
    open_writable_database,
)

__all__ = [
    "DocumentWriter",
    "DuplicateDocument",
    "Mutation",
    "SegmentedCorpus",
    "UnknownDocument",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "WriterClosed",
    "WriterWedged",
    "open_writable_database",
]
