"""The single-writer mutation pipeline.

:class:`DocumentWriter` is the only component allowed to mutate a
:class:`~repro.write.segments.SegmentedCorpus`.  A mutation's life:

1. **submit** (caller's thread, under the writer lock): the payload is
   parsed and validated against the *projected* id set (the corpus as it
   will be once everything already enqueued applies), a seqno is
   assigned, and the record is appended to the WAL.  By the time
   ``insert_document`` returns a seqno, the mutation is durable.
2. **apply** (the writer's worker thread; inline in ``synchronous``
   mode): queued mutations drain as one batch into
   :meth:`SegmentedCorpus.apply`, the delta tail is compacted when it
   has grown past the threshold, a fresh read view is built, and the
   serving :class:`~repro.engine.segmented.SegmentedDatabase` facade
   atomically swaps to it (advancing the generation and, when serving
   behind a :class:`~repro.server.reload.DatabaseHolder`, stamping the
   holder generation too).

**Crash consistency is fail-stop.**  If an apply raises, the serving
view is left exactly as it was — readers never observe a half-applied
batch — and the writer *wedges*: every later submission is refused with
:class:`WriterWedged`.  The refused-but-durable mutations are not lost;
they are exactly what WAL recovery (:func:`open_writable_database`)
replays on restart.  Continuing past a failed batch would silently
reorder the corpus against the log, which is the one thing a WAL must
never allow.

Fault-injection sites (see :mod:`repro.resilience.faults`):
``write.wal.append`` (before the record is durable — the mutation is
rejected and leaves no trace), ``write.apply`` (after durability, before
application — the wedge path), ``write.compact`` (background compaction
— caught, counted, corpus left on the uncompacted layout).
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.resilience.faults import fault_point
from repro.write.segments import (
    DuplicateDocument,
    Mutation,
    SegmentedCorpus,
    UnknownDocument,
)
from repro.write.wal import WriteAheadLog
from repro.xmlio.builder import parse_string
from repro.xmlio.tree import Element

__all__ = [
    "DocumentWriter",
    "DuplicateDocument",
    "UnknownDocument",
    "WriterClosed",
    "WriterWedged",
    "open_writable_database",
]


class WriterClosed(RuntimeError):
    """The writer has been shut down."""


class WriterWedged(RuntimeError):
    """A previous batch failed to apply; the writer refuses new work.

    Durable-but-unapplied mutations are recovered by replaying the WAL
    on restart.
    """


class DocumentWriter:
    """Single-writer mutation path over one segmented corpus."""

    #: Delta segments tolerated before minor compaction kicks in.
    COMPACT_THRESHOLD = 8

    def __init__(
        self,
        corpus: SegmentedCorpus,
        database,
        wal: WriteAheadLog,
        last_applied: int = 0,
        synchronous: bool = False,
        compact_threshold: int | None = None,
        holder=None,
        executor_mode: str = "serial",
    ) -> None:
        self._corpus = corpus
        self._database = database
        self._wal = wal
        self._holder = holder
        self._synchronous = synchronous
        self._compact_threshold = max(
            2, compact_threshold if compact_threshold is not None else self.COMPACT_THRESHOLD
        )
        self._executor_mode = executor_mode
        #: Serializes submissions (validation + WAL append + seqno).
        self._submit_lock = threading.Lock()
        #: Guards queue/progress state and wakes both worker and waiters.
        self._progress = threading.Condition()
        self._queue: deque[Mutation] = deque()
        self._projected_ids = set(corpus.document_ids())
        self._last_enqueued = last_applied
        self._last_applied = last_applied
        self._closed = False
        self._stopping = False
        self._wedged_error: BaseException | None = None
        self.counters: dict[str, int] = {
            "inserts": 0,
            "updates": 0,
            "deletes": 0,
            "batches": 0,
            "segments_rebuilt": 0,
            "segments_relabeled": 0,
            "compactions": 0,
            "segments_compacted": 0,
            "compaction_failures": 0,
            "apply_failures": 0,
        }
        self._worker: threading.Thread | None = None
        if not synchronous:
            self._worker = threading.Thread(
                target=self._run, name="lotusx-writer", daemon=True
            )
            self._worker.start()

    def attach_holder(self, holder) -> None:
        """Stamp ``holder`` (a ``DatabaseHolder``) on every view swap.

        Used by the CLI, where the holder is created *around* the
        writable facade and therefore cannot be passed to
        :func:`open_writable_database` up front.
        """
        with self._progress:
            self._holder = holder

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def insert_document(self, xml: str, doc_id: str | None = None) -> int:
        """Add a new top-level document; returns its durable seqno."""
        return self.submit("insert", doc_id, xml)[0]

    def update_document(self, doc_id: str, xml: str) -> int:
        """Replace the document ``doc_id`` with a new subtree."""
        return self.submit("update", doc_id, xml)[0]

    def delete_document(self, doc_id: str) -> int:
        """Remove the document ``doc_id`` from the corpus."""
        return self.submit("delete", doc_id, None)[0]

    def submit(
        self, op: str, doc_id: str | None, xml: str | None
    ) -> tuple[int, str]:
        """Validate, log, and enqueue one mutation.

        Returns ``(seqno, doc_id)`` — the id matters for inserts, where
        an omitted id is assigned by the writer.
        """
        if op not in ("insert", "update", "delete"):
            raise ValueError(f"unknown mutation op {op!r}")
        unit: Element | None = None
        if op in ("insert", "update"):
            if not xml or not xml.strip():
                raise ValueError("document body must be non-empty XML")
            # Parse (and size/structure-check, via the xmlio limits)
            # outside the lock: a malformed body never reaches the WAL.
            unit = parse_string(xml).root
        with self._submit_lock:
            if self._closed:
                raise WriterClosed("the writer has been closed")
            if self._wedged_error is not None:
                raise WriterWedged(
                    f"writer halted by a failed batch ({self._wedged_error});"
                    " restart to recover from the WAL"
                )
            seqno = self._last_enqueued + 1
            if op == "insert":
                if doc_id is None:
                    doc_id = self._fresh_id(seqno)
                elif doc_id in self._projected_ids:
                    raise DuplicateDocument(
                        f"document {doc_id!r} already exists"
                    )
            else:
                if doc_id not in self._projected_ids:
                    raise UnknownDocument(f"no document with id {doc_id!r}")
            fault_point("write.wal.append")
            self._wal.append(seqno, op, doc_id, xml)
            self._last_enqueued = seqno
            if op == "insert":
                self._projected_ids.add(doc_id)
            elif op == "delete":
                self._projected_ids.discard(doc_id)
            mutation = Mutation(seqno, op, doc_id, unit)
            if not self._synchronous:
                with self._progress:
                    self._queue.append(mutation)
                    self._progress.notify_all()
        if self._synchronous:
            self._apply_batch([mutation])
            if self._wedged_error is not None:
                raise WriterWedged(
                    f"batch failed to apply: {self._wedged_error}"
                ) from self._wedged_error
        return seqno, doc_id

    def _fresh_id(self, seqno: int) -> str:
        candidate = f"doc-{seqno}"
        suffix = 1
        while candidate in self._projected_ids:
            candidate = f"doc-{seqno}-{suffix}"
            suffix += 1
        return candidate

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._progress:
                while not self._queue and not self._stopping:
                    self._progress.wait(timeout=0.2)
                if self._wedged_error is not None:
                    return
                if not self._queue:
                    if self._stopping:
                        return
                    continue
                batch = list(self._queue)
                self._queue.clear()
            self._apply_batch(batch)
            if self._wedged_error is not None:
                return

    def _apply_batch(self, batch: list[Mutation]) -> None:
        try:
            fault_point("write.apply")
            result = self._corpus.apply(batch)
            self._maybe_compact()
            view = self._corpus.build_view(self._executor_mode)
            self._database._install_view(view)
            if self._holder is not None:
                self._holder.swap(self._database)
            with self._progress:
                counters = self.counters
                counters["inserts"] += result.inserts
                counters["updates"] += result.updates
                counters["deletes"] += result.deletes
                counters["batches"] += 1
                counters["segments_rebuilt"] += result.segments_rebuilt
                counters["segments_relabeled"] += result.segments_relabeled
                self._last_applied = batch[-1].seqno
                self._progress.notify_all()
        except Exception as exc:
            with self._progress:
                self._wedged_error = exc
                self.counters["apply_failures"] += 1
                self._progress.notify_all()

    def _maybe_compact(self) -> None:
        """Fold the delta tail back together once it has grown too long.

        An injected ``write.compact`` fault (or a real mid-merge failure
        that left the segment list untouched) is absorbed: the corpus
        simply keeps serving the uncompacted layout.  A failure that
        *did* disturb the segment list is corruption and re-raises into
        the fail-stop wedge path.
        """
        if self._corpus.segment_count <= self._compact_threshold:
            return
        before = list(self._corpus.segments)
        try:
            fault_point("write.compact")
            merged = self._corpus.compact_deltas()
        except Exception:
            self.counters["compaction_failures"] += 1
            if self._corpus.segments != before:
                raise
            return
        if merged:
            self.counters["compactions"] += 1
            self.counters["segments_compacted"] += merged

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    @property
    def wedged(self) -> bool:
        return self._wedged_error is not None

    @property
    def last_applied_seqno(self) -> int:
        with self._progress:
            return self._last_applied

    @property
    def last_enqueued_seqno(self) -> int:
        with self._submit_lock:
            return self._last_enqueued

    def wait_for(self, seqno: int, timeout: float | None = None) -> None:
        """Block until ``seqno`` has been applied to the serving view."""
        limit = None if timeout is None else time.monotonic() + timeout
        with self._progress:
            while self._last_applied < seqno:
                if self._wedged_error is not None:
                    raise WriterWedged(
                        f"batch failed to apply: {self._wedged_error}"
                    ) from self._wedged_error
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"seqno {seqno} not applied within {timeout}s"
                        f" (at {self._last_applied})"
                    )
                self._progress.wait(0.2 if remaining is None else min(remaining, 0.2))

    def flush(self, timeout: float | None = None) -> int:
        """Wait until everything accepted so far is applied; returns the
        last applied seqno."""
        self.wait_for(self.last_enqueued_seqno, timeout)
        return self.last_applied_seqno

    def close(self) -> None:
        """Stop accepting work, drain the queue, and close the WAL."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        with self._progress:
            self._stopping = True
            self._progress.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=10)
        self._wal.close()

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self, path) -> dict:
        """Durably fold the live corpus into a snapshot and trim the WAL.

        Flushes, compacts everything into a single base segment, writes
        a monolithic snapshot stamped with the checkpoint seqno, and
        rotates the WAL so only post-checkpoint records remain.  Opening
        the snapshot plus the rotated WAL recovers exactly this state.
        """
        from repro.engine.store import save_snapshot

        self.flush()
        with self._submit_lock:
            if self._wedged_error is not None:
                raise WriterWedged(
                    f"cannot checkpoint a wedged writer ({self._wedged_error})"
                )
            merged = self._corpus.compact()
            if merged:
                view = self._corpus.build_view(self._executor_mode)
                self._database._install_view(view)
                if self._holder is not None:
                    self._holder.swap(self._database)
            seqno = self._last_applied
            info = save_snapshot(
                self._corpus.segments[0].database,
                path,
                seqno=seqno,
                document_ids=self._corpus.document_ids(),
            )
            kept = self._wal.rotate(seqno)
            return {
                "seqno": seqno,
                "snapshot_path": str(path),
                "snapshot_bytes": info.size_bytes,
                "wal_records_kept": kept,
                "segments_merged": merged,
            }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        """Writer health for ``/api/stats``."""
        with self._progress:
            return {
                "mode": "synchronous" if self._synchronous else "background",
                "queue_depth": len(self._queue),
                "wal_path": self._wal.path,
                "wal_bytes": self._wal.size_bytes,
                "wal_records": self._wal.record_count,
                "last_enqueued_seqno": self._last_enqueued,
                "last_applied_seqno": self._last_applied,
                "wedged": self._wedged_error is not None,
                "segments": self._corpus.segment_count,
                "documents": self._corpus.document_count,
                "counters": dict(self.counters),
            }


def open_writable_database(
    base_database,
    wal_path,
    base_seqno: int = 0,
    scorer=None,
    synonyms=None,
    holder=None,
    synchronous: bool = False,
    compact_threshold: int | None = None,
    executor_mode: str = "serial",
    document_ids=None,
):
    """Open (or recover) a writable database over ``base_database``.

    ``base_database`` is the durable base — a freshly indexed corpus
    (``base_seqno=0``) or a snapshot checkpointed at ``base_seqno``
    (pass the snapshot's ``document_ids`` too, so replayed WAL records
    resolve ids against the checkpointed namespace).  The WAL at
    ``wal_path`` is scanned (truncating any torn tail), records newer
    than the base are replayed into delta segments, and the resulting
    :class:`~repro.engine.segmented.SegmentedDatabase` — with its
    :class:`DocumentWriter` attached as ``.writer`` — serves exactly the
    state the previous process had durably accepted.
    """
    from repro.engine.segmented import SegmentedDatabase

    corpus = SegmentedCorpus(
        base_database,
        scorer=scorer,
        synonyms=synonyms,
        document_ids=document_ids,
    )
    wal = WriteAheadLog(wal_path)
    if wal.record_count and wal.last_seqno <= base_seqno:
        # Entirely pre-checkpoint records (e.g. a checkpoint that crashed
        # between snapshot write and WAL rotate): drop the stale prefix.
        wal.rotate(base_seqno)
    replay = [
        record for record in wal.recovered_records if record.seqno > base_seqno
    ]
    last_applied = base_seqno
    if replay:
        mutations = [
            Mutation(
                record.seqno,
                record.op,
                record.doc_id,
                parse_string(record.xml).root if record.xml is not None else None,
            )
            for record in replay
        ]
        corpus.apply(mutations)
        last_applied = replay[-1].seqno
    database = SegmentedDatabase(corpus, executor_mode=executor_mode)
    database.writer = DocumentWriter(
        corpus,
        database,
        wal,
        last_applied=last_applied,
        synchronous=synchronous,
        compact_threshold=compact_threshold,
        holder=holder,
        executor_mode=executor_mode,
    )
    return database
