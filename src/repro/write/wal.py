"""The write-ahead log: durable, checksummed mutation records.

Every mutation accepted by the writer is appended here *before* it is
applied to any in-memory structure, so the WAL is the single source of
truth for what the corpus has promised to contain.  The format is
deliberately dumb and self-verifying:

* an 8-byte magic/version header (``LXWAL001``);
* a sequence of records, each ``>II`` (payload length, CRC-32 of the
  payload) followed by a UTF-8 JSON payload
  ``{"seqno": …, "op": "insert"|"update"|"delete", "doc_id": …, "xml": …}``.

A crash mid-append leaves a *torn* record at the tail: the length runs
past end-of-file, or the CRC does not match.  :meth:`WriteAheadLog.scan`
stops at the first frame that fails verification, and opening with
``repair=True`` (the default) truncates the file back to the last valid
record — replaying a torn tail must never resurrect half a mutation.
Anything torn strictly *before* valid frames is corruption, not a crash
artifact, and raises :class:`WalError` instead of being silently eaten.

Seqnos are assigned by the writer, start at 1, and increase by exactly 1
per record; :meth:`rotate` (used by checkpoints) atomically rewrites the
log keeping only records newer than the checkpointed seqno.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass

WAL_MAGIC = b"LXWAL001"

_FRAME = struct.Struct(">II")

#: Upper bound on a single record's payload; anything larger is treated
#: as frame corruption rather than an attempted 4 GiB allocation.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: The mutation verbs a record may carry.
OPS = ("insert", "update", "delete")


class WalError(RuntimeError):
    """The log is structurally invalid (bad magic, mid-log corruption)."""


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation."""

    seqno: int
    op: str
    doc_id: str
    xml: str | None

    def payload(self) -> bytes:
        return json.dumps(
            {"seqno": self.seqno, "op": self.op, "doc_id": self.doc_id, "xml": self.xml},
            ensure_ascii=False,
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> WalRecord:
        data = json.loads(payload.decode("utf-8"))
        seqno = data["seqno"]
        op = data["op"]
        doc_id = data["doc_id"]
        xml = data.get("xml")
        if not isinstance(seqno, int) or seqno < 1:
            raise ValueError(f"bad WAL seqno: {seqno!r}")
        if op not in OPS:
            raise ValueError(f"bad WAL op: {op!r}")
        if not isinstance(doc_id, str) or not doc_id:
            raise ValueError(f"bad WAL doc id: {doc_id!r}")
        if xml is not None and not isinstance(xml, str):
            raise ValueError("bad WAL xml payload")
        return cls(seqno, op, doc_id, xml)


def _encode(record: WalRecord) -> bytes:
    payload = record.payload()
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def scan(path: str | os.PathLike[str]) -> tuple[list[WalRecord], int, bool]:
    """Read every verifiable record from the log at ``path``.

    Returns ``(records, valid_bytes, torn)`` where ``valid_bytes`` is the
    offset just past the last valid record and ``torn`` marks trailing
    bytes that failed verification (truncated frame, CRC mismatch,
    unparseable payload).  A missing file scans as empty.

    Raises
    ------
    WalError
        If the header magic is wrong — that is a different file, not a
        crashed log — or if the seqno chain is broken (each record must
        carry the previous seqno + 1), which no single torn append can
        produce.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return [], 0, False
    if len(blob) < len(WAL_MAGIC):
        if blob and not WAL_MAGIC.startswith(blob):
            raise WalError(f"{path}: not a LotusX WAL (bad magic)")
        return [], 0, bool(blob)
    if blob[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalError(f"{path}: not a LotusX WAL (bad magic)")
    records: list[WalRecord] = []
    offset = len(WAL_MAGIC)
    size = len(blob)
    while offset < size:
        if size - offset < _FRAME.size:
            return records, offset, True
        length, crc = _FRAME.unpack_from(blob, offset)
        body_start = offset + _FRAME.size
        if length > MAX_PAYLOAD_BYTES or body_start + length > size:
            return records, offset, True
        payload = blob[body_start : body_start + length]
        if zlib.crc32(payload) != crc:
            return records, offset, True
        try:
            record = WalRecord.from_payload(payload)
        except (ValueError, KeyError, TypeError):
            return records, offset, True
        expected = records[-1].seqno + 1 if records else None
        if expected is not None and record.seqno != expected:
            raise WalError(
                f"{path}: seqno chain broken at offset {offset}"
                f" (expected {expected}, found {record.seqno})"
            )
        records.append(record)
        offset = body_start + length
    return records, offset, False


class WriteAheadLog:
    """An append-only mutation log bound to one file.

    Opening an existing log scans and (by default) repairs it: a torn
    tail is truncated so the next append lands on a clean frame
    boundary.  The caller learns what survived via :attr:`records` /
    :attr:`last_seqno` and replays from there.

    ``fsync=True`` forces the data to the device on every append — the
    durable configuration; the default flushes to the OS, which survives
    process crashes (the recovery model the crash tests exercise) without
    paying a device sync per mutation.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        repair: bool = True,
        fsync: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        records, valid_bytes, torn = scan(self.path)
        self.recovered_records = list(records)
        self.repaired_bytes = 0
        exists = os.path.exists(self.path)
        if exists and torn:
            if not repair:
                raise WalError(f"{self.path}: torn tail (repair disabled)")
            total = os.path.getsize(self.path)
            self.repaired_bytes = total - max(valid_bytes, len(WAL_MAGIC))
            with open(self.path, "r+b") as handle:
                handle.truncate(max(valid_bytes, len(WAL_MAGIC)))
        self._handle = open(self.path, "ab")
        if not exists or os.path.getsize(self.path) == 0:
            self._handle.write(WAL_MAGIC)
            self._flush()
        self._record_count = len(records)
        self._last_seqno = records[-1].seqno if records else 0
        self._closed = False

    # -- introspection -------------------------------------------------

    @property
    def last_seqno(self) -> int:
        """Seqno of the newest durable record (0 for an empty log)."""
        return self._last_seqno

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # -- mutation ------------------------------------------------------

    def append(self, seqno: int, op: str, doc_id: str, xml: str | None) -> WalRecord:
        """Append one record and make it durable before returning."""
        if self._closed:
            raise WalError(f"{self.path}: log is closed")
        if seqno < 1 or (self._record_count and seqno != self._last_seqno + 1):
            # A rotated-empty log accepts any starting seqno (a checkpoint
            # may have consumed the whole prefix); otherwise the chain is
            # strict.
            raise WalError(
                f"{self.path}: non-consecutive seqno {seqno}"
                f" (last durable is {self._last_seqno})"
            )
        record = WalRecord(seqno, op, doc_id, xml)
        self._handle.write(_encode(record))
        self._flush()
        self._last_seqno = seqno
        self._record_count += 1
        return record

    def records(self) -> list[WalRecord]:
        """Re-scan the file and return every durable record."""
        records, _, _ = scan(self.path)
        return records

    def rotate(self, keep_after_seqno: int) -> int:
        """Drop records with ``seqno <= keep_after_seqno`` (checkpointing).

        Rewrites the log into a sibling temp file and atomically replaces
        the original, so a crash mid-rotate leaves either the old or the
        new log — never a hybrid.  Returns the number of records kept.
        """
        if self._closed:
            raise WalError(f"{self.path}: log is closed")
        kept = [r for r in self.records() if r.seqno > keep_after_seqno]
        tmp_path = self.path + ".rotate"
        with open(tmp_path, "wb") as handle:
            handle.write(WAL_MAGIC)
            for record in kept:
                handle.write(_encode(record))
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp_path, self.path)
        self._handle = open(self.path, "ab")
        self._record_count = len(kept)
        return len(kept)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> WriteAheadLog:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _flush(self) -> None:
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={self.path!r}, records={self._record_count},"
            f" last_seqno={self._last_seqno})"
        )
