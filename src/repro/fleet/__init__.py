"""Replica fleet: health-checked, hedged, circuit-broken shard serving.

Sharding (:mod:`repro.shard`) scales the *corpus*; this package scales
and protects *read traffic* over it.  Each shard gets ``N`` replicas and
every scatter-gather sub-request flows through a resilience pipeline —
health-ranked replica selection, per-replica circuit breaking, budgeted
retries with jittered backoff, and tail-latency hedging — so one slow or
dead replica costs milliseconds, not the request.

Entry points: :class:`~repro.fleet.fleet.ReplicaFleet` (the router),
:class:`~repro.fleet.fleet.FleetConfig` (tuning), wired into
:class:`~repro.shard.executor.ShardExecutor` by passing ``replicas`` to
:class:`~repro.shard.database.ShardedDatabase`.
"""

from repro.fleet.fleet import FleetConfig, ReplicaFleet, ReplicaGroup
from repro.fleet.health import HealthPolicy, HealthTracker
from repro.fleet.replica import LatencyWindow, Replica

__all__ = [
    "FleetConfig",
    "HealthPolicy",
    "HealthTracker",
    "LatencyWindow",
    "Replica",
    "ReplicaFleet",
    "ReplicaGroup",
]
