"""The replica fleet: resilient routing of per-shard sub-requests.

:class:`ReplicaFleet` gives every shard ``N`` replicas and routes each
scatter-gather sub-request through a resilience pipeline:

1. **Selection** — replicas are ranked by health (healthy → suspect →
   dead), rotated round-robin within a rank, and gated by their
   per-replica :class:`~repro.resilience.breaker.CircuitBreaker`; a
   replica with an open breaker is *skipped* instead of timed out.
2. **Retries** — a failed attempt moves to the next admitted replica
   after a jittered exponential backoff that is budgeted against the
   caller's :class:`~repro.resilience.deadline.Deadline` (see
   :mod:`repro.resilience.retry`): retries never blow the wall clock.
3. **Hedging** — when a primary attempt exceeds the hedge trigger (an
   explicit ``hedge_ms`` or the replica's recent p95), the same task is
   fired on a second replica; the first *success* wins and the loser is
   cancelled cooperatively (not-yet-started legs are cancelled outright,
   running legs finish and are discarded — they still feed health
   accounting).
4. **Health repair** — non-healthy replicas are probed off the request
   path (a small probe pool), so a recovered replica returns to rotation
   without risking live queries; passive health feeds off every routed
   call.

Every replica attempt fires the fault-injection site
``fleet.replica.<shard>.<replica>`` first, which is how the fault
harness makes crash / hang / slow / flap deterministically testable per
replica.  When *every* replica of a group is down, the fleet raises
:class:`~repro.resilience.errors.ShardsUnavailable` — callers degrade to
partial, ``degraded``-flagged responses.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass

from repro.fleet.health import HealthPolicy
from repro.fleet.replica import Replica
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.errors import DeadlineExceeded, ShardsUnavailable
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

#: Extra wall time granted to collect a leg's salvaged partial result
#: after the caller's own deadline has expired (the leg self-limits via
#: its per-shard budget, so this only covers scheduling slack).
SALVAGE_GRACE_S = 0.1


@dataclass(frozen=True)
class FleetConfig:
    """Tuning for the replica fleet's resilience pipeline.

    ``hedge_ms`` selects the hedging trigger: a positive value is a fixed
    trigger, ``None`` derives it per replica from recent latency
    (``hedge_percentile`` over the window, floored at
    ``hedge_floor_ms``), and ``0`` disables hedging entirely.
    """

    replicas: int = 2
    retry: RetryPolicy = RetryPolicy()
    hedge_ms: float | None = None
    hedge_floor_ms: float = 25.0
    hedge_percentile: float = 0.95
    hedge_min_samples: int = 8
    breaker_window: int = 16
    breaker_failure_threshold: float = 0.5
    breaker_min_calls: int = 4
    breaker_cooldown_ms: float = 1000.0
    breaker_half_open_probes: int = 1
    suspect_after: int = 1
    dead_after: int = 3
    probe_interval_ms: float = 250.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        if self.hedge_ms is not None and self.hedge_ms < 0:
            raise ValueError("hedge_ms must be non-negative")
        if not 0.0 < self.hedge_percentile < 1.0:
            raise ValueError("hedge_percentile must be in (0, 1)")

    @property
    def hedging_enabled(self) -> bool:
        return self.hedge_ms is None or self.hedge_ms > 0

    def with_replicas(self, replicas: int) -> FleetConfig:
        return dataclasses.replace(self, replicas=replicas)

    def make_breaker(self, clock) -> CircuitBreaker:
        return CircuitBreaker(
            window=self.breaker_window,
            failure_threshold=self.breaker_failure_threshold,
            min_calls=self.breaker_min_calls,
            cooldown_s=self.breaker_cooldown_ms / 1000.0,
            half_open_probes=self.breaker_half_open_probes,
            clock=clock,
        )

    def make_health_policy(self) -> HealthPolicy:
        return HealthPolicy(
            suspect_after=self.suspect_after,
            dead_after=self.dead_after,
            probe_interval_s=self.probe_interval_ms / 1000.0,
        )


class ReplicaGroup:
    """The replicas serving one shard, with rotating ranked selection."""

    def __init__(self, shard_index: int, replicas: list[Replica]) -> None:
        if not replicas:
            raise ValueError("a replica group needs at least one replica")
        self.shard_index = shard_index
        self.replicas = replicas
        self._lock = threading.Lock()
        self._rotation = 0

    def pick(self, exclude: list[Replica] | tuple = ()) -> Replica | None:
        """The best admitted replica not in ``exclude``, or ``None``.

        Candidates are ranked healthy → suspect → dead, rotated
        round-robin within equal rank so load spreads, then gated by
        their breaker — ``allow()`` both filters open breakers and
        reserves half-open probe slots.
        """
        with self._lock:
            rotation = self._rotation
            self._rotation += 1
        size = len(self.replicas)
        candidates = [r for r in self.replicas if r not in exclude]
        candidates.sort(
            key=lambda r: (r.health.rank(), (r.replica_index - rotation) % size)
        )
        for replica in candidates:
            if replica.breaker.allow():
                return replica
        return None

    def snapshot(self) -> dict:
        return {
            "shard": self.shard_index,
            "replicas": [replica.snapshot() for replica in self.replicas],
        }


class ReplicaFleet:
    """Replica groups for every shard plus the routing pipeline."""

    def __init__(
        self,
        shard_databases: list,
        config: FleetConfig | None = None,
        clock=time.monotonic,
        rng: random.Random | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        self._clock = clock
        self._rng = rng or random.Random()
        health_policy = self.config.make_health_policy()
        self.groups = [
            ReplicaGroup(
                shard_index,
                [
                    # Replicas of a read-only shard share the shard's
                    # database object: identical data, independent
                    # failure domains (site, health, breaker, latency).
                    Replica(
                        shard_index,
                        replica_index,
                        database,
                        health_policy,
                        self.config.make_breaker(clock),
                        clock,
                    )
                    for replica_index in range(self.config.replicas)
                ],
            )
            for shard_index, database in enumerate(shard_databases)
        ]
        self._lock = threading.Lock()
        self._closed = False
        self.counters: dict[str, int] = {
            "calls": 0,
            "failures": 0,
            "retries": 0,
            "hedged_requests": 0,
            "hedge_wins": 0,
            "hedges_cancelled": 0,
            "probes": 0,
            "breaker_skips": 0,
            "groups_down": 0,
        }
        worker_cap = max(4, 2 * len(self.groups))
        self._pool = ThreadPoolExecutor(
            max_workers=worker_cap, thread_name_prefix="lotusx-fleet"
        )
        self._probe_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="lotusx-probe"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.groups)

    def close(self) -> None:
        """Shut down the hedge and probe pools (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._probe_pool.shutdown(wait=False, cancel_futures=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # The pipeline
    # ------------------------------------------------------------------

    def call(self, shard_index: int, task, deadline=None):
        """Run ``task(database)`` on a replica of ``shard_index``.

        Applies selection, retries, and hedging as configured.  Raises
        :class:`ShardsUnavailable` when every replica is down or
        rejected, and lets :class:`DeadlineExceeded` (budget exhaustion,
        not replica failure) propagate for upstream salvage.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("fleet is closed")
            self.counters["calls"] += 1
        group = self.groups[shard_index]
        self._schedule_probes(group)
        if self.config.hedging_enabled and len(group.replicas) > 1:
            return self._call_hedged(group, task, deadline)
        return self._call_sequential(group, task, deadline)

    def _call_sequential(self, group: ReplicaGroup, task, deadline):
        tried: list[Replica] = []
        attempt = 0
        last_error = None
        while True:
            replica = group.pick(tried)
            if replica is None:
                if tried:
                    # Some replica was tried and failed; the rest are
                    # breaker-gated.  Count the skip for monitoring.
                    self._bump("breaker_skips")
                break
            tried.append(replica)
            attempt += 1
            try:
                return self._execute(replica, task, deadline)
            except DeadlineExceeded:
                raise
            except Exception as exc:
                last_error = exc
            delay = self.config.retry.budgeted_delay_s(
                attempt, deadline, self._rng
            )
            if delay is None:
                break
            self._bump("retries")
            if delay > 0:
                time.sleep(delay)
        raise self._group_down(group, last_error)

    def _call_hedged(self, group: ReplicaGroup, task, deadline):
        tried: list[Replica] = []
        attempt = 0
        last_error = None
        while True:
            primary = group.pick(tried)
            if primary is None:
                if tried:
                    self._bump("breaker_skips")
                break
            tried.append(primary)
            attempt += 1
            future = self._submit(primary, task, deadline)
            trigger_s = self._hedge_trigger_s(primary)
            remaining = deadline.remaining() if deadline is not None else None
            if remaining is not None and remaining <= trigger_s:
                # No budget left to hedge: the leg self-limits via its
                # per-shard budget; wait it out (plus salvage grace).
                try:
                    return future.result(timeout=remaining + SALVAGE_GRACE_S)
                except FutureTimeoutError:
                    raise DeadlineExceeded(
                        site="fleet.hedge", remaining_ms=0.0
                    ) from None
                except DeadlineExceeded:
                    raise
                except Exception as exc:
                    last_error = exc
                    break
            try:
                return future.result(timeout=trigger_s)
            except FutureTimeoutError:
                pass  # primary is slow: hedge below
            except DeadlineExceeded:
                raise
            except Exception as exc:
                # Fast failure: plain retry against the next replica.
                last_error = exc
                delay = self.config.retry.budgeted_delay_s(
                    attempt, deadline, self._rng
                )
                if delay is None:
                    break
                self._bump("retries")
                if delay > 0:
                    time.sleep(delay)
                continue
            legs = {future: primary}
            secondary = group.pick(tried)
            if secondary is not None:
                self._bump("hedged_requests")
                tried.append(secondary)
                attempt += 1
                legs[self._submit(secondary, task, deadline)] = secondary
            result, winner, error = self._first_success(legs, deadline)
            if winner is not None:
                if secondary is not None and winner is secondary:
                    self._bump("hedge_wins")
                return result
            if isinstance(error, DeadlineExceeded):
                raise error
            last_error = error or last_error
            delay = self.config.retry.budgeted_delay_s(
                attempt, deadline, self._rng
            )
            if delay is None:
                break
            self._bump("retries")
            if delay > 0:
                time.sleep(delay)
        raise self._group_down(group, last_error)

    def _first_success(self, legs: dict, deadline):
        """First-success-wins over hedge legs.

        Returns ``(result, winning_replica, None)`` on success or
        ``(None, None, last_error)`` when every leg failed.  Losing legs
        are cancelled where possible; already-running legs finish in the
        pool and record their own health outcome.
        """
        last_error = None
        pending = set(legs)
        while pending:
            timeout = None
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    timeout = remaining + SALVAGE_GRACE_S
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # Wall budget exhausted with legs still in flight.
                return (
                    None,
                    None,
                    DeadlineExceeded(site="fleet.hedge", remaining_ms=0.0),
                )
            for future in done:
                try:
                    result = future.result()
                except Exception as exc:
                    last_error = exc
                    continue
                for loser in pending:
                    if loser.cancel():
                        self._bump("hedges_cancelled")
                return result, legs[future], None
        return None, None, last_error

    def _submit(self, replica: Replica, task, deadline):
        return self._pool.submit(self._execute, replica, task, deadline)

    def _execute(self, replica: Replica, task, deadline):
        """One attempt on one replica: fault site, task, bookkeeping."""
        replica.note_call()
        started = self._clock()
        try:
            fault_point(replica.site, deadline)
            result = task(replica.database)
        except DeadlineExceeded:
            # The caller's budget ran out — not the replica's fault.
            replica.breaker.abandon()
            raise
        except Exception:
            replica.record_failure()
            self._bump("failures")
            raise
        replica.record_success(self._clock() - started)
        return result

    def _hedge_trigger_s(self, replica: Replica) -> float:
        config = self.config
        if config.hedge_ms is not None:
            return config.hedge_ms / 1000.0
        floor = config.hedge_floor_ms / 1000.0
        if len(replica.latency) < config.hedge_min_samples:
            return floor
        p = replica.latency.percentile(config.hedge_percentile)
        return floor if p is None else max(p, floor)

    def _group_down(self, group: ReplicaGroup, last_error) -> ShardsUnavailable:
        self._bump("groups_down")
        detail = f": {last_error}" if last_error is not None else ""
        return ShardsUnavailable(
            f"every replica of shard {group.shard_index} is unavailable{detail}",
            down=(group.shard_index,),
            site=f"fleet.group.{group.shard_index}",
        )

    # ------------------------------------------------------------------
    # Active health probes (off the request path)
    # ------------------------------------------------------------------

    def _schedule_probes(self, group: ReplicaGroup) -> None:
        for replica in group.replicas:
            if replica.health.probe_due() and replica.try_claim_probe():
                replica.health.note_probe()
                try:
                    self._probe_pool.submit(self._probe, replica)
                except RuntimeError:  # closed mid-flight
                    replica.release_probe()
                    return

    def _probe(self, replica: Replica) -> None:
        """One active health check against a replica's failure domain.

        Probes feed *health* only; the breaker recovers through its own
        half-open admission on real traffic, so a single good probe can
        re-rank a replica without instantly trusting it with load.
        """
        self._bump("probes")
        try:
            fault_point(replica.site, None)
        except Exception:
            replica.health.record_failure()
        else:
            replica.health.record_success()
        finally:
            replica.release_probe()

    # ------------------------------------------------------------------

    def _bump(self, counter: str) -> None:
        with self._lock:
            self.counters[counter] += 1

    def stats(self) -> dict:
        """Fleet state for ``/api/stats``: counters plus every replica's
        health, breaker, latency, and call counts."""
        with self._lock:
            counters = dict(self.counters)
        return {
            "replicas_per_shard": self.config.replicas,
            "hedge_ms": self.config.hedge_ms,
            "hedging": self.config.hedging_enabled,
            "counters": counters,
            "groups": [group.snapshot() for group in self.groups],
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaFleet(shards={len(self.groups)},"
            f" replicas={self.config.replicas})"
        )
