"""One serving replica: a shard database plus its resilience state.

A :class:`Replica` is the unit the fleet routes to.  For the in-process
fleet, every replica of a shard *shares* the shard's immutable database
object — replicas of a read-only snapshot are identical by construction,
so what distinguishes them is their failure domain: each replica has its
own fault-injection site (``fleet.replica.<shard>.<replica>``), health
tracker, circuit breaker, latency window, and counters.  That is exactly
the state a networked fleet would keep per remote endpoint, which keeps
this layer transport-agnostic.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.fleet.health import HealthPolicy, HealthTracker
from repro.resilience.breaker import CircuitBreaker


class LatencyWindow:
    """A bounded window of recent call latencies with percentile reads.

    Drives the hedging trigger: "fire a hedge when the primary has taken
    longer than the replica's recent p95".  Kept deliberately small —
    percentile reads sort the window, and 64 floats sort in microseconds.
    """

    def __init__(self, size: int = 64) -> None:
        self._samples: deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, fraction: float) -> float | None:
        """The ``fraction`` percentile (0..1) or None when empty."""
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


class Replica:
    """A shard database endpoint with independent resilience state."""

    def __init__(
        self,
        shard_index: int,
        replica_index: int,
        database,
        health_policy: HealthPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock=time.monotonic,
    ) -> None:
        self.shard_index = shard_index
        self.replica_index = replica_index
        self.database = database
        self.health = HealthTracker(health_policy, clock)
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self.latency = LatencyWindow()
        #: Fault-injection site for this replica's failure domain.
        self.site = f"fleet.replica.{shard_index}.{replica_index}"
        self._lock = threading.Lock()
        #: True while an async health probe for this replica is running.
        self.probe_in_flight = False
        self.calls = 0
        self.failures = 0

    # ------------------------------------------------------------------

    def note_call(self) -> None:
        with self._lock:
            self.calls += 1

    def record_success(self, elapsed_s: float) -> None:
        """Passive health: a routed call (or probe) came back fine."""
        self.latency.record(elapsed_s)
        self.health.record_success()
        self.breaker.record_success()

    def record_failure(self) -> None:
        """Passive health: a routed call (or probe) failed."""
        with self._lock:
            self.failures += 1
        self.health.record_failure()
        self.breaker.record_failure()

    def try_claim_probe(self) -> bool:
        """Claim the single probe slot (False when one is in flight)."""
        with self._lock:
            if self.probe_in_flight:
                return False
            self.probe_in_flight = True
            return True

    def release_probe(self) -> None:
        with self._lock:
            self.probe_in_flight = False

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            calls, failures = self.calls, self.failures
        p95 = self.latency.percentile(0.95)
        return {
            "shard": self.shard_index,
            "replica": self.replica_index,
            "site": self.site,
            "calls": calls,
            "failures": failures,
            "p95_ms": None if p95 is None else round(p95 * 1000.0, 3),
            "health": self.health.snapshot(),
            "breaker": self.breaker.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"Replica({self.shard_index}.{self.replica_index},"
            f" {self.health.state}, breaker={self.breaker.state})"
        )
