"""Per-replica health state: passive observation + active probe pacing.

Health is tracked *passively* — every routed call reports success or
failure — and repaired *actively*: once a replica leaves ``healthy``,
:meth:`HealthTracker.probe_due` paces background probe calls (the fleet
runs them off the request path) that can mark the replica healthy again
without risking a real query on it.

States:

* ``healthy`` — last call succeeded; eligible for normal routing.
* ``suspect`` — at least ``suspect_after`` consecutive failures; still
  routable, but ranked behind healthy peers.
* ``dead`` — ``dead_after`` consecutive failures; only probes touch it
  (its circuit breaker is almost certainly open by now as well — health
  ranks replicas, the breaker gates them).

The tracker is thread-safe and takes an injectable clock so tests can
step probe intervals without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"

#: Ranking used by replica selection: lower sorts first.
STATE_RANK = {HEALTHY: 0, SUSPECT: 1, DEAD: 2}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for passive marking and active probe pacing."""

    suspect_after: int = 1
    dead_after: int = 3
    probe_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be at least 1")
        if self.dead_after < self.suspect_after:
            raise ValueError("dead_after must be >= suspect_after")
        if self.probe_interval_s < 0:
            raise ValueError("probe_interval_s must be non-negative")


class HealthTracker:
    """Consecutive-failure health state for one replica."""

    def __init__(
        self, policy: HealthPolicy | None = None, clock=time.monotonic
    ) -> None:
        self.policy = policy or HealthPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._state = HEALTHY
        self._last_probe_at: float | None = None
        #: Counters (monitoring).
        self.successes = 0
        self.failures = 0
        self.probes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def rank(self) -> int:
        """Selection rank (0 healthy, 1 suspect, 2 dead)."""
        with self._lock:
            return STATE_RANK[self._state]

    # ------------------------------------------------------------------
    # Passive observation
    # ------------------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._state = HEALTHY

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.policy.dead_after:
                self._state = DEAD
            elif self._consecutive_failures >= self.policy.suspect_after:
                self._state = SUSPECT

    # ------------------------------------------------------------------
    # Active probing
    # ------------------------------------------------------------------

    def probe_due(self) -> bool:
        """Should an active probe run now?  True only for non-healthy
        replicas whose last probe is at least one interval old."""
        with self._lock:
            if self._state == HEALTHY:
                return False
            if self._last_probe_at is None:
                return True
            elapsed = self._clock() - self._last_probe_at
            return elapsed >= self.policy.probe_interval_s

    def note_probe(self) -> None:
        """Record that a probe was just launched (paces the next one)."""
        with self._lock:
            self.probes += 1
            self._last_probe_at = self._clock()

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "successes": self.successes,
                "failures": self.failures,
                "probes": self.probes,
            }

    def __repr__(self) -> str:
        return f"HealthTracker({self.state})"
