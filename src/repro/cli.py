"""The ``lotusx`` command-line interface.

Subcommands::

    lotusx generate dblp --size 1000 --seed 42 -o dblp.xml
    lotusx stats dblp.xml
    lotusx search dblp.xml '//article[./title~"twig"]/author' -k 5
    lotusx complete dblp.xml --query '//article' --prefix t
    lotusx keyword dblp.xml 'jiaheng twig' --semantics elca
    lotusx examples dblp.xml
    lotusx samples dblp.xml --count 10
    lotusx explain dblp.xml '//article/author'
    lotusx profile dblp.xml '//article[./author][./year]'
    lotusx schema dblp.xml
    lotusx save dblp.xml ./dblp.store
    lotusx index dblp.xml dblp.lxsnap
    lotusx index dblp.xml ./dblp-shards --shards 4
    lotusx serve dblp.xml --port 8080
    lotusx serve dblp.xml --shards 4
    lotusx serve dblp.xml --writable --wal dblp.lxwal
    lotusx serve --snapshot dblp.lxsnap --port 8080
    lotusx serve --snapshot ./dblp-shards --port 8080
    lotusx serve dblp.xml --legacy-threaded
    lotusx serve --corpus dblp=dblp.xml --corpus mark=xmark.lxsnap
    lotusx serve --corpus a=a.xml,quota=2 --corpus b=b.xml,quota=4
    lotusx tenant list --url http://127.0.0.1:8080
    lotusx tenant add books books.xml --url http://127.0.0.1:8080
    lotusx tenant reload dblp --url http://127.0.0.1:8080

Global flag: ``--expand-attributes`` indexes attributes as queryable
``@name`` nodes for every corpus-reading subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.engine.database import LotusXDatabase
from repro.twig.parse import TwigSyntaxError
from repro.twig.planner import Algorithm
from repro.xmlio.errors import XMLError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lotusx",
        description="LotusX: position-aware XML twig search with auto-completion",
    )
    parser.add_argument(
        "--expand-attributes",
        action="store_true",
        help="index attributes as queryable @name nodes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("dataset", choices=["dblp", "xmark", "books", "treebank"])
    generate.add_argument("--size", type=int, default=1000, help="record count")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("-o", "--output", default="-", help="file or - for stdout")

    stats = sub.add_parser("stats", help="print corpus statistics")
    stats.add_argument("corpus", help="XML file to index")

    search = sub.add_parser("search", help="ranked twig search")
    search.add_argument("corpus")
    search.add_argument("query", help="twig query text")
    search.add_argument("-k", type=int, default=10, help="results to show")
    search.add_argument(
        "--algorithm",
        choices=[algorithm.value for algorithm in Algorithm],
        default=Algorithm.AUTO.value,
    )
    search.add_argument(
        "--no-rewrite", action="store_true", help="disable query rewriting"
    )
    search.add_argument("--json", action="store_true", help="JSON output")

    complete = sub.add_parser("complete", help="autocompletion candidates")
    complete.add_argument("corpus")
    complete.add_argument(
        "--query", default="", help="partial twig (empty = first node)"
    )
    complete.add_argument("--node", type=int, default=None, help="anchor node index")
    complete.add_argument("--prefix", default="", help="typed prefix")
    complete.add_argument(
        "--values", action="store_true", help="complete values instead of tags"
    )
    complete.add_argument(
        "--axis", choices=["/", "//"], default="/", help="edge type for new tag"
    )
    complete.add_argument("-k", type=int, default=10)

    keyword = sub.add_parser("keyword", help="schema-free SLCA keyword search")
    keyword.add_argument("corpus")
    keyword.add_argument("query", help="keywords, e.g. 'jiaheng twig'")
    keyword.add_argument("-k", type=int, default=10)
    keyword.add_argument(
        "--semantics", choices=["slca", "elca"], default="slca"
    )

    explain = sub.add_parser("explain", help="show the evaluation plan")
    explain.add_argument("corpus")
    explain.add_argument("query")

    profile = sub.add_parser(
        "profile", help="time the query under every applicable algorithm"
    )
    profile.add_argument("corpus")
    profile.add_argument("query")
    profile.add_argument("--repeats", type=int, default=3)

    examples = sub.add_parser(
        "examples", help="suggest verified starter queries for a corpus"
    )
    examples.add_argument("corpus")
    examples.add_argument("-k", type=int, default=5)

    samples = sub.add_parser(
        "samples", help="sample random satisfiable twig queries (workloads)"
    )
    samples.add_argument("corpus")
    samples.add_argument("--count", type=int, default=10)
    samples.add_argument("--seed", type=int, default=42)
    samples.add_argument("--max-nodes", type=int, default=5)

    schema = sub.add_parser("schema", help="print the inferred DTD-like schema")
    schema.add_argument("corpus")

    save = sub.add_parser("save", help="persist an indexed corpus to a directory")
    save.add_argument("corpus")
    save.add_argument("directory")

    index = sub.add_parser(
        "index", help="build the full index and write a snapshot file"
    )
    index.add_argument("corpus", help="XML file to index")
    index.add_argument("snapshot", help="snapshot file (or directory with --shards)")
    index.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition the corpus into N shard databases and write a"
        " sharded snapshot directory instead of a single file",
    )

    serve = sub.add_parser("serve", help="run the web GUI / JSON API")
    serve.add_argument(
        "corpus",
        nargs="?",
        default=None,
        help="XML file to index (or use --snapshot for a warm start)",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        metavar="FILE",
        help="warm-start from a snapshot written by 'lotusx index'"
        " (a .lxsnap file or a sharded snapshot directory)"
        " instead of indexing an XML corpus",
    )
    serve.add_argument(
        "--corpus",
        action="append",
        default=None,
        dest="corpora",
        metavar="NAME=PATH[,OPT=VAL...]",
        help="serve a named corpus as a tenant at /api/t/NAME/"
        " (repeatable; multi-tenant serving). PATH is an XML file, a"
        " .lxsnap snapshot, or a sharded snapshot directory"
        " (auto-detected). Options: quota=N (concurrency slice),"
        " shards=N (XML only), writable=1, wal=FILE. The first --corpus"
        " is the default tenant bare /api/ paths route to",
    )
    serve.add_argument(
        "--default-tenant",
        default=None,
        metavar="NAME",
        help="which --corpus tenant bare /api/ paths route to"
        " (default: the first --corpus)",
    )
    serve.add_argument(
        "--tenant-admin",
        action="store_true",
        help="allow POST /api/tenants to load new corpora at runtime"
        " (default: the tenant set is fixed at startup)",
    )
    serve.add_argument(
        "--mmap",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve snapshot hot sections zero-copy from an mmap of the"
        " file (v3 snapshots; older snapshot versions automatically fall"
        " back to the copying loader). --no-mmap forces the copying"
        " loader. Ignored without --snapshot",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition an XML corpus into N shards and serve them with"
        " scatter-gather execution (ignored with --snapshot: a sharded"
        " snapshot directory carries its own shard count)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="serve each shard with N replicas behind health checks,"
        " retries, hedged requests, and per-replica circuit breakers"
        " (sharded serving only; default 1 = no fleet)",
    )
    serve.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        metavar="MS",
        help="hedged-request trigger: fire a second replica when the"
        " first exceeds MS milliseconds (0 disables hedging; default:"
        " adaptive p95 per replica)",
    )
    serve.add_argument(
        "--breaker-cooldown-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-replica circuit-breaker open→half-open cooldown"
        " (default 1000)",
    )
    serve.add_argument(
        "--breaker-failure-threshold",
        type=float,
        default=None,
        metavar="RATE",
        help="failure rate (0..1] over the breaker's outcome window that"
        " trips it open (default 0.5)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts per shard sub-request across replicas, with"
        " jittered exponential backoff budgeted against the request"
        " deadline (default 3)",
    )
    serve.add_argument(
        "--degraded-policy",
        choices=["salvage", "strict"],
        default="salvage",
        help="when whole shard groups are down: 'salvage' (default)"
        " returns partial results marked degraded; 'strict' rejects"
        " them with HTTP 503",
    )
    serve.add_argument(
        "--writable",
        action="store_true",
        help="enable the live write path: POST /api/documents mutations"
        " are WAL-logged, applied as delta segments, and become"
        " queryable without a restart (monolithic serving only)",
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="FILE",
        help="write-ahead-log path for --writable (default:"
        " <corpus>.lxwal next to the corpus or snapshot)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=None,
        metavar="N",
        help="requests allowed to execute at once (default 8);"
        " excess load waits briefly, then is shed with HTTP 429",
    )
    serve.add_argument(
        "--default-timeout-ms",
        type=int,
        default=None,
        metavar="MS",
        help="default per-request deadline in milliseconds (default"
        " 10000; /api/complete uses a tighter 1000); expiring requests"
        " return partial results marked truncated",
    )
    serve.add_argument(
        "--legacy-threaded",
        action="store_true",
        help="serve with the legacy thread-per-request stdlib server"
        " instead of the event-driven front end (no keep-alive,"
        " coalescing, keystroke batching, or streamed responses)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=None,
        metavar="N",
        help="event-driven transport: concurrent connections accepted"
        " before new ones are refused with HTTP 429 (default 256)",
    )
    serve.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        metavar="S",
        help="event-driven transport: drop a connection idle (or"
        " dribbling a partial request) longer than S seconds"
        " (default 30)",
    )

    tenant = sub.add_parser(
        "tenant", help="inspect/administer a running multi-tenant server"
    )
    tenant_sub = tenant.add_subparsers(dest="tenant_command", required=True)
    tenant_list = tenant_sub.add_parser(
        "list", help="list the server's tenants"
    )
    tenant_add = tenant_sub.add_parser(
        "add", help="load a new corpus into a --tenant-admin server"
    )
    tenant_add.add_argument("name", help="tenant name ([a-z0-9_-]{1,64})")
    tenant_add.add_argument(
        "path", help="server-side corpus path (XML or snapshot)"
    )
    tenant_add.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="concurrency slice for the new tenant",
    )
    tenant_add.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition an XML corpus into N shards",
    )
    tenant_reload = tenant_sub.add_parser(
        "reload", help="hot-reload one tenant from its configured source"
    )
    tenant_reload.add_argument("name", help="tenant to reload")
    for tenant_cmd in (tenant_list, tenant_add, tenant_reload):
        tenant_cmd.add_argument(
            "--url",
            default="http://127.0.0.1:8080",
            help="base URL of the running server",
        )

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.engine.store import StoreError

    try:
        return _dispatch(args)
    except (TwigSyntaxError, XMLError, StoreError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "index":
        return _cmd_index(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "tenant":
        return _cmd_tenant(args)
    database = LotusXDatabase.from_file(
        args.corpus, expand_attributes=args.expand_attributes
    )
    if args.command == "stats":
        return _cmd_stats(database)
    if args.command == "search":
        return _cmd_search(database, args)
    if args.command == "complete":
        return _cmd_complete(database, args)
    if args.command == "keyword":
        return _cmd_keyword(database, args)
    if args.command == "explain":
        print(json.dumps(database.explain(args.query), indent=2))
        return 0
    if args.command == "examples":
        for example in database.example_queries(k=args.k):
            print(f"{example.query:50} -- {example.description}")
        return 0
    if args.command == "samples":
        from repro.twig.sample import sample_workload

        for pattern in sample_workload(
            database.labeled, args.seed, args.count, max_nodes=args.max_nodes
        ):
            print(f"{str(pattern):60} # {len(database.matches(pattern))} matches")
        return 0
    if args.command == "profile":
        data = database.profile(args.query, repeats=args.repeats)
        print(f"query:     {data['query']}")
        print(f"planner:   {data['algorithm']}")
        print(f"xpath:     {data['xpath']}")
        header = f"{'algorithm':18} {'median_ms':>10} {'scanned':>9} {'interm':>8} {'matches':>8}"
        print(header)
        print("-" * len(header))
        for profile_row in data["profiles"]:
            print(
                f"{profile_row['algorithm']:18}"
                f" {profile_row['median_ms']:>10}"
                f" {profile_row['elements_scanned']:>9}"
                f" {profile_row['intermediate_results']:>8}"
                f" {profile_row['matches']:>8}"
            )
        return 0
    if args.command == "schema":
        from repro.summary.schema import infer_schema

        print(infer_schema(database.document).to_dtd())
        return 0
    if args.command == "save":
        from repro.engine.store import save_database

        save_database(database, args.directory)
        print(f"saved to {args.directory}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import (
        generate_books_xml,
        generate_dblp_xml,
        generate_treebank_xml,
        generate_xmark_xml,
    )

    generators = {
        "dblp": generate_dblp_xml,
        "xmark": generate_xmark_xml,
        "books": generate_books_xml,
        "treebank": generate_treebank_xml,
    }
    xml_text = generators[args.dataset](args.size, args.seed)
    if args.output == "-":
        print(xml_text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(xml_text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_stats(database: LotusXDatabase) -> int:
    for key, value in database.statistics().as_dict().items():
        print(f"{key:22} {value}")
    return 0


def _cmd_search(database: LotusXDatabase, args: argparse.Namespace) -> int:
    response = database.search(
        args.query,
        k=args.k,
        algorithm=Algorithm(args.algorithm),
        rewrite=not args.no_rewrite,
    )
    if args.json:
        print(json.dumps(response.as_dict(), indent=2))
        return 0
    print(
        f"{response.total_matches} matches"
        f" ({response.elapsed_seconds * 1000:.1f} ms"
        + (", rewritten" if response.used_rewrites else "")
        + ")"
    )
    for rank, hit in enumerate(response, start=1):
        print(f"{rank:2}. [{hit.score.combined:.3f}] {hit.xpath}")
        if hit.snippet:
            print(f"      {hit.snippet}")
        if hit.rewrite_steps:
            print(f"      (rewritten: {'; '.join(hit.rewrite_steps)})")
    return 0


def _cmd_complete(database: LotusXDatabase, args: argparse.Namespace) -> int:
    from repro.server.api import handle_complete

    payload = {
        "kind": "value" if args.values else "tag",
        "prefix": args.prefix,
        "k": args.k,
        "query": args.query,
        "node": args.node,
        "axis": args.axis,
    }
    if not args.query:
        payload.pop("query")
        payload.pop("node")
    for candidate in handle_complete(database, payload)["candidates"]:
        paths = f"  ({', '.join(candidate['sample_paths'])})" if candidate["sample_paths"] else ""
        print(f"{candidate['text']:30} x{candidate['count']}{paths}")
    return 0


def _cmd_keyword(database: LotusXDatabase, args: argparse.Namespace) -> int:
    response = database.keyword_search(
        args.query, k=args.k, semantics=args.semantics
    )
    print(f"{response.total_slcas} answers for terms {list(response.terms)}")
    for rank, hit in enumerate(response, start=1):
        data = hit.as_dict()
        print(f"{rank:2}. [{data['score']:.3f}] <{data['tag']}> {data['xpath']}")
        if data["snippet"]:
            print(f"      {data['snippet']}")
    return 0


def _print_section_table(section_sizes: dict, total_bytes: int) -> None:
    """Per-section byte sizes of a freshly written snapshot."""
    header = f"{'section':16} {'bytes':>12} {'share':>7}"
    print(header)
    print("-" * len(header))
    for section, size in sorted(section_sizes.items(), key=lambda kv: -kv[1]):
        share = size / total_bytes if total_bytes else 0.0
        print(f"{section:16} {size:>12,} {share:>6.1%}")
    print(f"{'total':16} {total_bytes:>12,}")


def _cmd_index(args: argparse.Namespace) -> int:
    import time

    if args.shards < 1:
        raise ValueError("--shards must be at least 1")

    started = time.perf_counter()
    if args.shards > 1:
        from repro.engine.store import save_sharded_snapshot
        from repro.shard.database import ShardedDatabase

        if args.expand_attributes:
            raise ValueError("sharded indexing does not support --expand-attributes")
        database = ShardedDatabase.from_file(args.corpus, args.shards)
        built = time.perf_counter() - started
        info = save_sharded_snapshot(database, args.snapshot)
        saved = time.perf_counter() - started - built
        print(
            f"indexed {info.element_count} elements into"
            f" {info.shard_count} shards in {built:.2f}s"
        )
        database.close()
    else:
        from repro.engine.store import save_snapshot

        database = LotusXDatabase.from_file(
            args.corpus, expand_attributes=args.expand_attributes
        )
        built = time.perf_counter() - started
        info = save_snapshot(database, args.snapshot)
        saved = time.perf_counter() - started - built
        print(
            f"indexed {info.element_count} elements ({info.path_count} paths)"
            f" in {built:.2f}s"
        )
    _print_section_table(info.section_sizes, info.size_bytes)
    print(
        f"wrote {info.path} ({info.size_bytes / 1e6:.2f} MB) in {saved:.2f}s;"
        f" warm-start with: lotusx serve --snapshot {info.path}"
    )
    return 0


def _fleet_config(args: argparse.Namespace):
    """A FleetConfig from the serve flags, or None for fleet defaults."""
    tuned = {}
    if args.hedge_ms is not None:
        tuned["hedge_ms"] = args.hedge_ms
    if args.breaker_cooldown_ms is not None:
        if args.breaker_cooldown_ms <= 0:
            raise ValueError("--breaker-cooldown-ms must be positive")
        tuned["breaker_cooldown_ms"] = args.breaker_cooldown_ms
    if args.breaker_failure_threshold is not None:
        tuned["breaker_failure_threshold"] = args.breaker_failure_threshold
    if args.retries is not None:
        if args.retries < 1:
            raise ValueError("--retries must be at least 1")
        from repro.resilience.retry import RetryPolicy

        tuned["retry"] = RetryPolicy(max_attempts=args.retries)
    if not tuned and args.replicas <= 1:
        return None
    from repro.fleet import FleetConfig

    return FleetConfig(replicas=max(args.replicas, 1), **tuned)


def _replica_banner(replicas: int) -> str:
    return f", {replicas} replicas each" if replicas > 1 else ""


def _server_config(args: argparse.Namespace):
    """A ServerConfig from the serve flags (shared by both transports)."""
    from repro.server.pipeline import ServerConfig

    overrides = {"degraded_policy": args.degraded_policy}
    if args.max_concurrency is not None:
        if args.max_concurrency < 1:
            raise ValueError("--max-concurrency must be at least 1")
        overrides["max_concurrency"] = args.max_concurrency
    if args.default_timeout_ms is not None:
        if args.default_timeout_ms < 1:
            raise ValueError("--default-timeout-ms must be positive")
        overrides["default_timeout_ms"] = args.default_timeout_ms
    if args.max_connections is not None:
        if args.max_connections < 1:
            raise ValueError("--max-connections must be at least 1")
        overrides["max_connections"] = args.max_connections
    if args.idle_timeout_s is not None:
        if args.idle_timeout_s <= 0:
            raise ValueError("--idle-timeout-s must be positive")
        overrides["idle_timeout_s"] = args.idle_timeout_s
    return ServerConfig(**overrides)


def _serve(args: argparse.Namespace, holder, config) -> None:
    """Run the selected transport until Ctrl-C."""
    transport = "threaded (legacy)" if args.legacy_threaded else "event-driven"
    print(
        f"LotusX serving http://{args.host}:{args.port}/"
        f"  [{transport}]  (Ctrl-C to stop)"
    )
    try:
        if args.legacy_threaded:
            from repro.server.app import serve

            serve(holder, args.host, args.port, config)
        else:
            from repro.server.aio import serve_async

            serve_async(holder, args.host, args.port, config)
    except KeyboardInterrupt:
        print("\nbye")


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.server.reload import DatabaseHolder, ReloadSource

    if args.corpora:
        if args.corpus is not None or args.snapshot is not None:
            raise ValueError(
                "--corpus (multi-tenant) cannot be combined with a"
                " positional corpus or --snapshot"
            )
        if args.writable or args.wal is not None:
            raise ValueError(
                "use --corpus NAME=PATH,writable=1[,wal=FILE] for"
                " writable tenants"
            )
        return _cmd_serve_tenants(args)
    if args.default_tenant is not None or args.tenant_admin:
        raise ValueError("--default-tenant/--tenant-admin require --corpus")

    if (args.corpus is None) == (args.snapshot is None):
        raise ValueError("serve needs exactly one of: a corpus file, or --snapshot")

    if args.shards < 1:
        raise ValueError("--shards must be at least 1")
    if args.replicas < 1:
        raise ValueError("--replicas must be at least 1")

    # Deterministic fault injection for resilience drills: the fault
    # harness (LOTUSX_FAULT_SPEC) arms named sites such as
    # fleet.replica.<shard>.<replica> before any request is served.
    from repro.resilience import faults

    faults.install_from_env()

    if args.writable:
        if args.shards > 1:
            raise ValueError("--writable requires monolithic serving (--shards 1)")
        if args.replicas > 1:
            raise ValueError("--writable is incompatible with --replicas")
        if args.expand_attributes:
            raise ValueError("--writable does not support --expand-attributes")
        return _cmd_serve_writable(args)
    if args.wal is not None:
        raise ValueError("--wal requires --writable")

    fleet_config = _fleet_config(args)

    started = time.perf_counter()
    if args.snapshot is not None:
        from repro.engine.store import (
            is_mmap_backed,
            is_sharded_snapshot,
            load_sharded_snapshot,
            load_snapshot,
        )

        if is_sharded_snapshot(args.snapshot):
            database = load_sharded_snapshot(
                args.snapshot,
                replicas=args.replicas,
                fleet_config=fleet_config,
                mmap=args.mmap,
            )
            banner = (
                f"sharded snapshot {args.snapshot}"
                f" ({database.shard_count} shards"
                f"{_replica_banner(args.replicas)}"
                f"{', mmap' if is_mmap_backed(database) else ''})"
            )
        else:
            if args.replicas > 1:
                raise ValueError(
                    "--replicas requires a sharded snapshot directory"
                )
            database = load_snapshot(args.snapshot, mmap=args.mmap)
            banner = f"snapshot {args.snapshot}" + (
                " (mmap)" if is_mmap_backed(database) else ""
            )
        source = ReloadSource(
            "snapshot",
            args.snapshot,
            replicas=args.replicas,
            fleet_config=fleet_config,
            mmap=args.mmap,
        )
    elif args.shards > 1:
        from repro.shard.database import ShardedDatabase

        if args.expand_attributes:
            raise ValueError("sharded serving does not support --expand-attributes")
        database = ShardedDatabase.from_file(
            args.corpus,
            args.shards,
            replicas=args.replicas,
            fleet_config=fleet_config,
        )
        source = ReloadSource(
            "xml",
            args.corpus,
            shards=args.shards,
            replicas=args.replicas,
            fleet_config=fleet_config,
        )
        banner = (
            f"corpus {args.corpus} ({args.shards} shards"
            f"{_replica_banner(args.replicas)})"
        )
    else:
        if args.replicas > 1:
            raise ValueError("--replicas requires sharded serving (--shards > 1)")
        database = LotusXDatabase.from_file(
            args.corpus, expand_attributes=args.expand_attributes
        )
        source = ReloadSource("xml", args.corpus, args.expand_attributes)
        banner = f"corpus {args.corpus}"
    holder = DatabaseHolder(database, source)
    print(f"loaded {banner} in {time.perf_counter() - started:.2f}s")

    _serve(args, holder, _server_config(args))
    return 0


def _parse_corpus_spec(spec: str) -> tuple[str, str, dict]:
    """Decode one ``--corpus NAME=PATH[,OPT=VAL...]`` value."""
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise ValueError(
            f"--corpus needs NAME=PATH[,OPT=VAL...], got {spec!r}"
        )
    parts = rest.split(",")
    path = parts[0]
    options: dict = {"quota": None, "shards": 1, "writable": False, "wal": None}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        if not sep or key not in options:
            raise ValueError(
                f"--corpus {name}: unknown option {part!r}"
                " (expected quota=N, shards=N, writable=1, or wal=FILE)"
            )
        if key in ("quota", "shards"):
            options[key] = int(value)
        elif key == "writable":
            options[key] = value not in ("0", "false", "")
        else:
            options[key] = value
    if options["quota"] is not None and options["quota"] < 1:
        raise ValueError(f"--corpus {name}: quota must be at least 1")
    if options["shards"] < 1:
        raise ValueError(f"--corpus {name}: shards must be at least 1")
    if options["writable"] and options["shards"] > 1:
        raise ValueError(f"--corpus {name}: writable tenants cannot shard")
    return name, path, options


def _build_tenant_holder(name: str, path: str, options: dict, mmap: bool):
    """Load one named corpus into a labeled DatabaseHolder."""
    from repro.server.pipeline import _detect_source_kind
    from repro.server.reload import DatabaseHolder, ReloadSource

    if options["writable"]:
        from repro.write.writer import open_writable_database

        base = LotusXDatabase.from_file(path)
        wal_path = options["wal"] or f"{path}.lxwal"
        database = open_writable_database(base, wal_path)
        holder = DatabaseHolder(database, label=name)
        database.writer.attach_holder(holder)
        return holder
    if options["wal"]:
        raise ValueError(f"--corpus {name}: wal= requires writable=1")
    kind = _detect_source_kind(path)
    source = ReloadSource(
        kind,
        path,
        shards=options["shards"] if kind == "xml" else 1,
        mmap=mmap if kind == "snapshot" else False,
    )
    return DatabaseHolder(source.build(), source, label=name)


def _cmd_serve_tenants(args: argparse.Namespace) -> int:
    """``lotusx serve --corpus a=a.xml --corpus b=b.xml ...``"""
    import time

    from repro.server.reload import serving_element_count
    from repro.tenant.registry import TenantRegistry

    registry = TenantRegistry()
    registry.admin_enabled = args.tenant_admin
    for spec in args.corpora:
        name, path, options = _parse_corpus_spec(spec)
        started = time.perf_counter()
        holder = _build_tenant_holder(name, path, options, args.mmap)
        tenant = registry.add(
            name,
            holder=holder,
            quota=options["quota"],
            default=name == args.default_tenant,
        )
        quota_note = (
            f", quota {options['quota']}" if options["quota"] else ""
        )
        print(
            f"loaded tenant {name} from {path}"
            f" ({serving_element_count(holder.current)} elements"
            f"{quota_note}) in {time.perf_counter() - started:.2f}s"
        )
        del tenant
    if args.default_tenant is not None and (
        registry.default_name != args.default_tenant
    ):
        raise ValueError(
            f"--default-tenant {args.default_tenant!r} is not a --corpus"
        )
    print(
        f"serving {len(registry)} tenants"
        f" (default: {registry.default_name};"
        f" tenant admin {'on' if args.tenant_admin else 'off'})"
    )
    _serve(args, registry, _server_config(args))
    return 0


def _http_json(method: str, url: str, payload: dict | None = None):
    """One JSON request to a running server; ``(status, body_dict)``."""
    import urllib.error
    import urllib.request

    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read())
        except ValueError:
            body = {"error": str(exc)}
        return exc.code, body


def _cmd_tenant(args: argparse.Namespace) -> int:
    """``lotusx tenant list|add|reload`` against a running server."""
    base = args.url.rstrip("/")
    if args.tenant_command == "list":
        status, body = _http_json("GET", f"{base}/api/tenants")
        if status != 200:
            print(f"error: {body.get('error', status)}", file=sys.stderr)
            return 1
        header = (
            f"{'name':20} {'gen':>4} {'elements':>9} {'requests':>9}"
            f" {'quota':>6}  source"
        )
        print(header)
        print("-" * len(header))
        for row in body["tenants"]:
            marker = "*" if row["name"] == body["default"] else " "
            quota = row["quota"] if row["quota"] is not None else "-"
            print(
                f"{marker}{row['name']:19} {row['generation']:>4}"
                f" {row['elements']:>9} {row['requests']:>9}"
                f" {quota:>6}  {row['source'] or '-'}"
            )
        print(f"(* = default; admin {'on' if body['admin_enabled'] else 'off'})")
        return 0
    if args.tenant_command == "add":
        payload: dict = {"name": args.name, "path": args.path}
        if args.quota is not None:
            payload["quota"] = args.quota
        if args.shards > 1:
            payload["shards"] = args.shards
        status, body = _http_json("POST", f"{base}/api/tenants", payload)
        if status != 200:
            print(f"error: {body.get('error', status)}", file=sys.stderr)
            return 1
        print(
            f"added tenant {body['tenant']}"
            f" (tenants now: {', '.join(body['tenants'])})"
        )
        return 0
    if args.tenant_command == "reload":
        status, body = _http_json(
            "POST", f"{base}/api/t/{args.name}/reload", {}
        )
        if status != 200:
            print(f"error: {body.get('error', status)}", file=sys.stderr)
            return 1
        print(
            f"reloaded tenant {body.get('tenant', args.name)}:"
            f" generation {body['generation']},"
            f" {body['elements']} elements,"
            f" {body['elapsed_seconds']}s"
        )
        return 0
    raise AssertionError(f"unhandled tenant command {args.tenant_command!r}")


def _cmd_serve_writable(args: argparse.Namespace) -> int:
    """Serve a monolithic corpus with the live write path enabled.

    The base index becomes segment 0 of a
    :class:`~repro.write.segments.SegmentedCorpus`; mutations arriving at
    ``POST /api/documents`` are WAL-logged and applied as delta
    segments.  Writable serving has no reload source — the WAL *is* the
    authority for post-start changes, so ``POST /api/reload`` answers
    400 ``reload_unavailable``.
    """
    import time

    from repro.server.reload import DatabaseHolder
    from repro.write.writer import open_writable_database

    started = time.perf_counter()
    base_seqno = 0
    if args.snapshot is not None:
        from repro.engine.store import (
            is_sharded_snapshot,
            load_snapshot,
            read_snapshot_info,
        )

        if is_sharded_snapshot(args.snapshot):
            raise ValueError("--writable cannot serve a sharded snapshot")
        info = read_snapshot_info(args.snapshot)
        base_seqno, base_ids = info.seqno, info.document_ids
        # The write path only ever patches columns copy-on-write, so an
        # mmap-backed base segment is safe under live mutations.
        base = load_snapshot(args.snapshot, mmap=args.mmap)
        source_path = args.snapshot
        banner = f"snapshot {args.snapshot} (checkpoint seqno {base_seqno})"
    else:
        base = LotusXDatabase.from_file(args.corpus)
        base_ids = None
        source_path = args.corpus
        banner = f"corpus {args.corpus}"
    wal_path = args.wal if args.wal is not None else f"{source_path}.lxwal"

    database = open_writable_database(
        base, wal_path, base_seqno=base_seqno, document_ids=base_ids
    )
    holder = DatabaseHolder(database)
    database.writer.attach_holder(holder)
    writer_stats = database.writer.statistics()
    print(
        f"loaded {banner} in {time.perf_counter() - started:.2f}s"
        f" (writable; wal {wal_path},"
        f" {writer_stats['wal_records']} log records,"
        f" last applied seqno {writer_stats['last_applied_seqno']})"
    )

    try:
        _serve(args, holder, _server_config(args))
    finally:
        database.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
