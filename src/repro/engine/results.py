"""Search results: ranked hits with snippets and provenance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.labeling.assign import LabeledElement
from repro.ranking.scorer import MatchScore
from repro.twig.match import Match
from repro.twig.pattern import TwigPattern

#: Maximum snippet length in characters.
SNIPPET_LENGTH = 160


def element_xpath(element: LabeledElement) -> str:
    """Absolute positional XPath of ``element``: ``/dblp[1]/article[2]``.

    Positions are 1-based ordinals among *same-tag* siblings, matching
    XPath semantics.
    """
    steps: list[str] = []
    current: LabeledElement | None = element
    while current is not None:
        parent = current.parent
        if parent is None:
            steps.append(f"/{current.tag}[1]")
        elif current.tag.startswith("@"):
            # Synthetic attribute node (repro.xmlio.transform): XPath
            # attribute steps carry no positional predicate.
            steps.append(f"/{current.tag}")
        else:
            ordinal = 0
            for sibling in parent.element.child_elements():
                if sibling.tag == current.tag:
                    ordinal += 1
                if sibling is current.element:
                    break
            steps.append(f"/{current.tag}[{ordinal}]")
        current = parent
    return "".join(reversed(steps))


def make_snippet(
    element: LabeledElement,
    limit: int = SNIPPET_LENGTH,
    highlight_terms: tuple[str, ...] = (),
) -> str:
    """A one-line text preview of the element's subtree.

    With ``highlight_terms``, the window is centered on the first term
    occurrence and every term occurrence inside the window is wrapped in
    ``**…**`` (terminal- and markdown-friendly).
    """
    return snippet_from_text(
        " ".join(element.element.itertext()), limit, highlight_terms
    )


def snippet_from_text(
    raw_text: str,
    limit: int = SNIPPET_LENGTH,
    highlight_terms: tuple[str, ...] = (),
) -> str:
    """:func:`make_snippet` on pre-gathered subtree text.

    Used where the logical subtree spans several physical elements (the
    corpus root of a sharded or segmented database): the caller
    concatenates the per-shard texts and gets the exact monolithic
    snippet back.
    """
    text = " ".join(raw_text.split())
    if not highlight_terms:
        if len(text) > limit:
            text = text[: limit - 1].rstrip() + "…"
        return text

    lowered = text.lower()
    first = min(
        (lowered.find(term.lower()) for term in highlight_terms
         if lowered.find(term.lower()) != -1),
        default=-1,
    )
    start = 0
    prefix = ""
    if first > limit // 2:
        start = max(0, first - limit // 3)
        # Snap to a word boundary.
        space = text.find(" ", start)
        if space != -1 and space < first:
            start = space + 1
        prefix = "…"
    window = text[start : start + limit]
    suffix = "…" if start + limit < len(text) else ""
    for term in sorted(set(highlight_terms), key=len, reverse=True):
        window = _wrap_term(window, term)
    return prefix + window.rstrip() + suffix


def _wrap_term(text: str, term: str) -> str:
    """Wrap case-insensitive occurrences of ``term`` in ``**…**``."""
    out: list[str] = []
    lowered = text.lower()
    needle = term.lower()
    position = 0
    while True:
        found = lowered.find(needle, position)
        if found == -1:
            out.append(text[position:])
            return "".join(out)
        out.append(text[position:found])
        out.append("**" + text[found : found + len(term)] + "**")
        position = found + len(term)


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked search hit.

    ``outputs`` are the elements bound to the pattern's output nodes (one
    per output node); ``score`` carries the structural/textual breakdown
    and any rewrite penalty; ``source_query`` renders the (possibly
    rewritten) pattern that produced the hit.
    """

    outputs: tuple[LabeledElement, ...]
    score: MatchScore
    match: Match
    source_query: str
    rewrite_steps: tuple[str, ...] = ()
    #: The (possibly rewritten) query's search terms, for highlighting.
    terms: tuple[str, ...] = ()

    @property
    def primary(self) -> LabeledElement:
        return self.outputs[0]

    @property
    def snippet(self) -> str:
        """Plain one-line preview (no markup)."""
        return make_snippet(self.primary)

    @property
    def highlighted_snippet(self) -> str:
        """Preview centered on and highlighting the query terms."""
        return make_snippet(self.primary, highlight_terms=self.terms)

    @property
    def xpath(self) -> str:
        return element_xpath(self.primary)

    def fragment(self) -> str:
        """The primary output's subtree as an XML fragment.

        Synthetic attribute nodes (``@name``, from attribute expansion)
        render as ``name="value"`` since they have no element form.
        """
        return element_fragment(self.primary)

    def as_dict(self) -> dict:
        return {
            "xpath": self.xpath,
            "tag": self.primary.tag,
            "snippet": self.snippet,
            "highlighted_snippet": self.highlighted_snippet,
            "score": self.score.as_dict(),
            "source_query": self.source_query,
            "rewrite_steps": list(self.rewrite_steps),
        }


def element_fragment(element: LabeledElement) -> str:
    """Serialize ``element``'s subtree as an XML fragment.

    A synthetic attribute node renders as ``name="value"``.  For regular
    elements from an attribute-expanded database, the synthetic ``@name``
    children are stripped first — the information is already carried by
    the elements' real ``attributes``.
    """
    from repro.xmlio.escape import escape_attribute
    from repro.xmlio.serializer import serialize
    from repro.xmlio.tree import Element, Text

    if element.tag.startswith("@"):
        return f'{element.tag[1:]}="{escape_attribute(element.element.text)}"'

    def strip_synthetic(source: Element) -> Element:
        copy = Element(source.tag, dict(source.attributes))
        for child in source.children:
            if isinstance(child, Text):
                copy.append_text(child.value)
            elif isinstance(child, Element) and not child.tag.startswith("@"):
                copy.append(strip_synthetic(child))
        return copy

    return serialize(strip_synthetic(element.element))


@dataclass
class SearchResponse:
    """Full response of :meth:`repro.engine.database.LotusXDatabase.search`."""

    query: str
    results: list[SearchResult] = field(default_factory=list)
    total_matches: int = 0
    used_rewrites: bool = False
    rewrites_tried: int = 0
    elapsed_seconds: float = 0.0
    #: True when a deadline expired mid-search and ``results`` only
    #: covers what could be salvaged within the budget.
    truncated: bool = False
    #: Which corners were cut to meet the deadline (e.g. ``"deadline"``
    #: when matching was cut short, ``"rewrites-skipped"`` when rewrite
    #: exploration was abandoned to save the remaining budget).
    degraded: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "total_matches": self.total_matches,
            "used_rewrites": self.used_rewrites,
            "rewrites_tried": self.rewrites_tried,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "truncated": self.truncated,
            "degraded": list(self.degraded),
            "results": [result.as_dict() for result in self.results],
        }

    def to_xml(self) -> str:
        """The hits as one ``<results>`` document (fragment export)."""
        parts = [f'<results query="{_attr(self.query)}">']
        for result in self.results:
            parts.append(
                f'  <hit xpath="{_attr(result.xpath)}"'
                f' score="{result.score.combined:.4f}">'
            )
            fragment = result.fragment()
            if fragment.startswith("<"):
                parts.append("    " + fragment)
            else:
                parts.append(f"    <attribute {fragment}/>")
            parts.append("  </hit>")
        parts.append("</results>")
        return "\n".join(parts)


def _attr(value: str) -> str:
    from repro.xmlio.escape import escape_attribute

    return escape_attribute(value)
