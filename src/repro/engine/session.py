"""Headless model of the LotusX graphical query builder.

Every gesture the GUI offers is a method here, so the full interactive
experience — draw a node, get candidates while typing, accept one, type a
value, run — is scriptable and testable.  The web front-end in
:mod:`repro.server` drives exactly this class.

A session owns one evolving :class:`~repro.twig.pattern.TwigPattern`::

    session = QueryBuilderSession(db)
    session.suggest_tags(prefix="ar")          # position-aware candidates
    article = session.add_node("article")      # the twig's first node
    title = session.add_node("title", parent_id=article)
    session.suggest_values(title, "twi")       # values occurring at //article/title
    session.set_predicate(title, "~", "twig")
    session.set_output(article)
    response = session.run(k=5)
"""

from __future__ import annotations

from repro.autocomplete.candidates import Candidate
from repro.engine.database import LotusXDatabase
from repro.engine.results import SearchResponse
from repro.twig.parse import build_predicate
from repro.twig.pattern import Axis, ComparisonOp, QueryNode, TwigPattern


class SessionError(RuntimeError):
    """An invalid gesture for the session's current state."""


class QueryBuilderSession:
    """Stateful twig construction with autocompletion at every step."""

    #: History depth kept for undo.
    HISTORY_LIMIT = 50

    def __init__(self, database: LotusXDatabase) -> None:
        self._db = database
        self._pattern: TwigPattern | None = None
        self._undo_stack: list[TwigPattern | None] = []
        self._redo_stack: list[TwigPattern | None] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def pattern(self) -> TwigPattern | None:
        """The twig built so far (None before the first node)."""
        return self._pattern

    def query_text(self) -> str:
        """The textual form of the current twig."""
        self._require_pattern()
        return str(self._pattern)

    def reset(self) -> None:
        """Clear the canvas."""
        self._checkpoint()
        self._pattern = None

    def _require_pattern(self) -> TwigPattern:
        if self._pattern is None:
            raise SessionError("the query canvas is empty — add a node first")
        return self._pattern

    def _checkpoint(self) -> None:
        """Snapshot the canvas before a mutating gesture."""
        snapshot = self._pattern.copy() if self._pattern is not None else None
        self._undo_stack.append(snapshot)
        if len(self._undo_stack) > self.HISTORY_LIMIT:
            self._undo_stack.pop(0)
        self._redo_stack.clear()

    def undo(self) -> None:
        """Revert the last mutating gesture.

        Raises
        ------
        SessionError
            If there is nothing to undo.
        """
        if not self._undo_stack:
            raise SessionError("nothing to undo")
        current = self._pattern.copy() if self._pattern is not None else None
        self._redo_stack.append(current)
        self._pattern = self._undo_stack.pop()

    def redo(self) -> None:
        """Re-apply the last undone gesture.

        Raises
        ------
        SessionError
            If there is nothing to redo.
        """
        if not self._redo_stack:
            raise SessionError("nothing to redo")
        current = self._pattern.copy() if self._pattern is not None else None
        self._undo_stack.append(current)
        self._pattern = self._redo_stack.pop()

    def _node(self, node_id: int) -> QueryNode:
        node = self._require_pattern().find_node(node_id)
        if node is None:
            raise SessionError(f"no query node with id {node_id}")
        return node

    # ------------------------------------------------------------------
    # Autocompletion gestures
    # ------------------------------------------------------------------

    def suggest_tags(
        self,
        parent_id: int | None = None,
        prefix: str = "",
        axis: Axis = Axis.CHILD,
        k: int = 10,
    ) -> list[Candidate]:
        """Candidates for the tag the user is typing.

        With ``parent_id=None`` (placing the twig's first node) every tag
        in the corpus competes; otherwise only tags valid under the parent
        node's possible positions are proposed.
        """
        if parent_id is None:
            return self._db.complete_tag(None, None, prefix, axis, k)
        return self._db.complete_tag(
            self._require_pattern(), self._node(parent_id), prefix, axis, k
        )

    def suggest_values(
        self, node_id: int, prefix: str = "", k: int = 10, whole_values: bool = True
    ) -> list[Candidate]:
        """Candidates for the value the user is typing into a node."""
        return self._db.complete_value(
            self._require_pattern(), self._node(node_id), prefix, k, whole_values
        )

    # ------------------------------------------------------------------
    # Editing gestures
    # ------------------------------------------------------------------

    def add_node(
        self,
        tag: str | None,
        parent_id: int | None = None,
        axis: Axis = Axis.CHILD,
    ) -> int:
        """Place a node (``tag=None`` draws a wildcard); returns its id."""
        self._checkpoint()
        if parent_id is None:
            if self._pattern is not None:
                raise SessionError(
                    "the canvas already has a root — pass parent_id to attach"
                )
            self._pattern = TwigPattern(tag)
            return self._pattern.root.node_id
        parent = self._node(parent_id)
        node = self._require_pattern().add_child(parent, tag, axis)
        return node.node_id

    def set_axis(self, node_id: int, axis: Axis) -> None:
        """Toggle the edge above a node between ``/`` and ``//``."""
        node = self._node(node_id)
        if node.is_root:
            raise SessionError("the root node has no incoming edge")
        self._checkpoint()
        # Re-resolve in the snapshot-independent live pattern.
        self._node(node_id).axis = axis

    def set_predicate(self, node_id: int, op: str, value: str) -> None:
        """Attach a value predicate (op is one of ``= != < <= > >= ~ !~``)."""
        node = self._node(node_id)
        self._checkpoint()
        node.predicate = build_predicate(ComparisonOp(op), value)

    def clear_predicate(self, node_id: int) -> None:
        node = self._node(node_id)
        self._checkpoint()
        node.predicate = None

    def set_output(self, node_id: int, is_output: bool = True) -> None:
        """Mark/unmark a node as a result (return) node."""
        node = self._node(node_id)
        self._checkpoint()
        node.is_output = is_output

    def set_optional(self, node_id: int, optional: bool = True) -> None:
        """Make a branch optional (left outer join) or required again."""
        node = self._node(node_id)
        if node.is_root:
            raise SessionError("the root node cannot be optional")
        self._checkpoint()
        node.optional = optional

    def set_absent_branch(self, node_id: int, tag: str, axis: Axis = Axis.CHILD) -> None:
        """Require that the node has *no* child/descendant with ``tag``."""
        from repro.twig.pattern import AbsentBranchPredicate

        node = self._node(node_id)
        self._checkpoint()
        node.predicate = AbsentBranchPredicate(tag, axis)

    def set_ordered(self, ordered: bool) -> None:
        """Make the whole twig order-sensitive."""
        pattern = self._require_pattern()
        self._checkpoint()
        pattern.ordered = ordered

    def add_order_constraint(self, before_id: int, after_id: int) -> None:
        pattern = self._require_pattern()
        before, after = self._node(before_id), self._node(after_id)
        self._checkpoint()
        pattern.add_order_constraint(before, after)

    def remove_node(self, node_id: int) -> None:
        """Delete a node and its subtree (the root clears the canvas)."""
        node = self._node(node_id)
        self._checkpoint()
        if node.is_root:
            self._pattern = None
            return
        assert node.parent is not None
        node.parent.children.remove(node)
        node.parent = None

    # ------------------------------------------------------------------
    # Execution gestures
    # ------------------------------------------------------------------

    def preview_count(self) -> int:
        """Number of matches of the current twig (no ranking/rewriting) —
        the live result counter the GUI shows while building."""
        return len(self._db.matches(self._require_pattern()))

    def is_satisfiable(self) -> bool:
        """Structural feasibility hint for the GUI.

        False means the twig definitely has no match (the GUI colors it
        red immediately); True means the DataGuide sees no problem — a
        necessary condition, see
        :func:`repro.autocomplete.context.is_satisfiable`.
        """
        from repro.autocomplete.context import is_satisfiable

        return is_satisfiable(self._require_pattern(), self._db.guide)

    def run(self, k: int = 10, rewrite: bool = True) -> SearchResponse:
        """Execute the current twig: ranked search with rewriting."""
        return self._db.search(self._require_pattern(), k=k, rewrite=rewrite)

    def to_xpath(self) -> str:
        return self._db.to_xpath(self._require_pattern())

    def to_xquery(self) -> str:
        return self._db.to_xquery(self._require_pattern())
