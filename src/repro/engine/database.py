"""The LotusX database facade.

:class:`LotusXDatabase` owns one indexed document and exposes the full
feature set from the abstract behind a small API:

* ``complete_tag`` / ``complete_value`` — position-aware autocompletion;
* ``matches`` — raw twig evaluation with a selectable algorithm;
* ``search`` — ranked search with automatic query rewriting;
* ``to_xpath`` / ``to_xquery`` — query translation;
* ``statistics`` / ``explain`` — introspection.

Typical use::

    from repro import LotusXDatabase

    db = LotusXDatabase.from_file("dblp.xml")
    response = db.search('//article[./title~"twig"]/author')
    for hit in response:
        print(hit.xpath, hit.snippet, hit.score.combined)
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence

from repro.autocomplete.candidates import Candidate
from repro.autocomplete.engine import AutocompleteEngine
from repro.index.completion_index import CompletionIndex
from repro.index.element_index import StreamFactory
from repro.index.statistics import CorpusStatistics, compute_statistics
from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument, label_document
from repro.ranking.scorer import LotusXScorer
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.resilience.faults import fault_point
from repro.rewrite.engine import QueryRewriter
from repro.rewrite.rules import default_rules
from repro.engine.results import SearchResponse, SearchResult
from repro.engine.translate import to_xpath, to_xquery
from repro.twig.algorithms.common import AlgorithmStats
from repro.twig.match import Match, sort_matches
from repro.twig.parse import parse_twig
from repro.twig.pattern import Axis, QueryNode, TwigPattern
from repro.twig.planner import Algorithm, compile_plan, execute_plan
from repro.xmlio.builder import parse_file, parse_string
from repro.xmlio.tree import Document, Element


class LotusXDatabase:
    """One indexed XML document plus every query-time component."""

    #: Tenant name when this instance serves a named corpus in a
    #: multi-tenant registry (stamped by the serving layer's
    #: ``DatabaseHolder``); ``None`` for standalone databases.  Caches
    #: never need tenant partitioning beyond this: every tenant owns a
    #: whole database instance, so plan/match/stream/completion caches
    #: are partitioned by construction and die with the instance.
    tenant_label: str | None = None

    def __init__(
        self,
        document: Document,
        scorer: LotusXScorer | None = None,
        synonyms: dict[str, tuple[str, ...]] | None = None,
        expand_attributes: bool = False,
    ) -> None:
        self.document = document
        #: Whether attributes were expanded into @name nodes for indexing
        #: (persisted by the store so loads rebuild the same index).
        self.expanded_attributes = expand_attributes
        if expand_attributes:
            # Attributes become queryable "@name" twig nodes; the indexed
            # tree is a shadow copy, the caller's document stays pristine.
            from repro.xmlio.transform import expand_attributes as expand

            indexed_document = expand(document)
        else:
            indexed_document = document
        self.labeled: LabeledDocument = label_document(indexed_document)
        self.term_index = TermIndex(self.labeled)
        self.completion_index = CompletionIndex(self.labeled, self.term_index)
        self._finish_wiring(scorer, synonyms)

    def _finish_wiring(
        self,
        scorer: LotusXScorer | None,
        synonyms: dict[str, tuple[str, ...]] | None,
    ) -> None:
        """Wire the query-time components on top of the built indexes.

        Split out of ``__init__`` so snapshot loading — which restores
        ``labeled``/``term_index``/``completion_index`` from disk instead
        of building them — can reuse the exact same wiring.
        """
        self.streams = StreamFactory(self.labeled, self.term_index)
        self.autocomplete = AutocompleteEngine(
            self.labeled.guide, self.completion_index
        )
        self.scorer = scorer or LotusXScorer()
        #: Synonym table handed to the rewriter (persisted by snapshots so
        #: a load rebuilds the identical rule set).
        self._synonyms = synonyms
        self.rewriter = QueryRewriter(default_rules(self.labeled.guide, synonyms))
        self._init_runtime_caches()

    def _init_runtime_caches(self) -> None:
        """Per-instance query caches and their hit/miss counters.

        Called by both construction paths (full build and snapshot load).
        Every cache lives on the database instance, so a hot reload —
        which swaps in a whole new instance — drops them all at once;
        the plan cache additionally keys on :attr:`serving_generation`
        for defense in depth.
        """
        self._match_cache: OrderedDict = OrderedDict()
        self._plan_cache: OrderedDict = OrderedDict()
        self._parse_cache: OrderedDict = OrderedDict()
        #: Guards the caches and hit/miss counters: request handlers run
        #: on concurrent threads, and unguarded ``+=`` drops updates.
        self._counter_lock = threading.Lock()
        #: Stamped by the serving layer (``DatabaseHolder``); 0 means
        #: "not behind a holder".  Assigned directly — the property
        #: setter's invalidation hooks have nothing to clear yet.
        self._serving_generation = 0
        self.counters: dict[str, int] = {
            "match_cache_hits": 0,
            "match_cache_misses": 0,
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
            "parse_cache_hits": 0,
            "parse_cache_misses": 0,
            "columnar_evaluations": 0,
            "fallback_evaluations": 0,
        }

    @property
    def serving_generation(self):
        """The generation stamp of the serving layer.

        Plan-cache keys include it; moving it additionally clears the
        match cache, the stream-factory filtered-stream memo, and the
        autocomplete completion cache.  Historically those only died
        with the instance on hot reload (a swap installs a whole new
        database), but the live write path advances generations while
        *keeping* unchanged segment databases — a memoized columnar
        stream or completion list built under the old generation (e.g.
        holding the corpus root's old region width) must not survive
        the advance.
        """
        return self._serving_generation

    @serving_generation.setter
    def serving_generation(self, value) -> None:
        if value == self._serving_generation:
            return
        self._serving_generation = value
        with self._counter_lock:
            self._match_cache.clear()
            # Old-generation plan keys are unreachable anyway (the key
            # includes the generation); clearing frees their streams.
            self._plan_cache.clear()
        # Lazy-safe lookups, as in cache_statistics: components that a
        # snapshot database has not inflated yet hold no stale state and
        # must not be inflated just to be cleared.
        factory = self.__dict__.get("streams")
        engine = self.__dict__.get("autocomplete")
        if factory is None or engine is None:
            parts = self.__dict__.get("_parts")
            if parts is not None:
                factory = factory or parts.get("streams")
                engine = engine or parts.get("autocomplete")
        if factory is not None:
            factory.clear_memo()
        if engine is not None:
            engine.clear_cache()

    def warm(self) -> LotusXDatabase:
        """Force full materialization; returns ``self``.

        A no-op on a built database — snapshot-loaded databases (which
        inflate sections lazily) override this to inflate everything now.
        """
        return self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_string(cls, xml_text: str, **kwargs) -> LotusXDatabase:
        """Index an XML document given as a string."""
        return cls(parse_string(xml_text), **kwargs)

    @classmethod
    def from_file(cls, path: str | os.PathLike[str], **kwargs) -> LotusXDatabase:
        """Index the XML document at ``path``."""
        return cls(parse_file(path), **kwargs)

    @classmethod
    def from_files(
        cls,
        paths: Sequence[str | os.PathLike[str]],
        collection_tag: str = "collection",
        annotate_source: bool = True,
        **kwargs,
    ) -> LotusXDatabase:
        """Index several XML files as one collection.

        Each file's root becomes a child of a synthetic
        ``<collection_tag>`` root, so twigs and completion span the whole
        collection (query a single file's subtree by pinning the root:
        ``/collection/dblp/...``).  With ``annotate_source`` each
        document root gets a ``source`` attribute carrying its file name
        — combine with ``expand_attributes=True`` to filter results by
        file: ``//dblp[./@source="a.xml"]//author``.

        Raises
        ------
        ValueError
            If ``paths`` is empty.
        """
        if not paths:
            raise ValueError("from_files needs at least one path")
        root = Element(collection_tag)
        for path in paths:
            document = parse_file(path)
            if annotate_source:
                document.root.attributes.setdefault(
                    "source", os.path.basename(os.fspath(path))
                )
            root.append(document.root)
        combined = Document(
            root, source_name=f"collection of {len(paths)} documents"
        )
        return cls(combined, **kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def guide(self):
        """The DataGuide structural summary."""
        return self.labeled.guide

    def statistics(self) -> CorpusStatistics:
        return compute_statistics(self.labeled, self.term_index)

    def parse_query(self, text: str) -> TwigPattern:
        """Parse the textual twig syntax."""
        return parse_twig(text)

    def to_xpath(self, query: str | TwigPattern) -> str:
        return to_xpath(self._as_pattern(query))

    def to_xquery(self, query: str | TwigPattern) -> str:
        return to_xquery(self._as_pattern(query))

    def explain(self, query: str | TwigPattern) -> dict:
        """Evaluation plan and per-node stream sizes for ``query``."""
        from repro.autocomplete.context import candidate_positions
        from repro.twig.algorithms.common import build_streams
        from repro.twig.planner import choose_algorithm

        from repro.twig.estimate import estimate_cardinality

        pattern = self._as_pattern(query)
        streams = build_streams(pattern, self.streams)
        positions = candidate_positions(pattern, self.guide)
        return {
            "query": str(pattern),
            "algorithm": choose_algorithm(pattern).value,
            "estimated_matches": round(
                estimate_cardinality(pattern, self.guide, self.term_index), 1
            ),
            "xpath": to_xpath(pattern),
            "nodes": [
                {
                    "node_id": node.node_id,
                    "tag": node.display_tag,
                    "axis": str(node.axis),
                    "stream_size": len(streams[node.node_id]),
                    "positions": sorted(
                        "/" + "/".join(p.path) for p in positions[node.node_id]
                    ),
                }
                for node in pattern.nodes()
            ],
        }

    # ------------------------------------------------------------------
    # Autocompletion
    # ------------------------------------------------------------------

    def complete_tag(
        self,
        pattern: TwigPattern | None = None,
        anchor: QueryNode | None = None,
        prefix: str = "",
        axis: Axis = Axis.CHILD,
        k: int = 10,
        deadline: Deadline | None = None,
    ) -> list[Candidate]:
        """Position-aware tag completion (see
        :meth:`repro.autocomplete.engine.AutocompleteEngine.complete_tag`)."""
        fault_point("engine.complete_tag", deadline)
        return self.autocomplete.complete_tag(
            pattern, anchor, prefix, axis, k, deadline
        )

    def complete_value(
        self,
        pattern: TwigPattern,
        node: QueryNode,
        prefix: str,
        k: int = 10,
        whole_values: bool = True,
        deadline: Deadline | None = None,
    ) -> list[Candidate]:
        """Position-aware value completion."""
        fault_point("engine.complete_value", deadline)
        return self.autocomplete.complete_value(
            pattern, node, prefix, k, whole_values, deadline
        )

    # ------------------------------------------------------------------
    # Matching and search
    # ------------------------------------------------------------------

    #: Entries kept in the per-database match cache.
    MATCH_CACHE_SIZE = 128
    #: Entries kept in the compiled-plan cache.
    PLAN_CACHE_SIZE = 256
    #: Entries kept in the query-text parse cache.
    PARSE_CACHE_SIZE = 256

    def _evaluate(
        self,
        pattern: TwigPattern,
        algorithm: Algorithm,
        stats: AlgorithmStats | None,
        prune_streams: bool,
        deadline: Deadline | None,
    ) -> list[Match]:
        """Evaluate through the compiled-plan cache.

        Plans pair the resolved algorithm with the per-node candidate
        streams — the expensive, reusable half of evaluation; execution
        (which holds all deadline checkpoints of the matching loops)
        always runs fresh.  The cache key includes
        :attr:`serving_generation`, and the cache itself dies with the
        instance on hot reload, so a swapped-in corpus can never serve a
        stale plan.  A compile failure (including a deadline trip while
        building streams) propagates before anything is inserted.
        """
        # The signature describes structure only; two structurally equal
        # patterns can still number their nodes differently (a rewrite
        # that drops a predicate keeps the original ids), and the plan's
        # matches are keyed by node id — so the ids are part of the key.
        key = (
            pattern.signature(),
            tuple(node.node_id for node in pattern.nodes()),
            algorithm,
            prune_streams,
            self.serving_generation,
        )
        with self._counter_lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_cache.move_to_end(key)
                self.counters["plan_cache_hits"] += 1
            else:
                self.counters["plan_cache_misses"] += 1
        if plan is None:
            # Compile against a private copy: callers may mutate their
            # pattern after the call, but the cached plan must not see it.
            # Compilation runs outside the lock — it can be slow and may
            # carry a deadline; a racing miss just compiles twice.
            plan = compile_plan(
                pattern.copy(),
                self.labeled,
                self.streams,
                algorithm,
                prune_streams,
                deadline,
            )
            with self._counter_lock:
                self._plan_cache[key] = plan
                if len(self._plan_cache) > self.PLAN_CACHE_SIZE:
                    self._plan_cache.popitem(last=False)
        run_stats = stats if stats is not None else AlgorithmStats()
        matches = execute_plan(
            plan, self.labeled, self.streams, run_stats, deadline
        )
        with self._counter_lock:
            if run_stats.notes.get("columnar"):
                self.counters["columnar_evaluations"] += 1
            else:
                self.counters["fallback_evaluations"] += 1
        return matches

    def matches(
        self,
        query: str | TwigPattern,
        algorithm: Algorithm = Algorithm.AUTO,
        stats: AlgorithmStats | None = None,
        prune_streams: bool = False,
        deadline: Deadline | None = None,
    ) -> list[Match]:
        """Raw twig matches, document order, no ranking or rewriting.

        ``prune_streams`` enables DataGuide stream pruning (E11).

        Results are LRU-cached by pattern signature (the corpus is
        immutable), which keeps the GUI's live result counter free while
        the user toggles gestures back and forth.  Calls that want
        algorithm statistics — or carry a ``deadline``, whose partial
        results must never poison the cache — bypass it (though both
        still share the compiled-plan cache, which holds streams, not
        results).  On expiry the raised :class:`DeadlineExceeded` carries
        the salvaged partial matches, sorted, as its ``partial``.
        """
        pattern = self._as_pattern(query)
        if stats is not None or deadline is not None:
            try:
                return sort_matches(
                    self._evaluate(
                        pattern, algorithm, stats, prune_streams, deadline
                    )
                )
            except DeadlineExceeded as exc:
                if exc.partial is not None:
                    exc.partial = sort_matches(exc.partial)
                raise
        key = (pattern.signature(), algorithm, prune_streams)
        with self._counter_lock:
            cached = self._match_cache.get(key)
            if cached is not None:
                self._match_cache.move_to_end(key)
                self.counters["match_cache_hits"] += 1
                return list(cached)
            self.counters["match_cache_misses"] += 1
        result = sort_matches(
            self._evaluate(pattern, algorithm, None, prune_streams, None)
        )
        with self._counter_lock:
            self._match_cache[key] = result
            if len(self._match_cache) > self.MATCH_CACHE_SIZE:
                self._match_cache.popitem(last=False)
        return list(result)

    def search(
        self,
        query: str | TwigPattern,
        k: int = 10,
        algorithm: Algorithm = Algorithm.AUTO,
        rewrite: bool = True,
        min_results: int = 1,
        timeout_ms: int | None = None,
        deadline: Deadline | None = None,
    ) -> SearchResponse:
        """Ranked search with automatic rewriting.

        If the query yields fewer than ``min_results`` matches and
        ``rewrite`` is enabled, relaxed versions of the query are tried
        (cheapest relaxation first) and their results are merged in with
        rewrite penalties applied to their scores.

        ``timeout_ms`` (or an explicit ``deadline``) bounds the work.  A
        search that runs out of budget does not fail: it returns whatever
        partial results could be salvaged, ranked, with
        ``truncated=True`` and ``degraded`` naming the corners cut
        (``"deadline"`` — matching cut short; ``"rewrites-skipped"`` —
        rewrite exploration abandoned to save the remaining budget).
        """
        pattern = self._as_pattern(query)
        started = time.perf_counter()
        if deadline is None and timeout_ms is not None:
            deadline = Deadline.after_ms(timeout_ms)
        fault_point("engine.search", deadline)
        truncated = False
        degraded: list[str] = []

        def evaluator(candidate_pattern: TwigPattern) -> list[Match]:
            return self._evaluate(
                candidate_pattern, algorithm, None, False, deadline
            )

        from repro.rewrite.engine import RewriteCandidate

        if rewrite:
            try:
                outcome = self.rewriter.search_with_rewrites(
                    pattern, evaluator, min_results=min_results, deadline=deadline
                )
                productive = outcome.productive
                rewrites_tried = outcome.evaluated - 1
                used_rewrites = any(candidate.steps for candidate, _ in productive)
                truncated = outcome.truncated
                degraded.extend(outcome.degraded)
            except DeadlineExceeded as exc:
                # The original pattern itself ran out of budget; rank its
                # salvaged partial matches and skip rewriting entirely.
                partial = exc.partial or []
                productive = (
                    [(RewriteCandidate(pattern, 0.0, ()), partial)]
                    if partial
                    else []
                )
                rewrites_tried = 0
                used_rewrites = False
                truncated = True
        else:
            try:
                matches = evaluator(pattern)
            except DeadlineExceeded as exc:
                matches = exc.partial or []
                truncated = True
            productive = (
                [(RewriteCandidate(pattern, 0.0, ()), matches)] if matches else []
            )
            rewrites_tried = 0
            used_rewrites = False

        results = self._rank_productive(productive, k, deadline)
        if deadline is not None and deadline.tripped:
            truncated = True
            if "deadline" not in degraded:
                degraded.append("deadline")
        response = SearchResponse(
            query=str(pattern),
            results=results[:k],
            total_matches=sum(len(matches) for _, matches in productive),
            used_rewrites=used_rewrites,
            rewrites_tried=rewrites_tried,
            elapsed_seconds=time.perf_counter() - started,
            truncated=truncated,
            degraded=tuple(degraded),
        )
        return response

    #: Matches scored during the post-trip grace period.  A tripped
    #: request may still sit on thousands of salvaged matches; scoring
    #: them all would dwarf the deadline itself, so ranking gets its own
    #: small budget instead.
    GRACE_RANK_STEPS = 1_000

    def _rank_productive(
        self, productive, k: int, deadline: Deadline | None = None
    ) -> list[SearchResult]:
        """Score all matches of all productive (rewritten) patterns and
        keep the best result per distinct output binding.

        An already-tripped ``deadline`` is not re-checked here — ranking
        the salvaged partials is the point of the grace period — but the
        grace itself is bounded by :attr:`GRACE_RANK_STEPS`.  A live
        deadline is checked per match; on expiry the results scored so
        far are ranked and returned.
        """
        if deadline is None:
            guard = None
        elif deadline.tripped:
            guard = Deadline(max_steps=self.GRACE_RANK_STEPS)
        else:
            guard = deadline
        best: dict[tuple[int, ...], SearchResult] = {}
        try:
            for candidate, matches in productive:
                candidate_pattern = candidate.pattern
                for match in matches:
                    if guard is not None:
                        guard.check("search.rank")
                    score = self.scorer.score_match(
                        candidate_pattern, match, self.term_index, candidate.penalty
                    )
                    outputs = tuple(match.output_elements(candidate_pattern))
                    key = tuple(element.order for element in outputs)
                    current = best.get(key)
                    if current is None or score.combined > current.score.combined:
                        best[key] = SearchResult(
                            outputs=outputs,
                            score=score,
                            match=match,
                            source_query=str(candidate_pattern),
                            rewrite_steps=candidate.steps,
                            terms=candidate_pattern.all_terms(),
                        )
        except DeadlineExceeded:
            # Keep whatever was scored before the budget ran out.
            pass
        ranked = sorted(
            best.values(),
            key=lambda result: (
                -result.score.combined,
                tuple(element.order for element in result.outputs),
            ),
        )
        return ranked

    def profile(self, query: str | TwigPattern, repeats: int = 3) -> dict:
        """EXPLAIN ANALYZE: run ``query`` under every applicable algorithm
        and report per-algorithm timing and work counters.

        Returns the evaluation plan (as in :meth:`explain`) plus a
        ``profiles`` list with, per algorithm: median milliseconds,
        elements scanned, intermediate results, and the match count.
        All algorithms are asserted to agree.
        """
        import statistics as statistics_module

        pattern = self._as_pattern(query)
        plan = self.explain(pattern)
        algorithms = [Algorithm.STRUCTURAL_JOIN, Algorithm.TWIG_STACK, Algorithm.TJFAST]
        if pattern.is_path():
            algorithms.insert(0, Algorithm.PATH_STACK)
        profiles = []
        counts = set()
        for algorithm in algorithms:
            samples = []
            stats = AlgorithmStats()
            for index in range(max(1, repeats)):
                run_stats = AlgorithmStats()
                started = time.perf_counter()
                matches = self.matches(pattern, algorithm, stats=run_stats)
                samples.append(time.perf_counter() - started)
                if index == 0:
                    stats = run_stats
                    counts.add(len(matches))
            profiles.append(
                {
                    "algorithm": algorithm.value,
                    "median_ms": round(
                        statistics_module.median(samples) * 1000, 3
                    ),
                    "elements_scanned": stats.elements_scanned,
                    "intermediate_results": stats.intermediate_results,
                    "matches": stats.matches,
                }
            )
        if len(counts) > 1:
            raise AssertionError(f"algorithms disagree on {pattern}: {counts}")
        plan["profiles"] = profiles
        return plan

    def example_queries(self, k: int = 5):
        """Verified starter queries for an empty canvas (GUI "try these").

        See :func:`repro.autocomplete.examples.suggest_example_queries`;
        each suggestion is checked to return at least one match.
        """
        from repro.autocomplete.examples import suggest_example_queries

        suggestions = suggest_example_queries(self.guide, self.completion_index, k * 2)
        verified = [s for s in suggestions if self.matches(s.query)]
        return verified[:k]

    # ------------------------------------------------------------------
    # Keyword search (schema-free)
    # ------------------------------------------------------------------

    def keyword_search(
        self,
        query: str,
        k: int = 10,
        semantics: str = "slca",
        deadline: Deadline | None = None,
    ):
        """Schema-free keyword search, ranked.

        ``semantics="slca"`` returns the smallest elements containing all
        terms; ``"elca"`` additionally returns ancestors with their own
        keyword evidence (see :mod:`repro.keyword`).  With a ``deadline``
        the response degrades gracefully (``truncated=True``) instead of
        failing.
        """
        from repro.keyword.search import keyword_search

        return keyword_search(
            self.labeled, self.term_index, query, k, semantics, deadline
        )

    # ------------------------------------------------------------------

    def cache_statistics(self) -> dict:
        """Hit/miss counters and sizes of every per-instance cache.

        Served by ``/api/stats``.  Deliberately side-effect free: on a
        lazily inflating snapshot database, components that have not
        materialized yet are reported as absent rather than inflated
        just to be counted.
        """
        factory = self.__dict__.get("streams")
        engine = self.__dict__.get("autocomplete")
        if factory is None or engine is None:
            parts = self.__dict__.get("_parts")
            if parts is not None:
                factory = factory or parts.get("streams")
                engine = engine or parts.get("autocomplete")
        with self._counter_lock:
            counters = dict(self.counters)
            match_entries = len(self._match_cache)
            plan_entries = len(self._plan_cache)
            parse_entries = len(self._parse_cache)
        result = {
            "counters": counters,
            "match_cache_entries": match_entries,
            "plan_cache_entries": plan_entries,
            "parse_cache_entries": parse_entries,
            "serving_generation": self.serving_generation,
            "columnar_enabled": (
                factory.supports_columnar() if factory is not None else None
            ),
            "autocomplete_cache": (
                engine.cache_info() if engine is not None else None
            ),
        }
        if self.tenant_label is not None:
            result["tenant"] = self.tenant_label
        return result

    def _as_pattern(self, query: str | TwigPattern) -> TwigPattern:
        """Parse ``query`` (memoized by text) or pass a pattern through.

        The cache stores a private copy and hands out fresh copies:
        callers are free to mutate what they get back, as with
        ``parse_twig``.
        """
        if isinstance(query, TwigPattern):
            return query
        with self._counter_lock:
            cached = self._parse_cache.get(query)
            if cached is not None:
                self._parse_cache.move_to_end(query)
                self.counters["parse_cache_hits"] += 1
                return cached.copy()
            self.counters["parse_cache_misses"] += 1
        pattern = parse_twig(query)
        with self._counter_lock:
            self._parse_cache[query] = pattern.copy()
            if len(self._parse_cache) > self.PARSE_CACHE_SIZE:
                self._parse_cache.popitem(last=False)
        return pattern

    def __repr__(self) -> str:
        return (
            f"LotusXDatabase(elements={len(self.labeled)},"
            f" paths={len(self.guide)})"
        )
