"""The writable-database facade: one swappable read view over live segments.

:class:`SegmentedDatabase` is what servers and embedders hold when the
corpus is writable.  It exposes the familiar query surface
(``search`` / ``matches`` / ``keyword_search`` / completion / stats) by
delegating to an immutable :class:`~repro.shard.database.ShardedDatabase`
**view** over the current delta segments (see
:mod:`repro.write.segments`); after every applied batch the attached
:class:`~repro.write.writer.DocumentWriter` builds a fresh view and
swaps it in atomically — in-flight requests finish against the view they
bound, exactly like a hot reload, while the expensive per-segment
indexes are shared between consecutive views.

Generation bookkeeping: the facade's ``serving_generation`` is strictly
monotone.  It advances when a batch installs a new view *and* whenever a
:class:`~repro.server.reload.DatabaseHolder` stamps it; the setter takes
``max(stamp, current + 1)`` so the two counters can never re-issue a
value — a plan/match/stream-memo cache entry keyed by generation can
therefore never be mistaken for current after any swap.  Stamping the
view propagates the generation into every segment database, which (see
``LotusXDatabase.serving_generation``) drops their plan caches, filtered
stream memos, and completion caches — required because surviving
segments share state (including the in-place root-width patch) across
views.
"""

from __future__ import annotations

import threading

from repro.twig.parse import parse_twig


class SegmentedDatabase:
    """Query facade over a :class:`~repro.write.segments.SegmentedCorpus`."""

    def __init__(
        self,
        corpus,
        executor_mode: str = "serial",
        max_workers: int | None = None,
    ) -> None:
        self._corpus = corpus
        self._executor_mode = executor_mode
        self._max_workers = max_workers
        #: Reentrant: installing a view stamps the generation, and both
        #: entry points take the lock.
        self._lock = threading.RLock()
        self._serving_generation = 0
        self._view = corpus.build_view(executor_mode, max_workers)
        self.expanded_attributes = False
        #: The attached single-writer mutation pipeline (set by
        #: :func:`repro.write.writer.open_writable_database`); ``None``
        #: for a read-only facade.
        self.writer = None

    # ------------------------------------------------------------------
    # Views and generations
    # ------------------------------------------------------------------

    @property
    def view(self):
        """The current immutable read view (bind once per request)."""
        with self._lock:
            return self._view

    def _install_view(self, view) -> None:
        """Swap in a freshly built view and advance the generation.

        The old view is *not* closed here: in-flight requests may still
        hold it (a closed executor refuses work), and dropping the last
        reference closes its executor via ``__del__`` — the same
        retire-by-GC contract hot reload uses.
        """
        with self._lock:
            self._view = view
            self._stamp(self._serving_generation + 1)

    @property
    def serving_generation(self) -> int:
        with self._lock:
            return self._serving_generation

    @serving_generation.setter
    def serving_generation(self, value: int) -> None:
        with self._lock:
            self._stamp(max(int(value), self._serving_generation + 1))

    def _stamp(self, value: int) -> None:
        self._serving_generation = value
        self._view.serving_generation = value

    # ------------------------------------------------------------------
    # Corpus shape
    # ------------------------------------------------------------------

    @property
    def spine_tag(self) -> str:
        return self._corpus.spine_tag

    @property
    def element_count(self) -> int:
        return self.view.element_count

    @property
    def guide(self):
        return self.view.guide

    @property
    def autocomplete(self):
        return self.view.autocomplete

    def document_ids(self) -> list[str]:
        return self._corpus.document_ids()

    # ------------------------------------------------------------------
    # Query surface (delegation; views are immutable, so binding the
    # view once per call gives each operation one consistent generation)
    # ------------------------------------------------------------------

    def matches(self, *args, **kwargs):
        return self.view.matches(*args, **kwargs)

    def search(self, *args, **kwargs):
        return self.view.search(*args, **kwargs)

    def keyword_search(self, *args, **kwargs):
        return self.view.keyword_search(*args, **kwargs)

    def complete_tag(self, *args, **kwargs):
        return self.view.complete_tag(*args, **kwargs)

    def complete_value(self, *args, **kwargs):
        return self.view.complete_value(*args, **kwargs)

    def explain(self, *args, **kwargs):
        return self.view.explain(*args, **kwargs)

    def example_queries(self, *args, **kwargs):
        return self.view.example_queries(*args, **kwargs)

    def statistics(self):
        return self.view.statistics()

    def parse_query(self, text: str):
        return parse_twig(text)

    def to_xpath(self, query):
        return self.view.to_xpath(query)

    def to_xquery(self, query):
        return self.view.to_xquery(query)

    def cache_statistics(self) -> dict:
        result = self.view.cache_statistics()
        result["segments"] = self._corpus.segment_count
        result["facade_generation"] = self.serving_generation
        return result

    def writer_statistics(self) -> dict | None:
        """Writer health block for ``/api/stats`` (``None`` if read-only)."""
        writer = self.writer
        return writer.statistics() if writer is not None else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def warm(self):
        self.view.warm()
        return self

    def close(self) -> None:
        writer = self.writer
        if writer is not None:
            writer.close()
        self.view.close()

    def __repr__(self) -> str:
        return (
            f"SegmentedDatabase(segments={self._corpus.segment_count},"
            f" documents={self._corpus.document_count},"
            f" generation={self.serving_generation})"
        )
