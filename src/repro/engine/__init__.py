"""Engine facade: the database object, search results, the GUI session
model, and query translation."""

from repro.engine.database import LotusXDatabase
from repro.engine.results import (
    SearchResponse,
    SearchResult,
    element_xpath,
    make_snippet,
)
from repro.engine.session import QueryBuilderSession, SessionError
from repro.engine.store import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotInfo,
    SnapshotIntegrityError,
    SnapshotVersionError,
    StoreError,
    load_database,
    load_snapshot,
    read_snapshot_info,
    save_database,
    save_snapshot,
)
from repro.engine.translate import to_xpath, to_xquery

__all__ = [
    "LotusXDatabase",
    "QueryBuilderSession",
    "SearchResponse",
    "SearchResult",
    "SessionError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotInfo",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "StoreError",
    "element_xpath",
    "load_database",
    "load_snapshot",
    "make_snippet",
    "read_snapshot_info",
    "save_database",
    "save_snapshot",
    "to_xpath",
    "to_xquery",
]
