"""Engine facade: the database object, search results, the GUI session
model, and query translation."""

from repro.engine.database import LotusXDatabase
from repro.engine.results import (
    SearchResponse,
    SearchResult,
    element_xpath,
    make_snippet,
)
from repro.engine.session import QueryBuilderSession, SessionError
from repro.engine.translate import to_xpath, to_xquery

__all__ = [
    "LotusXDatabase",
    "QueryBuilderSession",
    "SearchResponse",
    "SearchResult",
    "SessionError",
    "element_xpath",
    "make_snippet",
    "to_xpath",
    "to_xquery",
]
