"""Translate twig patterns to XPath and XQuery.

LotusX users never write query text, but the system shows (and can
export) the equivalent XPath/XQuery for the twig they drew — useful for
learning and for running the same query on external engines.
"""

from __future__ import annotations

from repro.twig.pattern import (
    AbsentBranchPredicate,
    Axis,
    ComparisonOp,
    ContainsPredicate,
    EqualsPredicate,
    NotPredicate,
    Predicate,
    QueryNode,
    RangePredicate,
    TwigPattern,
)


def predicate_to_xpath(predicate: Predicate) -> str:
    """Render a value predicate as an XPath boolean expression on ``.``."""
    if isinstance(predicate, ContainsPredicate):
        clauses = [f'contains(., "{term}")' for term in predicate.terms()]
        return " and ".join(clauses)
    if isinstance(predicate, EqualsPredicate):
        return f'. = "{predicate.value}"'
    if isinstance(predicate, RangePredicate):
        op = predicate.op
        symbol = "=" if op is ComparisonOp.EQ else op.value
        bound = (
            int(predicate.bound) if predicate.bound.is_integer() else predicate.bound
        )
        return f"number(.) {symbol} {bound}"
    if isinstance(predicate, NotPredicate):
        inner = predicate_to_xpath(predicate.inner)
        return f"not({inner})"
    if isinstance(predicate, AbsentBranchPredicate):
        step = (
            predicate.tag
            if predicate.axis is Axis.CHILD
            else ".//" + predicate.tag
        )
        return f"not({step})"
    raise TypeError(f"unknown predicate type: {predicate!r}")


def _node_step(node: QueryNode, is_root: bool = False) -> str:
    axis = str(node.axis)
    step = axis + node.display_tag
    if node.predicate is not None:
        step += f"[{predicate_to_xpath(node.predicate)}]"
    return step


def to_xpath(pattern: TwigPattern) -> str:
    """The XPath 1.0 expression equivalent to ``pattern``.

    The expression selects the pattern's primary output node; side
    branches become predicates.  Order constraints have no direct XPath
    1.0 equivalent and are noted in a trailing comment.
    """
    output = pattern.output_nodes()[0]
    spine: list[QueryNode] = []
    node: QueryNode | None = output
    while node is not None:
        spine.append(node)
        node = node.parent
    spine.reverse()
    spine_ids = {n.node_id for n in spine}

    def branch_predicate(node: QueryNode) -> str:
        expression = node.display_tag if node.axis is Axis.CHILD else (
            ".//" + node.display_tag
        )
        inner: list[str] = []
        if node.predicate is not None:
            inner.append(predicate_to_xpath(node.predicate))
        for child in node.children:
            inner.append(branch_predicate(child))
        if inner:
            joined = " and ".join(
                part if " and " not in part else f"({part})" for part in inner
            )
            return f"{expression}[{joined}]"
        return expression

    parts: list[str] = []
    for spine_node in spine:
        step = _node_step(spine_node)
        branches = [
            branch_predicate(child)
            for child in spine_node.children
            if child.node_id not in spine_ids and not child.optional
        ]
        for branch in branches:
            step += f"[{branch}]"
        parts.append(step)
    xpath = "".join(parts)
    if pattern.has_optional():
        xpath += "  (: optional branches omitted — XPath has no outer join :)"
    if pattern.ordered or pattern.order_constraints:
        xpath += "  (: order-sensitive; order constraints checked by LotusX :)"
    return xpath


def to_xquery(pattern: TwigPattern) -> str:
    """A FLWOR expression equivalent to ``pattern``.

    Binds one variable per output node so multi-output twigs return
    element tuples.
    """
    outputs = pattern.output_nodes()
    root_xpath_pattern = pattern.copy()
    # The FLWOR iterates matches of the pattern root.
    for node in root_xpath_pattern.nodes():
        node.is_output = node.is_root
    root_path = to_xpath(root_xpath_pattern).split("  (:")[0]

    lines = [f"for $m in doc($input){root_path}"]
    let_lines: list[str] = []
    returns: list[str] = []
    for index, output in enumerate(outputs, start=1):
        if output.is_root:
            returns.append("{$m}")
            continue
        relative = _relative_path(pattern, output)
        let_lines.append(f"let $o{index} := $m{relative}")
        returns.append(f"{{$o{index}}}")
    lines.extend(let_lines)
    body = "".join(returns)
    lines.append(f"return <hit>{body}</hit>")
    return "\n".join(lines)


def _relative_path(pattern: TwigPattern, node: QueryNode) -> str:
    steps: list[str] = []
    current: QueryNode | None = node
    while current is not None and not current.is_root:
        steps.append(_node_step(current))
        current = current.parent
    steps.reverse()
    return "".join(steps)
