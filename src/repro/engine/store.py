"""On-disk persistence for LotusX databases.

Two formats live here:

**Snapshot files** (the fast path) — a single versioned, checksummed file
holding the fully built database: the document tree, the labeled-element
store (region / Dewey / extended-Dewey labels), the DataGuide and
child-tag tables, the inverted term index, and every completion trie.
:func:`load_snapshot` verifies integrity up front and then *materializes
sections lazily*, so a server warm-starts in milliseconds and pays for
each index the first time a query touches it (or all at once via
``eager=True`` / :meth:`LotusXDatabase.warm`).  Nothing is re-parsed and
nothing is re-derived — loading skips XML parsing and index construction
entirely.

Snapshot file layout, format version 3 (framing integers big-endian)::

    6 bytes   magic  b"LXSNAP"
    2 bytes   format version
    2 bytes   flags (reserved, 0)
    4 bytes   header length H (space-padded so the data area is 8-aligned)
    H bytes   header JSON: sections table (name/offset/length/sha256/
              encoding, offsets relative to the data area) + meta
              (counts, expand_attributes, synonyms, statistics,
              raw_layout)
    32 bytes  header digest: SHA-256 over every preceding byte
    ...       data area — *raw* sections first (uncompressed int64/byte
              buffers, each 8-byte-aligned with zero padding), then the
              ``zpickle`` sections (zlib-compressed pickles of
              plain-container payloads)
    32 bytes  SHA-256 over every preceding byte

The hot sections — columnar label columns (``columnar.raw``), term
postings (``terms.raw``), completion arrays (``completion.raw`` /
``completion.keys``) — are raw so that :func:`load_snapshot` with
``mmap=True`` can serve them as ``memoryview`` slices of one shared
mapping: warm start is O(header), nothing is inflated, and forked shard
workers plus co-hosted replicas share the OS page cache.  Cold object
sections (the document tree, the label store / DataGuide) keep the
zlib-pickle path.  Versions 1 and 2 (all-zpickle, no header digest, no
alignment) still load byte-identically through the copying reader.

Integrity: full-file loads check magic → trailing digest → version →
header, exactly as before.  Mapped loads cannot afford an O(file) hash
at open, so they check magic → version → *header digest* → header, and
then verify each section's recorded SHA-256 once, lazily, when it is
first read (full-file loads verify sections the same way, for one
corruption taxonomy).  Corruption surfaces as
:class:`SnapshotIntegrityError`, a genuinely different version as
:class:`SnapshotVersionError`, a non-snapshot file as
:class:`SnapshotFormatError`, and an mmap request a file cannot satisfy
(with ``mmap="require"``) as :class:`SnapshotMmapError`.  Section
pickles are decoded by a restricted unpickler that only resolves
``repro.*`` classes.

**Store directories** (the legacy verified-rebuild path) — a directory of
document XML + JSON summaries; loading re-runs the index build and
verifies the rebuilt summaries against the stored ones.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import pickle
import struct
import sys
import threading
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path

from repro.autocomplete.engine import AutocompleteEngine
from repro.engine.database import LotusXDatabase
from repro.index.columnar import (
    decode_columnar,
    decode_columnar_raw,
    encode_columnar,
    encode_columnar_raw,
)
from repro.index.completion_index import CompletionIndex
from repro.index.element_index import StreamFactory
from repro.index.packed import PackedTrie, pack_items, rmq_table_length
from repro.index.statistics import compute_statistics
from repro.index.term_index import TermIndex, _PostingList
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.labeling.dewey import Dewey
from repro.labeling.extended_dewey import ExtendedDewey
from repro.labeling.region import Region
from repro.ranking.scorer import LotusXScorer
from repro.rewrite.engine import QueryRewriter
from repro.rewrite.rules import default_rules
from repro.summary.paths import format_path
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize
from repro.xmlio.tree import Document

FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_DOCUMENT = "document.xml"
_DATAGUIDE = "dataguide.json"
_CHILD_TABLE = "child_table.json"


class StoreError(RuntimeError):
    """A saved database directory is missing, corrupt, or incompatible."""


# ======================================================================
# Snapshot format
# ======================================================================

SNAPSHOT_MAGIC = b"LXSNAP"
#: Version written by :func:`save_snapshot`.  Version 2 added the
#: optional ``columnar`` section (per-tag label arrays); version 3 moved
#: the hot sections to raw, 8-byte-aligned, uncompressed byte ranges
#: (mmap-able through ``memoryview``) and added the header digest.
SNAPSHOT_VERSION = 3
#: Versions :func:`load_snapshot` accepts.  Version 1 snapshots load
#: fine — they simply have no columnar section, so the database falls
#: back to object streams (and the factory is told not to build columnar
#: views it was never saved with).  Version 2 snapshots load through the
#: copying reader exactly as before (``mmap=True`` falls back).
SUPPORTED_SNAPSHOT_VERSIONS = frozenset({1, 2, 3})

#: magic(6) + version(2) + flags(2) + header length(4)
_PREFIX = struct.Struct(">6sHHI")
_DIGEST_SIZE = hashlib.sha256().digest_size
#: Alignment of the data area and of every raw section inside it.
_SECTION_ALIGN = 8
#: int64 column typecode / width shared by every raw codec.
_I64 = "q"
_I64_SIZE = array(_I64).itemsize
#: Chunk size for streamed trailer verification.
_STREAM_CHUNK = 1 << 20

#: Format tags inside the v3 raw-section directories.
TERMS_RAW_FORMAT = 1
COMPLETION_RAW_FORMAT = 1


class SnapshotError(StoreError):
    """Base class for snapshot load/save failures."""


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot, or its structure cannot be parsed."""


class SnapshotVersionError(SnapshotError):
    """The snapshot uses a format version this build does not support."""


class SnapshotIntegrityError(SnapshotError):
    """The snapshot is truncated or corrupted (checksum mismatch)."""


class SnapshotMmapError(SnapshotError):
    """``mmap="require"`` was asked of a snapshot that cannot be served
    zero-copy (pre-v3 format, or a foreign byte layout)."""


@dataclass(frozen=True)
class SnapshotInfo:
    """Metadata about a snapshot file (no sections are materialized)."""

    path: str
    version: int
    size_bytes: int
    element_count: int
    path_count: int
    expand_attributes: bool
    section_sizes: dict[str, int]
    sha256: str
    #: Write-path checkpoint position (0 = plain indexed corpus); WAL
    #: records with larger seqnos must be replayed on top of this file.
    seqno: int = 0
    #: Top-level document ids at checkpoint time (``None`` = plain
    #: indexed corpus).  Recovery must adopt these so that replayed
    #: update/delete records resolve against the same namespace.
    document_ids: tuple[str, ...] | None = None


# ----------------------------------------------------------------------
# Restricted unpickling
# ----------------------------------------------------------------------

#: Non-``repro`` globals the section payloads are allowed to reference.
_ALLOWED_GLOBALS = {("collections", "OrderedDict")}


class _SnapshotUnpickler(pickle.Unpickler):
    """Resolves only ``repro.*`` classes (plus a tiny stdlib allowlist).

    Snapshot payloads are trusted once the file digest verifies, but a
    format bug should fail loudly as a snapshot error rather than import
    and execute arbitrary globals.
    """

    def find_class(self, module: str, name: str):
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        if (module, name) in _ALLOWED_GLOBALS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"snapshot payload references disallowed global {module}.{name}"
        )


def _dumps_section(payload) -> bytes:
    return zlib.compress(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), 6
    )


def _loads_section(blob: bytes, name: str):
    try:
        data = zlib.decompress(blob)
        return _SnapshotUnpickler(io.BytesIO(data)).load()
    except (
        zlib.error,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
    ) as exc:
        raise SnapshotFormatError(
            f"snapshot section {name!r} cannot be decoded: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Section codecs
#
# Payloads are plain containers (lists, dicts, tuples, ints, strings)
# wherever object counts are large — unpickling containers runs at C
# speed, while per-object Python callbacks dominate load time at the
# ~100k-object scale of a real corpus.  Small object graphs (the
# document tree, the DataGuide) are pickled as-is.
# ----------------------------------------------------------------------


def _encode_labels(labeled: LabeledDocument) -> dict:
    starts: list[int] = []
    ends: list[int] = []
    levels: list[int] = []
    deweys: list[tuple[int, ...]] = []
    xdeweys: list[tuple[int, ...]] = []
    path_ids: list[int] = []
    parent_orders: list[int] = []
    for le in labeled.elements:
        region = le.region
        starts.append(region.start)
        ends.append(region.end)
        levels.append(region.level)
        deweys.append(le.dewey.components)
        xdeweys.append(le.xdewey.components)
        path_ids.append(le.path_node.node_id)
        parent_orders.append(le.parent.order if le.parent is not None else -1)
    return {
        "starts": starts,
        "ends": ends,
        "levels": levels,
        "deweys": deweys,
        "xdeweys": xdeweys,
        "path_ids": path_ids,
        "parent_orders": parent_orders,
        "guide": labeled.guide,
        "child_table": labeled.child_table,
    }


def _decode_labels(payload: dict, document: Document) -> LabeledDocument:
    guide = payload["guide"]
    starts = payload["starts"]
    ends = payload["ends"]
    levels = payload["levels"]
    deweys = payload["deweys"]
    xdeweys = payload["xdeweys"]
    path_ids = payload["path_ids"]

    tree_elements = list(document.iter())
    if len(tree_elements) != len(starts):
        raise SnapshotFormatError(
            "label store does not match the document tree "
            f"({len(starts)} labels, {len(tree_elements)} elements)"
        )

    # Hot loop over every element: bypass the label constructors (their
    # validation already held when the snapshot was written) and attach
    # components with object.__setattr__, dodging the immutability guard.
    new = object.__new__
    setattr_raw = object.__setattr__
    node_of = guide.node
    elements: list[LabeledElement] = []
    append = elements.append
    for i, element in enumerate(tree_elements):
        dewey = new(Dewey)
        setattr_raw(dewey, "components", deweys[i])
        xdewey = new(ExtendedDewey)
        setattr_raw(xdewey, "components", xdeweys[i])
        append(
            LabeledElement(
                element,
                i,
                Region(starts[i], ends[i], levels[i]),
                dewey,
                xdewey,
                node_of(path_ids[i]),
                None,
            )
        )
    for i, parent_order in enumerate(payload["parent_orders"]):
        if parent_order >= 0:
            elements[i].parent = elements[parent_order]
    return LabeledDocument(document, guide, payload["child_table"], elements)


def _encode_terms(index: TermIndex) -> dict:
    return {
        "postings": {
            term: (plist.orders, plist.tfs)
            for term, plist in index._postings.items()
        },
        "values": index._value_postings,
        "numeric": index._numeric,
        "token_counts": index._token_counts,
        "subtree_end": index._subtree_end,
        "total_tokens": index._total_tokens,
    }


def _decode_terms(payload: dict, labeled: LabeledDocument) -> TermIndex:
    index = object.__new__(TermIndex)
    index._labeled = labeled
    postings: dict[str, _PostingList] = {}
    for term, (orders, tfs) in payload["postings"].items():
        plist = object.__new__(_PostingList)
        plist.orders = orders
        plist.tfs = tfs
        postings[term] = plist
    index._postings = postings
    index._value_postings = payload["values"]
    index._numeric = payload["numeric"]
    index._token_counts = payload["token_counts"]
    index._subtree_end = payload["subtree_end"]
    index._total_tokens = payload["total_tokens"]
    return index


def _encode_completion(index: CompletionIndex) -> dict:
    return {
        "tag": index.tag_trie,
        "global_token": index.global_token_trie,
        "global_value": index.global_value_trie,
        "path_token": index._path_token_tries,
        "path_value": index._path_value_tries,
    }


def _decode_completion(
    payload: dict, labeled: LabeledDocument, term_index: TermIndex
) -> CompletionIndex:
    index = object.__new__(CompletionIndex)
    index._labeled = labeled
    index._term_index = term_index
    index.tag_trie = payload["tag"]
    index.global_token_trie = payload["global_token"]
    index.global_value_trie = payload["global_value"]
    index._path_token_tries = payload["path_token"]
    index._path_value_tries = payload["path_value"]
    return index


# ----------------------------------------------------------------------
# Raw (v3) hot-section codecs
#
# Each hot section splits into a small pickled *directory* (dict of
# names → int64 offsets/counts into the raw blob) and one contiguous
# uncompressed blob the snapshot stores 8-byte-aligned.  Decoding under
# mmap slices ``memoryview('q')`` columns straight out of the mapping —
# zero copies, zero per-entry Python objects beyond the dict itself.  A
# foreign byte order degrades to copying + byteswap; a foreign int
# layout (itemsize) returns ``None`` and the caller rebuilds from the
# labels.
# ----------------------------------------------------------------------


def _raw_columns(directory: dict, raw):
    """Column accessor over ``raw`` honoring the directory's byte order."""
    base = raw if isinstance(raw, memoryview) else memoryview(raw)
    if directory.get("byteorder") == sys.byteorder:
        cells = base.cast(_I64)

        def column(offset: int, count: int):
            return cells[offset : offset + count]

    else:

        def column(offset: int, count: int):
            copied = array(_I64)
            copied.frombytes(
                base[offset * _I64_SIZE : (offset + count) * _I64_SIZE]
            )
            copied.byteswap()
            return copied

    return column


def _encode_terms_raw(index: TermIndex, byteorder: str) -> tuple[dict, bytearray]:
    raw = bytearray()
    swap = byteorder != sys.byteorder

    def put(values) -> int:
        cells = array(_I64, values)
        if swap:
            cells.byteswap()
        offset = len(raw) // _I64_SIZE
        raw.extend(cells.tobytes())
        return offset

    postings: dict[str, tuple[int, int]] = {}
    for term, plist in index._postings.items():
        # orders then tfs, adjacent: tfs start at offset + n.
        offset = put(plist.orders)
        put(plist.tfs)
        postings[term] = (offset, len(plist.orders))
    values = {
        value: (put(orders), len(orders))
        for value, orders in index._value_postings.items()
    }
    subtree = (put(index._subtree_end), len(index._subtree_end))
    directory = {
        "format": TERMS_RAW_FORMAT,
        "itemsize": _I64_SIZE,
        "byteorder": byteorder,
        "postings": postings,
        "values": values,
        "subtree_end": subtree,
        "numeric": index._numeric,
        "token_counts": index._token_counts,
        "total_tokens": index._total_tokens,
    }
    return directory, raw


def _decode_terms_raw(directory: dict, raw) -> TermIndex | None:
    if (
        not isinstance(directory, dict)
        or directory.get("format") != TERMS_RAW_FORMAT
        or directory.get("itemsize") != _I64_SIZE
    ):
        return None
    column = _raw_columns(directory, raw)
    index = object.__new__(TermIndex)
    index._labeled = None  # only the from-scratch build reads it
    postings: dict[str, _PostingList] = {}
    for term, (offset, count) in directory["postings"].items():
        plist = object.__new__(_PostingList)
        plist.orders = column(offset, count)
        plist.tfs = column(offset + count, count)
        postings[term] = plist
    index._postings = postings
    index._value_postings = {
        value: column(offset, count)
        for value, (offset, count) in directory["values"].items()
    }
    offset, count = directory["subtree_end"]
    index._subtree_end = column(offset, count)
    index._numeric = directory["numeric"]
    index._token_counts = directory["token_counts"]
    index._total_tokens = directory["total_tokens"]
    return index


def _encode_completion_raw(
    index: CompletionIndex, byteorder: str
) -> tuple[dict, bytearray, bytearray]:
    """Pack every completion trie; returns ``(directory, ints, keys)``.

    ``ints`` holds the int64 arrays (offsets / weights / RMQ sparse
    table) of every trie concatenated; ``keys`` holds the UTF-8 key
    blobs.  Keeping the byte blob in its own section means every int64
    raw section is endian-uniform, so cross-endian tooling (and the
    foreign-layout tests) can treat ``*.raw`` sections as pure int64.
    """
    ints = bytearray()
    keys = bytearray()
    swap = byteorder != sys.byteorder

    def put(cells: array) -> int:
        if swap:
            cells = array(_I64, cells)
            cells.byteswap()
        offset = len(ints) // _I64_SIZE
        ints.extend(cells.tobytes())
        return offset

    def put_trie(trie) -> dict:
        blob, offsets, weights, rmq = pack_items(trie.items())
        record = {
            "n": len(weights),
            "keys": (len(keys), len(blob)),
            "offsets": put(offsets),
            "weights": put(weights),
            "rmq": put(rmq),
        }
        keys.extend(blob)
        return record

    directory = {
        "format": COMPLETION_RAW_FORMAT,
        "itemsize": _I64_SIZE,
        "byteorder": byteorder,
        "tag": put_trie(index.tag_trie),
        "global_token": put_trie(index.global_token_trie),
        "global_value": put_trie(index.global_value_trie),
        "path_token": {
            pid: put_trie(trie)
            for pid, trie in index._path_token_tries.items()
        },
        "path_value": {
            pid: put_trie(trie)
            for pid, trie in index._path_value_tries.items()
        },
    }
    return directory, ints, keys


def _decode_completion_raw(
    directory: dict, ints_raw, keys_raw
) -> CompletionIndex | None:
    if (
        not isinstance(directory, dict)
        or directory.get("format") != COMPLETION_RAW_FORMAT
        or directory.get("itemsize") != _I64_SIZE
    ):
        return None
    column = _raw_columns(directory, ints_raw)
    keys = keys_raw if isinstance(keys_raw, memoryview) else memoryview(keys_raw)

    def trie(record: dict) -> PackedTrie:
        count = record["n"]
        key_offset, key_length = record["keys"]
        return PackedTrie(
            keys[key_offset : key_offset + key_length],
            column(record["offsets"], count + 1),
            column(record["weights"], count),
            column(record["rmq"], rmq_table_length(count)),
        )

    index = object.__new__(CompletionIndex)
    index._labeled = None  # only the from-scratch build reads these
    index._term_index = None
    index.tag_trie = trie(directory["tag"])
    index.global_token_trie = trie(directory["global_token"])
    index.global_value_trie = trie(directory["global_value"])
    index._path_token_tries = {
        pid: trie(record) for pid, record in directory["path_token"].items()
    }
    index._path_value_tries = {
        pid: trie(record) for pid, record in directory["path_value"].items()
    }
    return index


def _raw_layout_native(meta: dict) -> bool:
    """Whether the snapshot's raw sections use this platform's int layout
    (recorded once in the header meta, so the check is O(1) at load)."""
    layout = meta.get("raw_layout") or {}
    return (
        layout.get("typecode") == _I64
        and layout.get("itemsize") == _I64_SIZE
        and layout.get("byteorder") == sys.byteorder
    )


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def _snapshot_meta(database: LotusXDatabase, seqno: int, document_ids) -> dict:
    synonyms = database._synonyms
    return {
        "element_count": len(database.labeled),
        "path_count": len(database.labeled.guide),
        "expand_attributes": database.expanded_attributes,
        "synonyms": (
            {term: list(alts) for term, alts in synonyms.items()}
            if synonyms
            else None
        ),
        "source_name": database.document.source_name,
        "seqno": int(seqno),
        "document_ids": list(document_ids) if document_ids is not None else None,
        "statistics": compute_statistics(
            database.labeled, database.term_index
        ).as_dict(),
    }


def _write_atomic(path: str | os.PathLike[str], buffer: bytearray) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    try:
        temp.write_bytes(bytes(buffer))
        os.replace(temp, target)
    finally:
        temp.unlink(missing_ok=True)
    return target


def save_snapshot(
    database: LotusXDatabase,
    path: str | os.PathLike[str],
    seqno: int = 0,
    document_ids: tuple[str, ...] | list[str] | None = None,
    *,
    version: int = SNAPSHOT_VERSION,
    _force_byteorder: str | None = None,
) -> SnapshotInfo:
    """Write ``database`` to a single snapshot file at ``path``.

    The write is atomic (temp file + rename), so a crash never leaves a
    half-written snapshot where a valid one was expected.  Returns a
    :class:`SnapshotInfo` describing the file.

    ``seqno`` stamps the write-path checkpoint position: the snapshot
    contains every mutation up to and including that WAL sequence
    number, so recovery replays only newer records.  The default 0 marks
    a plain indexed corpus (replay everything in the WAL).
    ``document_ids`` preserves the writer's top-level id namespace
    across the checkpoint (WAL updates/deletes address documents by id).

    ``version=2`` writes the previous all-zpickle format (compatibility
    fixtures and A/B benchmarks); the default v3 lays the hot sections
    out as raw aligned buffers so ``mmap=True`` loads are zero-copy.
    ``_force_byteorder`` fabricates a foreign-endian v3 file (tests
    only).
    """
    if version == 2:
        return _save_snapshot_v2(database, path, seqno, document_ids)
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"cannot write snapshot version {version!r}")

    database = database.warm()
    byteorder = _force_byteorder or sys.byteorder

    zpickled: list[tuple[str, bytes]] = [
        ("document", _dumps_section(database.document))
    ]
    if database.labeled.document is not database.document:
        # expand_attributes indexes a shadow tree; persist both so the
        # load restores the pristine/indexed split exactly.
        zpickled.append(
            ("indexed_document", _dumps_section(database.labeled.document))
        )
    zpickled.append(("labels", _dumps_section(_encode_labels(database.labeled))))

    raw_sections: list[tuple[str, bytearray]] = []
    terms_dir, terms_raw = _encode_terms_raw(database.term_index, byteorder)
    zpickled.append(("terms", _dumps_section(terms_dir)))
    raw_sections.append(("terms.raw", terms_raw))
    completion_dir, completion_ints, completion_keys = _encode_completion_raw(
        database.completion_index, byteorder
    )
    zpickled.append(("completion", _dumps_section(completion_dir)))
    raw_sections.append(("completion.raw", completion_ints))
    raw_sections.append(("completion.keys", completion_keys))
    columnar = database.streams.columnar
    if columnar is not None:
        columnar_dir, columnar_raw = encode_columnar_raw(columnar, byteorder)
        zpickled.append(("columnar", _dumps_section(columnar_dir)))
        raw_sections.append(("columnar.raw", columnar_raw))

    meta = _snapshot_meta(database, seqno, document_ids)
    meta["raw_layout"] = {
        "typecode": _I64,
        "itemsize": _I64_SIZE,
        "byteorder": byteorder,
    }

    # Data area: raw sections first, each 8-aligned (the data area
    # itself is 8-aligned, see the header padding below), then the
    # pickled object sections, which need no alignment.
    table: list[dict] = []
    chunks: list[bytes] = []
    cursor = 0
    for name, blob in raw_sections:
        pad = (-cursor) % _SECTION_ALIGN
        if pad:
            chunks.append(b"\0" * pad)
            cursor += pad
        table.append(
            {
                "name": name,
                "offset": cursor,
                "length": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
                "encoding": "raw",
            }
        )
        chunks.append(bytes(blob))
        cursor += len(blob)
    for name, blob in zpickled:
        table.append(
            {
                "name": name,
                "offset": cursor,
                "length": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
                "encoding": "zpickle",
            }
        )
        chunks.append(blob)
        cursor += len(blob)

    header = json.dumps(
        {"sections": table, "meta": meta}, sort_keys=True
    ).encode("utf-8")
    # Space-pad the header (JSON tolerates trailing whitespace) so the
    # data area starts 8-aligned: prefix + header + header digest ≡ 0.
    header += b" " * (
        (-(_PREFIX.size + len(header) + _DIGEST_SIZE)) % _SECTION_ALIGN
    )

    buffer = bytearray()
    buffer += _PREFIX.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0, len(header))
    buffer += header
    buffer += hashlib.sha256(buffer).digest()
    for chunk in chunks:
        buffer += chunk
    digest = hashlib.sha256(buffer).digest()
    buffer += digest

    target = _write_atomic(path, buffer)
    return SnapshotInfo(
        path=str(target),
        version=SNAPSHOT_VERSION,
        size_bytes=len(buffer),
        element_count=meta["element_count"],
        path_count=meta["path_count"],
        expand_attributes=meta["expand_attributes"],
        section_sizes={entry["name"]: entry["length"] for entry in table},
        sha256=digest.hex(),
        seqno=int(seqno),
        document_ids=tuple(document_ids) if document_ids is not None else None,
    )


def _save_snapshot_v2(
    database: LotusXDatabase,
    path: str | os.PathLike[str],
    seqno: int = 0,
    document_ids: tuple[str, ...] | list[str] | None = None,
) -> SnapshotInfo:
    """The format-2 writer (all sections zlib-pickled, no alignment)."""
    database = database.warm()
    sections: list[tuple[str, bytes]] = [
        ("document", _dumps_section(database.document))
    ]
    if database.labeled.document is not database.document:
        sections.append(
            ("indexed_document", _dumps_section(database.labeled.document))
        )
    sections.append(("labels", _dumps_section(_encode_labels(database.labeled))))
    sections.append(("terms", _dumps_section(_encode_terms(database.term_index))))
    sections.append(
        ("completion", _dumps_section(_encode_completion(database.completion_index)))
    )
    columnar = database.streams.columnar
    if columnar is not None:
        sections.append(("columnar", _dumps_section(encode_columnar(columnar))))

    meta = _snapshot_meta(database, seqno, document_ids)

    table = []
    offset = 0
    for name, blob in sections:
        table.append(
            {
                "name": name,
                "offset": offset,
                "length": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
            }
        )
        offset += len(blob)
    header = json.dumps(
        {"sections": table, "meta": meta}, sort_keys=True
    ).encode("utf-8")

    buffer = bytearray()
    buffer += _PREFIX.pack(SNAPSHOT_MAGIC, 2, 0, len(header))
    buffer += header
    for _, blob in sections:
        buffer += blob
    digest = hashlib.sha256(buffer).digest()
    buffer += digest

    target = _write_atomic(path, buffer)
    return SnapshotInfo(
        path=str(target),
        version=2,
        size_bytes=len(buffer),
        element_count=meta["element_count"],
        path_count=meta["path_count"],
        expand_attributes=meta["expand_attributes"],
        section_sizes={entry["name"]: entry["length"] for entry in table},
        sha256=digest.hex(),
        seqno=int(seqno),
        document_ids=tuple(document_ids) if document_ids is not None else None,
    )


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def _parse_header(blob, source: str) -> dict:
    try:
        header = json.loads(bytes(blob).decode("utf-8"))
        header["sections"]
        header["meta"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SnapshotFormatError(f"{source}: malformed snapshot header: {exc}") from exc
    return header


def _validate_sections(
    sections, data_start: int, data_end: int, source: str
) -> None:
    for entry in sections:
        try:
            start = data_start + entry["offset"]
            stop = start + entry["length"]
            entry["name"]
        except (KeyError, TypeError) as exc:
            raise SnapshotFormatError(
                f"{source}: malformed section table entry: {exc}"
            ) from exc
        if not (data_start <= start <= stop <= data_end):
            raise SnapshotFormatError(
                f"{source}: section {entry['name']!r} overruns the file"
            )


def _check_version(version: int, source: str) -> None:
    if version not in SUPPORTED_SNAPSHOT_VERSIONS:
        supported = ", ".join(
            str(v) for v in sorted(SUPPORTED_SNAPSHOT_VERSIONS)
        )
        raise SnapshotVersionError(
            f"{source}: unsupported snapshot version {version} "
            f"(this build reads versions {supported})"
        )


def _data_start(version: int, header_length: int) -> int:
    # v3 inserts a header digest between the header and the data area.
    start = _PREFIX.size + header_length
    if version >= 3:
        start += _DIGEST_SIZE
    return start


def _verify_snapshot_bytes(data, source: str) -> tuple[dict, int, int]:
    """Run the fixed check order (magic → digest → version → header) and
    return ``(header, data_area_offset, version)``."""
    if not bytes(data[: len(SNAPSHOT_MAGIC)]).startswith(SNAPSHOT_MAGIC):
        raise SnapshotFormatError(f"{source}: not a LotusX snapshot file")
    if len(data) < _PREFIX.size + _DIGEST_SIZE:
        raise SnapshotIntegrityError(f"{source}: snapshot is truncated")
    digest = hashlib.sha256(data[:-_DIGEST_SIZE]).digest()
    if digest != bytes(data[-_DIGEST_SIZE:]):
        raise SnapshotIntegrityError(
            f"{source}: checksum mismatch — the snapshot is truncated or corrupt"
        )
    _, version, _flags, header_length = _PREFIX.unpack_from(data)
    _check_version(version, source)
    header_start = _PREFIX.size
    header_end = header_start + header_length
    data_start = _data_start(version, header_length)
    if data_start > len(data) - _DIGEST_SIZE:
        raise SnapshotFormatError(f"{source}: header overruns the file")
    header = _parse_header(data[header_start:header_end], source)
    _validate_sections(
        header["sections"], data_start, len(data) - _DIGEST_SIZE, source
    )
    return header, data_start, version


def _read_snapshot_file(path: str | os.PathLike[str]) -> bytes:
    try:
        return Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc


def _stream_verify_snapshot(
    path: str | os.PathLike[str],
) -> tuple[dict, int, int, bytes]:
    """Verify the snapshot at ``path`` in streamed chunks and return
    ``(header, version, size_bytes, trailer_digest)``.

    Peak memory is one ~1 MiB chunk plus the header — never the whole
    file — so ``read_snapshot_info`` stays O(header) in space even for
    multi-gigabyte snapshots.
    """
    source = str(path)
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(_PREFIX.size)
            if not prefix.startswith(SNAPSHOT_MAGIC):
                raise SnapshotFormatError(f"{source}: not a LotusX snapshot file")
            size = os.fstat(handle.fileno()).st_size
            if size < _PREFIX.size + _DIGEST_SIZE:
                raise SnapshotIntegrityError(f"{source}: snapshot is truncated")
            _, version, _flags, header_length = _PREFIX.unpack_from(prefix)
            hasher = hashlib.sha256(prefix)
            hashed = size - _DIGEST_SIZE - _PREFIX.size
            header_parts: list[bytes] = []
            header_seen = 0
            while hashed > 0:
                chunk = handle.read(min(_STREAM_CHUNK, hashed))
                if not chunk:
                    raise SnapshotIntegrityError(
                        f"{source}: snapshot is truncated"
                    )
                hasher.update(chunk)
                hashed -= len(chunk)
                if header_seen < header_length:
                    take = chunk[: header_length - header_seen]
                    header_parts.append(take)
                    header_seen += len(take)
            trailer = handle.read(_DIGEST_SIZE)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if hasher.digest() != trailer:
        raise SnapshotIntegrityError(
            f"{source}: checksum mismatch — the snapshot is truncated or corrupt"
        )
    _check_version(version, source)
    if header_seen < header_length:
        raise SnapshotFormatError(f"{source}: header overruns the file")
    header = _parse_header(b"".join(header_parts), source)
    _validate_sections(
        header["sections"],
        _data_start(version, header_length),
        size - _DIGEST_SIZE,
        source,
    )
    return header, version, size, trailer


def read_snapshot_info(path: str | os.PathLike[str]) -> SnapshotInfo:
    """Verify ``path`` and return its metadata without materializing
    any sections.  The checksum is verified in streamed chunks; only
    the header is ever held in memory."""
    header, version, size, trailer = _stream_verify_snapshot(path)
    meta = header["meta"]
    return SnapshotInfo(
        path=str(path),
        version=version,
        size_bytes=size,
        element_count=meta["element_count"],
        path_count=meta["path_count"],
        expand_attributes=bool(meta["expand_attributes"]),
        section_sizes={
            entry["name"]: entry["length"] for entry in header["sections"]
        },
        sha256=trailer.hex(),
        seqno=int(meta.get("seqno", 0)),
        document_ids=(
            tuple(meta["document_ids"])
            if meta.get("document_ids") is not None
            else None
        ),
    )


class MappedSnapshot:
    """A refcounted ``mmap`` of one snapshot file.

    Every :class:`_SnapshotDatabase` served from the mapping holds one
    reference; the mapping is released when the last one drops
    (:meth:`decref`).  If query results still hold exported
    ``memoryview`` slices at that point, ``mmap.close()`` raises
    ``BufferError`` — we then *defer*: the master view is released, and
    the OS unmaps the region when Python's refcounting collects the last
    exported view.  Either way no live view is ever invalidated, which
    is what makes hot reload safe (the old generation's buffers outlive
    every in-flight request that touches them).
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = str(path)
        try:
            with open(path, "rb") as handle:
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except OSError as exc:
            raise SnapshotError(f"cannot map snapshot {path}: {exc}") from exc
        except ValueError as exc:
            # Zero-length file: not mappable, certainly not a snapshot.
            raise SnapshotFormatError(
                f"{path}: not a LotusX snapshot file"
            ) from exc
        self._view: memoryview | None = memoryview(self._mmap)
        self._lock = threading.Lock()
        self._refs = 1
        self._released = False
        self._closed = False

    def view(self) -> memoryview:
        if self._view is None:
            raise SnapshotError(f"{self.path}: snapshot mapping was released")
        return self._view

    def __len__(self) -> int:
        return len(self._mmap)

    @property
    def references(self) -> int:
        with self._lock:
            return self._refs

    @property
    def mapped(self) -> bool:
        """True while the OS mapping is still in place (possibly only
        because exported views pin it)."""
        return not self._closed

    def incref(self) -> MappedSnapshot:
        with self._lock:
            if self._released:
                raise SnapshotError(
                    f"{self.path}: snapshot mapping was released"
                )
            self._refs += 1
        return self

    def decref(self) -> None:
        with self._lock:
            if self._released:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._released = True
            self._view = None
            self._try_close_locked()

    def try_close(self) -> bool:
        """Retry a deferred close; True once the mapping is closed."""
        with self._lock:
            if not self._released:
                return False
            self._try_close_locked()
            return self._closed

    def _try_close_locked(self) -> None:
        if self._closed:
            return
        try:
            self._mmap.close()
        except BufferError:
            # Exported views still pin the buffer; refcounting will
            # unmap when the last one dies.
            return
        self._closed = True


def _verify_mapped_snapshot(buf: memoryview, source: str):
    """Header-only verification for a mapped v3 snapshot.

    Returns ``(header, data_start, version)`` for a v3+ file, or
    ``None`` for an older version (the caller falls back to the
    byte-reading path, which applies the full v1/v2 check order).
    Unlike :func:`_verify_snapshot_bytes` this never touches the data
    area — that is the whole point of the mapped mode — so integrity of
    the hot sections is enforced lazily, per section, on first access.
    """
    if bytes(buf[: len(SNAPSHOT_MAGIC)]) != SNAPSHOT_MAGIC:
        raise SnapshotFormatError(f"{source}: not a LotusX snapshot file")
    if len(buf) < _PREFIX.size + _DIGEST_SIZE:
        raise SnapshotIntegrityError(f"{source}: snapshot is truncated")
    _, version, _flags, header_length = _PREFIX.unpack_from(buf)
    if version < 3:
        return None
    _check_version(version, source)
    header_end = _PREFIX.size + header_length
    data_start = header_end + _DIGEST_SIZE
    if data_start > len(buf) - _DIGEST_SIZE:
        raise SnapshotFormatError(f"{source}: header overruns the file")
    digest = hashlib.sha256(buf[:header_end]).digest()
    if digest != bytes(buf[header_end:data_start]):
        raise SnapshotIntegrityError(
            f"{source}: header checksum mismatch — the snapshot is corrupt"
        )
    header = _parse_header(buf[_PREFIX.size : header_end], source)
    _validate_sections(
        header["sections"], data_start, len(buf) - _DIGEST_SIZE, source
    )
    return header, data_start, version


class _SnapshotReader:
    """A verified snapshot buffer plus the parsed section table.

    ``buf`` is either the whole file as ``bytes`` (copying loads, fully
    digest-verified up front) or a ``memoryview`` of a
    :class:`MappedSnapshot` (zero-copy loads, header verified up front).
    In both modes each section's SHA-256 is checked once, on first
    access — for mapped snapshots that is the *only* data-area
    integrity check, so it must not be skipped.
    """

    def __init__(
        self,
        header: dict,
        data_start: int,
        version: int,
        buf,
        source: str,
        mapping: MappedSnapshot | None = None,
    ) -> None:
        self._buf = buf
        self._source = source
        self._data_start = data_start
        self._sections = {entry["name"]: entry for entry in header["sections"]}
        self._verified: set[str] = set()
        self._verify_lock = threading.Lock()
        self.meta = header["meta"]
        self.version = version
        self.mapping = mapping

    @classmethod
    def from_bytes(cls, data: bytes, source: str) -> _SnapshotReader:
        header, data_start, version = _verify_snapshot_bytes(data, source)
        return cls(header, data_start, version, data, source)

    @classmethod
    def from_mapping(
        cls, mapping: MappedSnapshot, source: str
    ) -> _SnapshotReader | None:
        verified = _verify_mapped_snapshot(mapping.view(), source)
        if verified is None:
            return None
        header, data_start, version = verified
        return cls(
            header, data_start, version, mapping.view(), source, mapping
        )

    def has(self, name: str) -> bool:
        return name in self._sections

    def _section(self, name: str):
        entry = self._sections.get(name)
        if entry is None:
            raise SnapshotFormatError(
                f"{self._source}: snapshot has no {name!r} section"
            )
        start = self._data_start + entry["offset"]
        blob = self._buf[start : start + entry["length"]]
        if name not in self._verified:
            digest = hashlib.sha256(blob).hexdigest()
            if digest != entry["sha256"]:
                raise SnapshotIntegrityError(
                    f"{self._source}: section {name!r} is corrupt "
                    "(checksum mismatch)"
                )
            with self._verify_lock:
                self._verified.add(name)
        return blob

    def payload(self, name: str):
        """Decode a zlib-pickled object section."""
        return _loads_section(self._section(name), name)

    def raw(self, name: str) -> memoryview:
        """A verified raw section as a ``memoryview`` (no copy when the
        underlying buffer is a mapping)."""
        blob = self._section(name)
        return blob if isinstance(blob, memoryview) else memoryview(blob)


# Columnar sentinels: the snapshot has no columnar section at all (v1)
# vs. it has one this platform's array layout cannot decode (rebuild).
_ABSENT = object()
_REBUILD = object()


class _SnapshotDatabase(LotusXDatabase):
    """A database whose components inflate lazily from a snapshot.

    The snapshot's integrity was fully verified at construction; after
    that each section is decoded at most once, the first time a query
    needs it (thread-safe), or all at once via :meth:`warm`.
    """

    def __init__(
        self,
        reader: _SnapshotReader,
        scorer: LotusXScorer | None,
        synonyms: dict[str, tuple[str, ...]] | None,
        expand_attributes: bool,
    ) -> None:
        # Deliberately no super().__init__ — that path *builds* indexes.
        self._reader = reader
        self._parts: dict[str, object] = {}
        self._inflate_lock = threading.RLock()
        self._closed = False
        self.expanded_attributes = expand_attributes
        self.scorer = scorer or LotusXScorer()
        self._synonyms = synonyms
        self._init_runtime_caches()

    def _part(self, name: str, build):
        value = self._parts.get(name)
        if value is None:
            with self._inflate_lock:
                value = self._parts.get(name)
                if value is None:
                    value = build()
                    self._parts[name] = value
        return value

    # Data descriptors shadow the attributes the base __init__ would
    # assign; each one decodes its section on first access.

    @property
    def document(self) -> Document:
        return self._part("document", lambda: self._reader.payload("document"))

    @property
    def labeled(self) -> LabeledDocument:
        return self._part("labeled", self._build_labeled)

    def _build_labeled(self) -> LabeledDocument:
        if self._reader.has("indexed_document"):
            tree = self._reader.payload("indexed_document")
        else:
            tree = self.document
        return _decode_labels(self._reader.payload("labels"), tree)

    @property
    def term_index(self) -> TermIndex:
        return self._part("term_index", self._build_term_index)

    def _build_term_index(self) -> TermIndex:
        if self._reader.has("terms.raw"):
            try:
                index = _decode_terms_raw(
                    self._reader.payload("terms"), self._reader.raw("terms.raw")
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotFormatError(
                    f"snapshot terms section is inconsistent: {exc}"
                ) from exc
            if index is not None:
                return index
            # Foreign array layout with no carried arrays we can adopt
            # cheaply in full: rebuild from the labels.
            return TermIndex(self.labeled)
        return _decode_terms(self._reader.payload("terms"), self.labeled)

    @property
    def completion_index(self) -> CompletionIndex:
        return self._part("completion_index", self._build_completion_index)

    def _build_completion_index(self) -> CompletionIndex:
        if self._reader.has("completion.raw"):
            try:
                index = _decode_completion_raw(
                    self._reader.payload("completion"),
                    self._reader.raw("completion.raw"),
                    self._reader.raw("completion.keys"),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotFormatError(
                    f"snapshot completion section is inconsistent: {exc}"
                ) from exc
            if index is not None:
                return index
            return CompletionIndex(self.labeled, self.term_index)
        return _decode_completion(
            self._reader.payload("completion"), self.labeled, self.term_index
        )

    @property
    def streams(self) -> StreamFactory:
        return self._part("streams", self._build_streams)

    def _columnar_part(self):
        return self._part("columnar", self._build_columnar)

    def _columnar_elements(self, tag):
        """Element-object resolver for :class:`LazyElements` — only
        called if a query path actually needs element objects."""
        labeled = self.labeled
        return labeled.elements if tag is None else labeled.stream(tag)

    def _build_columnar(self):
        try:
            if self._reader.has("columnar.raw"):
                index = decode_columnar_raw(
                    self._reader.payload("columnar"),
                    self._reader.raw("columnar.raw"),
                    self._columnar_elements,
                )
                return index if index is not None else _REBUILD
            if self._reader.has("columnar"):
                index = decode_columnar(
                    self._reader.payload("columnar"), self.labeled
                )
                return index if index is not None else _REBUILD
        except ValueError as exc:
            raise SnapshotFormatError(
                f"snapshot columnar section is inconsistent: {exc}"
            ) from exc
        return _ABSENT

    def _build_streams(self) -> StreamFactory:
        columnar = self._columnar_part()
        if columnar is _ABSENT:
            # Pre-columnar (v1) snapshot: serve object streams only,
            # exactly what the snapshot was saved with.
            return StreamFactory(
                self.labeled, self.term_index, build_columnar=False
            )
        if columnar is _REBUILD:
            # The writing platform's array layout doesn't map onto this
            # one: rebuild the columns from the labels instead.
            return StreamFactory(self.labeled, self.term_index)
        return StreamFactory(self.labeled, self.term_index, columnar=columnar)

    @property
    def autocomplete(self) -> AutocompleteEngine:
        return self._part(
            "autocomplete",
            lambda: AutocompleteEngine(self.labeled.guide, self.completion_index),
        )

    @property
    def rewriter(self) -> QueryRewriter:
        return self._part(
            "rewriter",
            lambda: QueryRewriter(
                default_rules(self.labeled.guide, self._synonyms)
            ),
        )

    def warm(self) -> LotusXDatabase:
        """Materialize every section now; returns ``self``."""
        self.document
        self.labeled
        self.term_index
        self.completion_index
        self.streams
        self.autocomplete
        self.rewriter
        return self

    def warm_hot(self) -> LotusXDatabase:
        """Materialize only the *hot* query-path sections (term postings,
        completion tries, columnar streams).  On an mmap-backed v3
        snapshot this is O(header) work — no document tree, no label
        store, no byte copies — which is the whole zero-copy warm-start
        story."""
        self.term_index
        self.completion_index
        self._columnar_part()
        return self

    def close(self) -> None:
        """Drop this database's reference on the snapshot mapping (if
        any).  Idempotent; a database loaded from bytes is a no-op."""
        if self._closed:
            return
        self._closed = True
        mapping = self._reader.mapping
        if mapping is not None:
            mapping.decref()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        if "labeled" not in self._parts:
            return "LotusXDatabase(snapshot, lazy)"
        return super().__repr__()


def _database_from_reader(
    reader: _SnapshotReader,
    scorer: LotusXScorer | None,
    eager: bool,
) -> LotusXDatabase:
    meta = reader.meta
    raw_synonyms = meta.get("synonyms")
    synonyms = (
        {term: tuple(alts) for term, alts in raw_synonyms.items()}
        if raw_synonyms
        else None
    )
    database = _SnapshotDatabase(
        reader, scorer, synonyms, bool(meta.get("expand_attributes", False))
    )
    if eager:
        database.warm()
    return database


def load_snapshot(
    path: str | os.PathLike[str],
    scorer: LotusXScorer | None = None,
    eager: bool = False,
    mmap: bool | str = False,
) -> LotusXDatabase:
    """Load a snapshot written by :func:`save_snapshot`.

    With ``mmap=False`` (the default) the whole file is read and its
    checksum verified before anything is decoded; sections then
    materialize lazily on first use (pass ``eager=True`` — or call
    :meth:`LotusXDatabase.warm` — to inflate everything immediately,
    e.g. before putting a server into rotation).

    With ``mmap=True`` a v3 snapshot is mapped instead of read: only the
    header is verified up front (each section's SHA-256 is checked the
    first time it is touched), and the hot sections are served as
    ``memoryview`` slices of the mapping — zero copies, and forked
    workers or co-hosted processes share one set of physical pages.
    When the file cannot be served zero-copy (a pre-v3 version, or hot
    sections written with a foreign byte layout) the call silently falls
    back to the copying loader; pass ``mmap="require"`` to get a
    :class:`SnapshotMmapError` instead of the fallback.

    Raises
    ------
    SnapshotFormatError
        Not a snapshot file, or its structure cannot be parsed.
    SnapshotIntegrityError
        Truncated or corrupted file (checksum mismatch).
    SnapshotVersionError
        A format version this build does not support.
    SnapshotMmapError
        ``mmap="require"`` and the file cannot be served zero-copy.
    """
    source = str(path)
    if mmap:
        mapping = MappedSnapshot(path)
        try:
            reader = _SnapshotReader.from_mapping(mapping, source)
            reason = None
            if reader is None:
                reason = "snapshot version predates the mmap layout (v3)"
            elif not _raw_layout_native(reader.meta):
                reader = None
                reason = "hot sections use a foreign byte layout"
            if reader is None and mmap == "require":
                raise SnapshotMmapError(
                    f"{source}: cannot serve zero-copy — {reason}"
                )
        except BaseException:
            mapping.decref()
            raise
        if reader is not None:
            return _database_from_reader(reader, scorer, eager)
        mapping.decref()
    data = _read_snapshot_file(path)
    reader = _SnapshotReader.from_bytes(data, source)
    return _database_from_reader(reader, scorer, eager)


def is_mmap_backed(database) -> bool:
    """True if ``database`` (or, for a sharded database, every shard)
    serves its hot sections from a snapshot mapping."""
    shards = getattr(database, "shards", None)
    if shards is not None:
        return bool(shards) and all(is_mmap_backed(s) for s in shards)
    reader = getattr(database, "_reader", None)
    return reader is not None and reader.mapping is not None


# ======================================================================
# Sharded snapshots
# ======================================================================

#: Manifest file name inside a sharded snapshot directory.
SHARD_MANIFEST = "corpus.json"
#: Format marker inside the corpus manifest.
SHARDED_SNAPSHOT_FORMAT = "lotusx-sharded-snapshot"
#: Version written by :func:`save_sharded_snapshot`.
SHARDED_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class ShardedSnapshotInfo:
    """Metadata about a sharded snapshot directory."""

    path: str
    version: int
    shard_count: int
    spine_tag: str
    size_bytes: int
    element_count: int
    #: Per-section byte totals summed across all shard files.
    section_sizes: dict[str, int]
    #: Per-shard file metadata, shard order.
    shards: tuple[SnapshotInfo, ...]


def shard_file_name(index: int) -> str:
    return f"shard-{index:04d}.lxsnap"


def is_sharded_snapshot(path: str | os.PathLike[str]) -> bool:
    """Is ``path`` a sharded snapshot directory (vs a snapshot file)?"""
    target = Path(path)
    return target.is_dir() and (target / SHARD_MANIFEST).is_file()


def save_sharded_snapshot(
    database, directory: str | os.PathLike[str]
) -> ShardedSnapshotInfo:
    """Write a :class:`~repro.shard.database.ShardedDatabase` fleet.

    Layout: a directory holding one ordinary snapshot file per shard
    (each individually checksummed and loadable with
    :func:`load_snapshot`) plus a ``corpus.json`` manifest recording the
    spine tag, every shard's placement spec
    (:meth:`~repro.shard.partitioner.ShardSpec.as_dict`), file name, and
    content hash.  The manifest is written last, so a crash mid-save
    never leaves a directory that passes :func:`is_sharded_snapshot`
    with missing shard files.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    infos: list[SnapshotInfo] = []
    entries: list[dict] = []
    for index, (shard, spec) in enumerate(zip(database.shards, database.specs)):
        name = shard_file_name(index)
        info = save_snapshot(shard, target / name)
        infos.append(info)
        entries.append(
            {
                "file": name,
                "spec": spec.as_dict(),
                "sha256": info.sha256,
                "size_bytes": info.size_bytes,
            }
        )
    manifest = {
        "format": SHARDED_SNAPSHOT_FORMAT,
        "format_version": SHARDED_SNAPSHOT_VERSION,
        "spine_tag": database.spine_tag,
        "shard_count": len(entries),
        "element_count": database.element_count,
        "statistics": database.statistics().as_dict(),
        "shards": entries,
    }
    _write_json(target / SHARD_MANIFEST, manifest)
    section_sizes: dict[str, int] = {}
    for info in infos:
        for name, size in info.section_sizes.items():
            section_sizes[name] = section_sizes.get(name, 0) + size
    return ShardedSnapshotInfo(
        path=str(target),
        version=SHARDED_SNAPSHOT_VERSION,
        shard_count=len(infos),
        spine_tag=database.spine_tag,
        size_bytes=sum(info.size_bytes for info in infos),
        element_count=manifest["element_count"],
        section_sizes=section_sizes,
        shards=tuple(infos),
    )


def read_sharded_snapshot_info(
    path: str | os.PathLike[str],
) -> ShardedSnapshotInfo:
    """Verify a sharded snapshot directory and return its metadata."""
    manifest, entries = _read_shard_manifest(path)
    infos = tuple(
        read_snapshot_info(Path(path) / entry["file"]) for entry in entries
    )
    section_sizes: dict[str, int] = {}
    for info in infos:
        for name, size in info.section_sizes.items():
            section_sizes[name] = section_sizes.get(name, 0) + size
    return ShardedSnapshotInfo(
        path=str(path),
        version=manifest["format_version"],
        shard_count=len(infos),
        spine_tag=manifest["spine_tag"],
        size_bytes=sum(info.size_bytes for info in infos),
        element_count=manifest["element_count"],
        section_sizes=section_sizes,
        shards=infos,
    )


def _read_shard_manifest(path: str | os.PathLike[str]) -> tuple[dict, list[dict]]:
    target = Path(path)
    manifest = _read_json(target / SHARD_MANIFEST)
    if manifest.get("format") != SHARDED_SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"{target}: {SHARD_MANIFEST} is not a sharded snapshot manifest"
        )
    version = manifest.get("format_version")
    if version != SHARDED_SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"{target}: unsupported sharded snapshot version {version!r} "
            f"(this build reads version {SHARDED_SNAPSHOT_VERSION})"
        )
    entries = manifest.get("shards")
    if not isinstance(entries, list) or not entries:
        raise SnapshotFormatError(f"{target}: manifest lists no shards")
    for entry in entries:
        if not isinstance(entry, dict) or "file" not in entry or "spec" not in entry:
            raise SnapshotFormatError(f"{target}: malformed shard entry in manifest")
    return manifest, entries


def load_sharded_snapshot(
    path: str | os.PathLike[str],
    scorer: LotusXScorer | None = None,
    eager: bool = False,
    executor_mode: str = "auto",
    max_workers: int | None = None,
    replicas: int = 1,
    fleet_config=None,
    mmap: bool | str = False,
):
    """Load a sharded snapshot directory into a ``ShardedDatabase``.

    Each shard file is verified (checksum) up front, exactly like
    :func:`load_snapshot`; heavy sections still inflate lazily per shard
    (the facade's merged guide and term statistics touch the labels and
    terms sections at construction, but completion tries and columnar
    streams wait for the first query, or ``eager=True``).  ``mmap`` is
    forwarded to each shard's :func:`load_snapshot` — with forked
    scatter-gather workers the shard mappings are inherited across the
    fork, so every worker shares one set of physical pages.
    """
    from repro.shard.database import ShardedDatabase
    from repro.shard.partitioner import ShardSpec

    manifest, entries = _read_shard_manifest(path)
    target = Path(path)
    databases = []
    specs = []
    for entry in entries:
        databases.append(
            load_snapshot(target / entry["file"], scorer, eager, mmap=mmap)
        )
        specs.append(ShardSpec.from_dict(entry["spec"]))
    synonyms = databases[0]._synonyms if databases else None
    database = ShardedDatabase(
        databases,
        specs,
        source_document=None,
        executor_mode=executor_mode,
        max_workers=max_workers,
        scorer=scorer,
        synonyms=synonyms,
        replicas=replicas,
        fleet_config=fleet_config,
    )
    if eager:
        database.warm()
    return database


# ======================================================================
# Legacy directory store (verified rebuild)
# ======================================================================


def save_database(database: LotusXDatabase, directory: str | os.PathLike[str]) -> None:
    """Write ``database`` to ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    xml_text = serialize(database.document, xml_declaration=True)
    (path / _DOCUMENT).write_text(xml_text, encoding="utf-8")

    guide_entries = [
        {
            "path": format_path(node.path),
            "count": node.count,
            "text_count": node.text_count,
        }
        for node in database.guide.iter_nodes()
    ]
    _write_json(path / _DATAGUIDE, guide_entries)

    child_entries = [
        {"tag": tag, "children": list(children)}
        for tag, children in database.labeled.child_table.items()
    ]
    _write_json(path / _CHILD_TABLE, child_entries)

    manifest = {
        "format_version": FORMAT_VERSION,
        "document_sha256": hashlib.sha256(xml_text.encode("utf-8")).hexdigest(),
        "expand_attributes": database.expanded_attributes,
        "element_count": len(database.labeled),
        "path_count": len(database.guide),
        "statistics": compute_statistics(
            database.labeled, database.term_index
        ).as_dict(),
    }
    _write_json(path / _MANIFEST, manifest)


def load_database(directory: str | os.PathLike[str], **kwargs) -> LotusXDatabase:
    """Load a database saved with :func:`save_database`.

    Raises
    ------
    StoreError
        On a missing/incompatible manifest, checksum mismatch, or any
        inconsistency between stored and rebuilt summaries.
    """
    path = Path(directory)
    manifest = _read_json(path / _MANIFEST)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"unsupported store format {version!r} (expected {FORMAT_VERSION})"
        )

    try:
        xml_text = (path / _DOCUMENT).read_text(encoding="utf-8")
    except OSError as exc:
        raise StoreError(f"cannot read {_DOCUMENT}: {exc}") from exc
    digest = hashlib.sha256(xml_text.encode("utf-8")).hexdigest()
    if digest != manifest.get("document_sha256"):
        raise StoreError("document checksum mismatch — the store is corrupt")

    kwargs.setdefault(
        "expand_attributes", bool(manifest.get("expand_attributes", False))
    )
    database = LotusXDatabase(parse_string(xml_text, source_name=str(path)), **kwargs)

    if len(database.labeled) != manifest.get("element_count"):
        raise StoreError("element count mismatch after rebuild")
    _verify_dataguide(database, _read_json(path / _DATAGUIDE))
    _verify_child_table(database, _read_json(path / _CHILD_TABLE))
    return database


def _verify_dataguide(database: LotusXDatabase, entries: list[dict]) -> None:
    stored = {
        entry["path"]: (entry["count"], entry["text_count"]) for entry in entries
    }
    rebuilt = {
        format_path(node.path): (node.count, node.text_count)
        for node in database.guide.iter_nodes()
    }
    if stored != rebuilt:
        raise StoreError("DataGuide mismatch after rebuild — the store is corrupt")


def _verify_child_table(database: LotusXDatabase, entries: list[dict]) -> None:
    stored = {entry["tag"]: tuple(entry["children"]) for entry in entries}
    rebuilt = dict(database.labeled.child_table.items())
    if stored != rebuilt:
        raise StoreError("child-table mismatch after rebuild — the store is corrupt")


def _write_json(path: Path, payload) -> None:
    path.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")


def _read_json(path: Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise StoreError(f"cannot read {path.name}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt JSON in {path.name}: {exc}") from exc
