"""On-disk persistence for LotusX databases.

A saved database is a directory::

    <dir>/
      manifest.json     format version, checksums, statistics
      document.xml      canonical serialization of the corpus
      dataguide.json    the structural summary (paths + counts)
      child_table.json  CT(t) tables (extended-Dewey decode tables)

Labels and inverted indexes are *derived* deterministically from the
document, so loading re-runs the (fast, single-pass) index build and then
**verifies** the rebuilt DataGuide and child tables against the stored
ones — corruption or version skew is detected, never silently accepted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.engine.database import LotusXDatabase
from repro.index.statistics import compute_statistics
from repro.summary.paths import format_path
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize

FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_DOCUMENT = "document.xml"
_DATAGUIDE = "dataguide.json"
_CHILD_TABLE = "child_table.json"


class StoreError(RuntimeError):
    """A saved database directory is missing, corrupt, or incompatible."""


def save_database(database: LotusXDatabase, directory: str | os.PathLike[str]) -> None:
    """Write ``database`` to ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    xml_text = serialize(database.document, xml_declaration=True)
    (path / _DOCUMENT).write_text(xml_text, encoding="utf-8")

    guide_entries = [
        {
            "path": format_path(node.path),
            "count": node.count,
            "text_count": node.text_count,
        }
        for node in database.guide.iter_nodes()
    ]
    _write_json(path / _DATAGUIDE, guide_entries)

    child_entries = [
        {"tag": tag, "children": list(children)}
        for tag, children in database.labeled.child_table.items()
    ]
    _write_json(path / _CHILD_TABLE, child_entries)

    manifest = {
        "format_version": FORMAT_VERSION,
        "document_sha256": hashlib.sha256(xml_text.encode("utf-8")).hexdigest(),
        "expand_attributes": database.expanded_attributes,
        "element_count": len(database.labeled),
        "path_count": len(database.guide),
        "statistics": compute_statistics(
            database.labeled, database.term_index
        ).as_dict(),
    }
    _write_json(path / _MANIFEST, manifest)


def load_database(directory: str | os.PathLike[str], **kwargs) -> LotusXDatabase:
    """Load a database saved with :func:`save_database`.

    Raises
    ------
    StoreError
        On a missing/incompatible manifest, checksum mismatch, or any
        inconsistency between stored and rebuilt summaries.
    """
    path = Path(directory)
    manifest = _read_json(path / _MANIFEST)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"unsupported store format {version!r} (expected {FORMAT_VERSION})"
        )

    try:
        xml_text = (path / _DOCUMENT).read_text(encoding="utf-8")
    except OSError as exc:
        raise StoreError(f"cannot read {_DOCUMENT}: {exc}") from exc
    digest = hashlib.sha256(xml_text.encode("utf-8")).hexdigest()
    if digest != manifest.get("document_sha256"):
        raise StoreError("document checksum mismatch — the store is corrupt")

    kwargs.setdefault(
        "expand_attributes", bool(manifest.get("expand_attributes", False))
    )
    database = LotusXDatabase(parse_string(xml_text, source_name=str(path)), **kwargs)

    if len(database.labeled) != manifest.get("element_count"):
        raise StoreError("element count mismatch after rebuild")
    _verify_dataguide(database, _read_json(path / _DATAGUIDE))
    _verify_child_table(database, _read_json(path / _CHILD_TABLE))
    return database


def _verify_dataguide(database: LotusXDatabase, entries: list[dict]) -> None:
    stored = {
        entry["path"]: (entry["count"], entry["text_count"]) for entry in entries
    }
    rebuilt = {
        format_path(node.path): (node.count, node.text_count)
        for node in database.guide.iter_nodes()
    }
    if stored != rebuilt:
        raise StoreError("DataGuide mismatch after rebuild — the store is corrupt")


def _verify_child_table(database: LotusXDatabase, entries: list[dict]) -> None:
    stored = {entry["tag"]: tuple(entry["children"]) for entry in entries}
    rebuilt = dict(database.labeled.child_table.items())
    if stored != rebuilt:
        raise StoreError("child-table mismatch after rebuild — the store is corrupt")


def _write_json(path: Path, payload) -> None:
    path.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")


def _read_json(path: Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise StoreError(f"cannot read {path.name}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt JSON in {path.name}: {exc}") from exc
