"""On-disk persistence for LotusX databases.

Two formats live here:

**Snapshot files** (the fast path) — a single versioned, checksummed file
holding the fully built database: the document tree, the labeled-element
store (region / Dewey / extended-Dewey labels), the DataGuide and
child-tag tables, the inverted term index, and every completion trie.
:func:`load_snapshot` verifies integrity up front and then *materializes
sections lazily*, so a server warm-starts in milliseconds and pays for
each index the first time a query touches it (or all at once via
``eager=True`` / :meth:`LotusXDatabase.warm`).  Nothing is re-parsed and
nothing is re-derived — loading skips XML parsing and index construction
entirely.

Snapshot file layout (all integers big-endian)::

    6 bytes   magic  b"LXSNAP"
    2 bytes   format version
    2 bytes   flags (reserved, 0)
    4 bytes   header length H
    H bytes   header JSON: sections table (name/offset/length/sha256,
              offsets relative to the data area) + meta (counts,
              expand_attributes, synonyms, statistics)
    ...       section blobs, each zlib-compressed pickle of
              plain-container payloads
    32 bytes  SHA-256 over every preceding byte

Integrity is checked in a fixed order — magic, trailing digest, version,
header — so corruption anywhere in the file (including the version field)
surfaces as :class:`SnapshotIntegrityError`, a genuinely different
version as :class:`SnapshotVersionError`, and a non-snapshot file as
:class:`SnapshotFormatError`.  Section pickles are decoded by a
restricted unpickler that only resolves ``repro.*`` classes.

**Store directories** (the legacy verified-rebuild path) — a directory of
document XML + JSON summaries; loading re-runs the index build and
verifies the rebuilt summaries against the stored ones.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.autocomplete.engine import AutocompleteEngine
from repro.engine.database import LotusXDatabase
from repro.index.columnar import decode_columnar, encode_columnar
from repro.index.completion_index import CompletionIndex
from repro.index.element_index import StreamFactory
from repro.index.statistics import compute_statistics
from repro.index.term_index import TermIndex, _PostingList
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.labeling.dewey import Dewey
from repro.labeling.extended_dewey import ExtendedDewey
from repro.labeling.region import Region
from repro.ranking.scorer import LotusXScorer
from repro.rewrite.engine import QueryRewriter
from repro.rewrite.rules import default_rules
from repro.summary.paths import format_path
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize
from repro.xmlio.tree import Document

FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_DOCUMENT = "document.xml"
_DATAGUIDE = "dataguide.json"
_CHILD_TABLE = "child_table.json"


class StoreError(RuntimeError):
    """A saved database directory is missing, corrupt, or incompatible."""


# ======================================================================
# Snapshot format
# ======================================================================

SNAPSHOT_MAGIC = b"LXSNAP"
#: Version written by :func:`save_snapshot`.  Version 2 added the
#: optional ``columnar`` section (per-tag label arrays).
SNAPSHOT_VERSION = 2
#: Versions :func:`load_snapshot` accepts.  Version 1 snapshots load
#: fine — they simply have no columnar section, so the database falls
#: back to object streams (and the factory is told not to build columnar
#: views it was never saved with).
SUPPORTED_SNAPSHOT_VERSIONS = frozenset({1, 2})

#: magic(6) + version(2) + flags(2) + header length(4)
_PREFIX = struct.Struct(">6sHHI")
_DIGEST_SIZE = hashlib.sha256().digest_size


class SnapshotError(StoreError):
    """Base class for snapshot load/save failures."""


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot, or its structure cannot be parsed."""


class SnapshotVersionError(SnapshotError):
    """The snapshot uses a format version this build does not support."""


class SnapshotIntegrityError(SnapshotError):
    """The snapshot is truncated or corrupted (checksum mismatch)."""


@dataclass(frozen=True)
class SnapshotInfo:
    """Metadata about a snapshot file (no sections are materialized)."""

    path: str
    version: int
    size_bytes: int
    element_count: int
    path_count: int
    expand_attributes: bool
    section_sizes: dict[str, int]
    sha256: str
    #: Write-path checkpoint position (0 = plain indexed corpus); WAL
    #: records with larger seqnos must be replayed on top of this file.
    seqno: int = 0
    #: Top-level document ids at checkpoint time (``None`` = plain
    #: indexed corpus).  Recovery must adopt these so that replayed
    #: update/delete records resolve against the same namespace.
    document_ids: tuple[str, ...] | None = None


# ----------------------------------------------------------------------
# Restricted unpickling
# ----------------------------------------------------------------------

#: Non-``repro`` globals the section payloads are allowed to reference.
_ALLOWED_GLOBALS = {("collections", "OrderedDict")}


class _SnapshotUnpickler(pickle.Unpickler):
    """Resolves only ``repro.*`` classes (plus a tiny stdlib allowlist).

    Snapshot payloads are trusted once the file digest verifies, but a
    format bug should fail loudly as a snapshot error rather than import
    and execute arbitrary globals.
    """

    def find_class(self, module: str, name: str):
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        if (module, name) in _ALLOWED_GLOBALS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"snapshot payload references disallowed global {module}.{name}"
        )


def _dumps_section(payload) -> bytes:
    return zlib.compress(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), 6
    )


def _loads_section(blob: bytes, name: str):
    try:
        data = zlib.decompress(blob)
        return _SnapshotUnpickler(io.BytesIO(data)).load()
    except (
        zlib.error,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
    ) as exc:
        raise SnapshotFormatError(
            f"snapshot section {name!r} cannot be decoded: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Section codecs
#
# Payloads are plain containers (lists, dicts, tuples, ints, strings)
# wherever object counts are large — unpickling containers runs at C
# speed, while per-object Python callbacks dominate load time at the
# ~100k-object scale of a real corpus.  Small object graphs (the
# document tree, the DataGuide) are pickled as-is.
# ----------------------------------------------------------------------


def _encode_labels(labeled: LabeledDocument) -> dict:
    starts: list[int] = []
    ends: list[int] = []
    levels: list[int] = []
    deweys: list[tuple[int, ...]] = []
    xdeweys: list[tuple[int, ...]] = []
    path_ids: list[int] = []
    parent_orders: list[int] = []
    for le in labeled.elements:
        region = le.region
        starts.append(region.start)
        ends.append(region.end)
        levels.append(region.level)
        deweys.append(le.dewey.components)
        xdeweys.append(le.xdewey.components)
        path_ids.append(le.path_node.node_id)
        parent_orders.append(le.parent.order if le.parent is not None else -1)
    return {
        "starts": starts,
        "ends": ends,
        "levels": levels,
        "deweys": deweys,
        "xdeweys": xdeweys,
        "path_ids": path_ids,
        "parent_orders": parent_orders,
        "guide": labeled.guide,
        "child_table": labeled.child_table,
    }


def _decode_labels(payload: dict, document: Document) -> LabeledDocument:
    guide = payload["guide"]
    starts = payload["starts"]
    ends = payload["ends"]
    levels = payload["levels"]
    deweys = payload["deweys"]
    xdeweys = payload["xdeweys"]
    path_ids = payload["path_ids"]

    tree_elements = list(document.iter())
    if len(tree_elements) != len(starts):
        raise SnapshotFormatError(
            "label store does not match the document tree "
            f"({len(starts)} labels, {len(tree_elements)} elements)"
        )

    # Hot loop over every element: bypass the label constructors (their
    # validation already held when the snapshot was written) and attach
    # components with object.__setattr__, dodging the immutability guard.
    new = object.__new__
    setattr_raw = object.__setattr__
    node_of = guide.node
    elements: list[LabeledElement] = []
    append = elements.append
    for i, element in enumerate(tree_elements):
        dewey = new(Dewey)
        setattr_raw(dewey, "components", deweys[i])
        xdewey = new(ExtendedDewey)
        setattr_raw(xdewey, "components", xdeweys[i])
        append(
            LabeledElement(
                element,
                i,
                Region(starts[i], ends[i], levels[i]),
                dewey,
                xdewey,
                node_of(path_ids[i]),
                None,
            )
        )
    for i, parent_order in enumerate(payload["parent_orders"]):
        if parent_order >= 0:
            elements[i].parent = elements[parent_order]
    return LabeledDocument(document, guide, payload["child_table"], elements)


def _encode_terms(index: TermIndex) -> dict:
    return {
        "postings": {
            term: (plist.orders, plist.tfs)
            for term, plist in index._postings.items()
        },
        "values": index._value_postings,
        "numeric": index._numeric,
        "token_counts": index._token_counts,
        "subtree_end": index._subtree_end,
        "total_tokens": index._total_tokens,
    }


def _decode_terms(payload: dict, labeled: LabeledDocument) -> TermIndex:
    index = object.__new__(TermIndex)
    index._labeled = labeled
    postings: dict[str, _PostingList] = {}
    for term, (orders, tfs) in payload["postings"].items():
        plist = object.__new__(_PostingList)
        plist.orders = orders
        plist.tfs = tfs
        postings[term] = plist
    index._postings = postings
    index._value_postings = payload["values"]
    index._numeric = payload["numeric"]
    index._token_counts = payload["token_counts"]
    index._subtree_end = payload["subtree_end"]
    index._total_tokens = payload["total_tokens"]
    return index


def _encode_completion(index: CompletionIndex) -> dict:
    return {
        "tag": index.tag_trie,
        "global_token": index.global_token_trie,
        "global_value": index.global_value_trie,
        "path_token": index._path_token_tries,
        "path_value": index._path_value_tries,
    }


def _decode_completion(
    payload: dict, labeled: LabeledDocument, term_index: TermIndex
) -> CompletionIndex:
    index = object.__new__(CompletionIndex)
    index._labeled = labeled
    index._term_index = term_index
    index.tag_trie = payload["tag"]
    index.global_token_trie = payload["global_token"]
    index.global_value_trie = payload["global_value"]
    index._path_token_tries = payload["path_token"]
    index._path_value_tries = payload["path_value"]
    return index


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def save_snapshot(
    database: LotusXDatabase,
    path: str | os.PathLike[str],
    seqno: int = 0,
    document_ids: tuple[str, ...] | list[str] | None = None,
) -> SnapshotInfo:
    """Write ``database`` to a single snapshot file at ``path``.

    The write is atomic (temp file + rename), so a crash never leaves a
    half-written snapshot where a valid one was expected.  Returns a
    :class:`SnapshotInfo` describing the file.

    ``seqno`` stamps the write-path checkpoint position: the snapshot
    contains every mutation up to and including that WAL sequence
    number, so recovery replays only newer records.  The default 0 marks
    a plain indexed corpus (replay everything in the WAL).
    ``document_ids`` preserves the writer's top-level id namespace
    across the checkpoint (WAL updates/deletes address documents by id).
    """
    database = database.warm()
    sections: list[tuple[str, bytes]] = [
        ("document", _dumps_section(database.document))
    ]
    if database.labeled.document is not database.document:
        # expand_attributes indexes a shadow tree; persist both so the
        # load restores the pristine/indexed split exactly.
        sections.append(
            ("indexed_document", _dumps_section(database.labeled.document))
        )
    sections.append(("labels", _dumps_section(_encode_labels(database.labeled))))
    sections.append(("terms", _dumps_section(_encode_terms(database.term_index))))
    sections.append(
        ("completion", _dumps_section(_encode_completion(database.completion_index)))
    )
    columnar = database.streams.columnar
    if columnar is not None:
        # Raw per-tag array bytes: loads are a memcpy per column instead
        # of rebuilding the columns from every labeled element.
        sections.append(("columnar", _dumps_section(encode_columnar(columnar))))

    synonyms = database._synonyms
    meta = {
        "element_count": len(database.labeled),
        "path_count": len(database.labeled.guide),
        "expand_attributes": database.expanded_attributes,
        "synonyms": (
            {term: list(alts) for term, alts in synonyms.items()}
            if synonyms
            else None
        ),
        "source_name": database.document.source_name,
        "seqno": int(seqno),
        "document_ids": list(document_ids) if document_ids is not None else None,
        "statistics": compute_statistics(
            database.labeled, database.term_index
        ).as_dict(),
    }

    table = []
    offset = 0
    for name, blob in sections:
        table.append(
            {
                "name": name,
                "offset": offset,
                "length": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
            }
        )
        offset += len(blob)
    header = json.dumps(
        {"sections": table, "meta": meta}, sort_keys=True
    ).encode("utf-8")

    buffer = bytearray()
    buffer += _PREFIX.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0, len(header))
    buffer += header
    for _, blob in sections:
        buffer += blob
    digest = hashlib.sha256(bytes(buffer)).digest()
    buffer += digest

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    try:
        temp.write_bytes(bytes(buffer))
        os.replace(temp, target)
    finally:
        temp.unlink(missing_ok=True)

    return SnapshotInfo(
        path=str(target),
        version=SNAPSHOT_VERSION,
        size_bytes=len(buffer),
        element_count=meta["element_count"],
        path_count=meta["path_count"],
        expand_attributes=meta["expand_attributes"],
        section_sizes={entry["name"]: entry["length"] for entry in table},
        sha256=digest.hex(),
        seqno=int(seqno),
        document_ids=tuple(document_ids) if document_ids is not None else None,
    )


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def _verify_snapshot_bytes(data: bytes, source: str) -> tuple[dict, int, int]:
    """Run the fixed check order (magic → digest → version → header) and
    return ``(header, data_area_offset, version)``."""
    if not data.startswith(SNAPSHOT_MAGIC):
        raise SnapshotFormatError(f"{source}: not a LotusX snapshot file")
    if len(data) < _PREFIX.size + _DIGEST_SIZE:
        raise SnapshotIntegrityError(f"{source}: snapshot is truncated")
    digest = hashlib.sha256(data[:-_DIGEST_SIZE]).digest()
    if digest != data[-_DIGEST_SIZE:]:
        raise SnapshotIntegrityError(
            f"{source}: checksum mismatch — the snapshot is truncated or corrupt"
        )
    _, version, _flags, header_length = _PREFIX.unpack_from(data)
    if version not in SUPPORTED_SNAPSHOT_VERSIONS:
        supported = ", ".join(
            str(v) for v in sorted(SUPPORTED_SNAPSHOT_VERSIONS)
        )
        raise SnapshotVersionError(
            f"{source}: unsupported snapshot version {version} "
            f"(this build reads versions {supported})"
        )
    header_start = _PREFIX.size
    data_start = header_start + header_length
    if data_start > len(data) - _DIGEST_SIZE:
        raise SnapshotFormatError(f"{source}: header overruns the file")
    try:
        header = json.loads(data[header_start:data_start].decode("utf-8"))
        sections = header["sections"]
        header["meta"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SnapshotFormatError(f"{source}: malformed snapshot header: {exc}") from exc
    data_end = len(data) - _DIGEST_SIZE
    for entry in sections:
        try:
            start = data_start + entry["offset"]
            stop = start + entry["length"]
            entry["name"]
        except (KeyError, TypeError) as exc:
            raise SnapshotFormatError(
                f"{source}: malformed section table entry: {exc}"
            ) from exc
        if not (data_start <= start <= stop <= data_end):
            raise SnapshotFormatError(
                f"{source}: section {entry['name']!r} overruns the file"
            )
    return header, data_start, version


def _read_snapshot_file(path: str | os.PathLike[str]) -> bytes:
    try:
        return Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc


def read_snapshot_info(path: str | os.PathLike[str]) -> SnapshotInfo:
    """Verify ``path`` and return its metadata without materializing
    any sections."""
    data = _read_snapshot_file(path)
    header, _, version = _verify_snapshot_bytes(data, str(path))
    meta = header["meta"]
    return SnapshotInfo(
        path=str(path),
        version=version,
        size_bytes=len(data),
        element_count=meta["element_count"],
        path_count=meta["path_count"],
        expand_attributes=bool(meta["expand_attributes"]),
        section_sizes={
            entry["name"]: entry["length"] for entry in header["sections"]
        },
        sha256=data[-_DIGEST_SIZE:].hex(),
        seqno=int(meta.get("seqno", 0)),
        document_ids=(
            tuple(meta["document_ids"])
            if meta.get("document_ids") is not None
            else None
        ),
    )


class _SnapshotReader:
    """Verified snapshot bytes plus the parsed section table."""

    def __init__(self, data: bytes, source: str) -> None:
        header, data_start, version = _verify_snapshot_bytes(data, source)
        self._data = data
        self._source = source
        self._data_start = data_start
        self._sections = {entry["name"]: entry for entry in header["sections"]}
        self.meta = header["meta"]
        self.version = version

    def has(self, name: str) -> bool:
        return name in self._sections

    def payload(self, name: str):
        entry = self._sections.get(name)
        if entry is None:
            raise SnapshotFormatError(
                f"{self._source}: snapshot has no {name!r} section"
            )
        start = self._data_start + entry["offset"]
        blob = self._data[start : start + entry["length"]]
        return _loads_section(blob, name)


class _SnapshotDatabase(LotusXDatabase):
    """A database whose components inflate lazily from a snapshot.

    The snapshot's integrity was fully verified at construction; after
    that each section is decoded at most once, the first time a query
    needs it (thread-safe), or all at once via :meth:`warm`.
    """

    def __init__(
        self,
        reader: _SnapshotReader,
        scorer: LotusXScorer | None,
        synonyms: dict[str, tuple[str, ...]] | None,
        expand_attributes: bool,
    ) -> None:
        # Deliberately no super().__init__ — that path *builds* indexes.
        self._reader = reader
        self._parts: dict[str, object] = {}
        self._inflate_lock = threading.RLock()
        self.expanded_attributes = expand_attributes
        self.scorer = scorer or LotusXScorer()
        self._synonyms = synonyms
        self._init_runtime_caches()

    def _part(self, name: str, build):
        value = self._parts.get(name)
        if value is None:
            with self._inflate_lock:
                value = self._parts.get(name)
                if value is None:
                    value = build()
                    self._parts[name] = value
        return value

    # Data descriptors shadow the attributes the base __init__ would
    # assign; each one decodes its section on first access.

    @property
    def document(self) -> Document:
        return self._part("document", lambda: self._reader.payload("document"))

    @property
    def labeled(self) -> LabeledDocument:
        return self._part("labeled", self._build_labeled)

    def _build_labeled(self) -> LabeledDocument:
        if self._reader.has("indexed_document"):
            tree = self._reader.payload("indexed_document")
        else:
            tree = self.document
        return _decode_labels(self._reader.payload("labels"), tree)

    @property
    def term_index(self) -> TermIndex:
        return self._part(
            "term_index",
            lambda: _decode_terms(self._reader.payload("terms"), self.labeled),
        )

    @property
    def completion_index(self) -> CompletionIndex:
        return self._part(
            "completion_index",
            lambda: _decode_completion(
                self._reader.payload("completion"), self.labeled, self.term_index
            ),
        )

    @property
    def streams(self) -> StreamFactory:
        return self._part("streams", self._build_streams)

    def _build_streams(self) -> StreamFactory:
        if self._reader.has("columnar"):
            try:
                columnar = decode_columnar(
                    self._reader.payload("columnar"), self.labeled
                )
            except ValueError as exc:
                raise SnapshotFormatError(
                    f"snapshot columnar section is inconsistent: {exc}"
                ) from exc
            if columnar is not None:
                return StreamFactory(
                    self.labeled, self.term_index, columnar=columnar
                )
            # The writing platform's array layout doesn't map onto this
            # one: rebuild the columns from the labels instead.
            return StreamFactory(self.labeled, self.term_index)
        # Pre-columnar (v1) snapshot: serve object streams only, exactly
        # what the snapshot was saved with.
        return StreamFactory(self.labeled, self.term_index, build_columnar=False)

    @property
    def autocomplete(self) -> AutocompleteEngine:
        return self._part(
            "autocomplete",
            lambda: AutocompleteEngine(self.labeled.guide, self.completion_index),
        )

    @property
    def rewriter(self) -> QueryRewriter:
        return self._part(
            "rewriter",
            lambda: QueryRewriter(
                default_rules(self.labeled.guide, self._synonyms)
            ),
        )

    def warm(self) -> LotusXDatabase:
        """Materialize every section now; returns ``self``."""
        self.document
        self.labeled
        self.term_index
        self.completion_index
        self.streams
        self.autocomplete
        self.rewriter
        return self

    def __repr__(self) -> str:
        if "labeled" not in self._parts:
            return "LotusXDatabase(snapshot, lazy)"
        return super().__repr__()


def load_snapshot(
    path: str | os.PathLike[str],
    scorer: LotusXScorer | None = None,
    eager: bool = False,
) -> LotusXDatabase:
    """Load a snapshot written by :func:`save_snapshot`.

    The whole file is read and its checksum verified before anything is
    decoded; sections then materialize lazily on first use (pass
    ``eager=True`` — or call :meth:`LotusXDatabase.warm` — to inflate
    everything immediately, e.g. before putting a server into rotation).

    Raises
    ------
    SnapshotFormatError
        Not a snapshot file, or its structure cannot be parsed.
    SnapshotIntegrityError
        Truncated or corrupted file (checksum mismatch).
    SnapshotVersionError
        A format version this build does not support.
    """
    data = _read_snapshot_file(path)
    reader = _SnapshotReader(data, str(path))
    meta = reader.meta
    raw_synonyms = meta.get("synonyms")
    synonyms = (
        {term: tuple(alts) for term, alts in raw_synonyms.items()}
        if raw_synonyms
        else None
    )
    database = _SnapshotDatabase(
        reader, scorer, synonyms, bool(meta.get("expand_attributes", False))
    )
    if eager:
        database.warm()
    return database


# ======================================================================
# Sharded snapshots
# ======================================================================

#: Manifest file name inside a sharded snapshot directory.
SHARD_MANIFEST = "corpus.json"
#: Format marker inside the corpus manifest.
SHARDED_SNAPSHOT_FORMAT = "lotusx-sharded-snapshot"
#: Version written by :func:`save_sharded_snapshot`.
SHARDED_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class ShardedSnapshotInfo:
    """Metadata about a sharded snapshot directory."""

    path: str
    version: int
    shard_count: int
    spine_tag: str
    size_bytes: int
    element_count: int
    #: Per-section byte totals summed across all shard files.
    section_sizes: dict[str, int]
    #: Per-shard file metadata, shard order.
    shards: tuple[SnapshotInfo, ...]


def shard_file_name(index: int) -> str:
    return f"shard-{index:04d}.lxsnap"


def is_sharded_snapshot(path: str | os.PathLike[str]) -> bool:
    """Is ``path`` a sharded snapshot directory (vs a snapshot file)?"""
    target = Path(path)
    return target.is_dir() and (target / SHARD_MANIFEST).is_file()


def save_sharded_snapshot(
    database, directory: str | os.PathLike[str]
) -> ShardedSnapshotInfo:
    """Write a :class:`~repro.shard.database.ShardedDatabase` fleet.

    Layout: a directory holding one ordinary snapshot file per shard
    (each individually checksummed and loadable with
    :func:`load_snapshot`) plus a ``corpus.json`` manifest recording the
    spine tag, every shard's placement spec
    (:meth:`~repro.shard.partitioner.ShardSpec.as_dict`), file name, and
    content hash.  The manifest is written last, so a crash mid-save
    never leaves a directory that passes :func:`is_sharded_snapshot`
    with missing shard files.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    infos: list[SnapshotInfo] = []
    entries: list[dict] = []
    for index, (shard, spec) in enumerate(zip(database.shards, database.specs)):
        name = shard_file_name(index)
        info = save_snapshot(shard, target / name)
        infos.append(info)
        entries.append(
            {
                "file": name,
                "spec": spec.as_dict(),
                "sha256": info.sha256,
                "size_bytes": info.size_bytes,
            }
        )
    manifest = {
        "format": SHARDED_SNAPSHOT_FORMAT,
        "format_version": SHARDED_SNAPSHOT_VERSION,
        "spine_tag": database.spine_tag,
        "shard_count": len(entries),
        "element_count": database.element_count,
        "statistics": database.statistics().as_dict(),
        "shards": entries,
    }
    _write_json(target / SHARD_MANIFEST, manifest)
    section_sizes: dict[str, int] = {}
    for info in infos:
        for name, size in info.section_sizes.items():
            section_sizes[name] = section_sizes.get(name, 0) + size
    return ShardedSnapshotInfo(
        path=str(target),
        version=SHARDED_SNAPSHOT_VERSION,
        shard_count=len(infos),
        spine_tag=database.spine_tag,
        size_bytes=sum(info.size_bytes for info in infos),
        element_count=manifest["element_count"],
        section_sizes=section_sizes,
        shards=tuple(infos),
    )


def read_sharded_snapshot_info(
    path: str | os.PathLike[str],
) -> ShardedSnapshotInfo:
    """Verify a sharded snapshot directory and return its metadata."""
    manifest, entries = _read_shard_manifest(path)
    infos = tuple(
        read_snapshot_info(Path(path) / entry["file"]) for entry in entries
    )
    section_sizes: dict[str, int] = {}
    for info in infos:
        for name, size in info.section_sizes.items():
            section_sizes[name] = section_sizes.get(name, 0) + size
    return ShardedSnapshotInfo(
        path=str(path),
        version=manifest["format_version"],
        shard_count=len(infos),
        spine_tag=manifest["spine_tag"],
        size_bytes=sum(info.size_bytes for info in infos),
        element_count=manifest["element_count"],
        section_sizes=section_sizes,
        shards=infos,
    )


def _read_shard_manifest(path: str | os.PathLike[str]) -> tuple[dict, list[dict]]:
    target = Path(path)
    manifest = _read_json(target / SHARD_MANIFEST)
    if manifest.get("format") != SHARDED_SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"{target}: {SHARD_MANIFEST} is not a sharded snapshot manifest"
        )
    version = manifest.get("format_version")
    if version != SHARDED_SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"{target}: unsupported sharded snapshot version {version!r} "
            f"(this build reads version {SHARDED_SNAPSHOT_VERSION})"
        )
    entries = manifest.get("shards")
    if not isinstance(entries, list) or not entries:
        raise SnapshotFormatError(f"{target}: manifest lists no shards")
    for entry in entries:
        if not isinstance(entry, dict) or "file" not in entry or "spec" not in entry:
            raise SnapshotFormatError(f"{target}: malformed shard entry in manifest")
    return manifest, entries


def load_sharded_snapshot(
    path: str | os.PathLike[str],
    scorer: LotusXScorer | None = None,
    eager: bool = False,
    executor_mode: str = "auto",
    max_workers: int | None = None,
    replicas: int = 1,
    fleet_config=None,
):
    """Load a sharded snapshot directory into a ``ShardedDatabase``.

    Each shard file is verified (checksum) up front, exactly like
    :func:`load_snapshot`; heavy sections still inflate lazily per shard
    (the facade's merged guide and term statistics touch the labels and
    terms sections at construction, but completion tries and columnar
    streams wait for the first query, or ``eager=True``).
    """
    from repro.shard.database import ShardedDatabase
    from repro.shard.partitioner import ShardSpec

    manifest, entries = _read_shard_manifest(path)
    target = Path(path)
    databases = []
    specs = []
    for entry in entries:
        databases.append(load_snapshot(target / entry["file"], scorer, eager))
        specs.append(ShardSpec.from_dict(entry["spec"]))
    synonyms = databases[0]._synonyms if databases else None
    database = ShardedDatabase(
        databases,
        specs,
        source_document=None,
        executor_mode=executor_mode,
        max_workers=max_workers,
        scorer=scorer,
        synonyms=synonyms,
        replicas=replicas,
        fleet_config=fleet_config,
    )
    if eager:
        database.warm()
    return database


# ======================================================================
# Legacy directory store (verified rebuild)
# ======================================================================


def save_database(database: LotusXDatabase, directory: str | os.PathLike[str]) -> None:
    """Write ``database`` to ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    xml_text = serialize(database.document, xml_declaration=True)
    (path / _DOCUMENT).write_text(xml_text, encoding="utf-8")

    guide_entries = [
        {
            "path": format_path(node.path),
            "count": node.count,
            "text_count": node.text_count,
        }
        for node in database.guide.iter_nodes()
    ]
    _write_json(path / _DATAGUIDE, guide_entries)

    child_entries = [
        {"tag": tag, "children": list(children)}
        for tag, children in database.labeled.child_table.items()
    ]
    _write_json(path / _CHILD_TABLE, child_entries)

    manifest = {
        "format_version": FORMAT_VERSION,
        "document_sha256": hashlib.sha256(xml_text.encode("utf-8")).hexdigest(),
        "expand_attributes": database.expanded_attributes,
        "element_count": len(database.labeled),
        "path_count": len(database.guide),
        "statistics": compute_statistics(
            database.labeled, database.term_index
        ).as_dict(),
    }
    _write_json(path / _MANIFEST, manifest)


def load_database(directory: str | os.PathLike[str], **kwargs) -> LotusXDatabase:
    """Load a database saved with :func:`save_database`.

    Raises
    ------
    StoreError
        On a missing/incompatible manifest, checksum mismatch, or any
        inconsistency between stored and rebuilt summaries.
    """
    path = Path(directory)
    manifest = _read_json(path / _MANIFEST)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"unsupported store format {version!r} (expected {FORMAT_VERSION})"
        )

    try:
        xml_text = (path / _DOCUMENT).read_text(encoding="utf-8")
    except OSError as exc:
        raise StoreError(f"cannot read {_DOCUMENT}: {exc}") from exc
    digest = hashlib.sha256(xml_text.encode("utf-8")).hexdigest()
    if digest != manifest.get("document_sha256"):
        raise StoreError("document checksum mismatch — the store is corrupt")

    kwargs.setdefault(
        "expand_attributes", bool(manifest.get("expand_attributes", False))
    )
    database = LotusXDatabase(parse_string(xml_text, source_name=str(path)), **kwargs)

    if len(database.labeled) != manifest.get("element_count"):
        raise StoreError("element count mismatch after rebuild")
    _verify_dataguide(database, _read_json(path / _DATAGUIDE))
    _verify_child_table(database, _read_json(path / _CHILD_TABLE))
    return database


def _verify_dataguide(database: LotusXDatabase, entries: list[dict]) -> None:
    stored = {
        entry["path"]: (entry["count"], entry["text_count"]) for entry in entries
    }
    rebuilt = {
        format_path(node.path): (node.count, node.text_count)
        for node in database.guide.iter_nodes()
    }
    if stored != rebuilt:
        raise StoreError("DataGuide mismatch after rebuild — the store is corrupt")


def _verify_child_table(database: LotusXDatabase, entries: list[dict]) -> None:
    stored = {entry["tag"]: tuple(entry["children"]) for entry in entries}
    rebuilt = dict(database.labeled.child_table.items())
    if stored != rebuilt:
        raise StoreError("child-table mismatch after rebuild — the store is corrupt")


def _write_json(path: Path, payload) -> None:
    path.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")


def _read_json(path: Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise StoreError(f"cannot read {path.name}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt JSON in {path.name}: {exc}") from exc
