"""Merging per-shard answers into globally exact results.

Shard elements keep shard-local ``order`` values, so nothing order-based
is comparable across shards — but their **regions** are in global
coordinates (see :mod:`repro.shard.partitioner`), and ``region.start``
is a strictly monotone bijection of the global preorder.  Every merge
key here therefore uses ``region.start`` where single-database code uses
``order``; the orderings are identical, so merged results reproduce the
monolithic ones byte for byte:

* **twig matches** — concatenate per-shard match lists, de-duplicate on
  the global identity key (only the shared spine-root binding can repeat
  across shards), and sort by the global document-order key;
* **ranked search** — the single-database ranking loop re-run at the
  coordinator with per-shard term views that score with the *global* idf
  (sum of per-shard document frequencies over the summed corpus size);
* **keyword search** — union of the shards' deep answers plus the
  coordinator-resolved root answer, scored via the exact ``_score``
  function of :mod:`repro.keyword.search` against global term
  statistics;
* **autocompletion** — handled by :class:`ShardedCompletionIndex`
  (frequency-summed trie merges) driven by the merged DataGuide.

Per-shard xpaths are also corrected here: an element's depth-1 ancestor
ordinal is shard-local (each shard holds a slice of the root's
children), so :func:`element_xpath_sharded` adds the per-tag unit count
of all earlier shards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine.database import LotusXDatabase
from repro.engine.results import SearchResult, element_xpath
from repro.index.term_index import TermIndex
from repro.keyword.search import KeywordHit
from repro.labeling.assign import LabeledElement
from repro.shard.partitioner import ShardSpec
from repro.summary.dataguide import DataGuide
from repro.twig.match import Match


class ShardMatch(Match):
    """A match produced by one shard, tagged with its origin."""

    __slots__ = ("shard",)

    def __init__(self, assignments, shard: int) -> None:
        super().__init__(assignments)
        self.shard = shard


def global_match_key(match: Match) -> tuple[tuple[int, int], ...]:
    """Cross-shard identity: sorted ``(node_id, region.start)`` pairs."""
    return tuple(
        sorted((nid, el.region.start) for nid, el in match.assignments.items())
    )


def global_order_key(match: Match) -> tuple[int, ...]:
    """Global document-order sort key (the ``order_key`` twin)."""
    return tuple(
        match.assignments[nid].region.start for nid in sorted(match.assignments)
    )


def matches_from_wire(
    database: LotusXDatabase, shard_index: int, wire_matches: list
) -> list[ShardMatch]:
    """Rebuild matches from the executor's ``(node_id, order)`` pairs."""
    elements = database.labeled.elements
    return [
        ShardMatch(
            {node_id: elements[order] for node_id, order in pairs}, shard_index
        )
        for pairs in wire_matches
    ]


def merge_match_lists(per_shard: list[list[Match]]) -> list[Match]:
    """Concatenate, de-duplicate on global identity, sort globally.

    Duplicates occur only when the pattern binds nothing but the
    replicated spine root (every shard reports the same binding); the
    dedup is keyed on the global identity so exactly one survives.
    """
    merged: dict[tuple, Match] = {}
    for matches in per_shard:
        for match in matches:
            merged.setdefault(global_match_key(match), match)
    return sorted(merged.values(), key=global_order_key)


# ----------------------------------------------------------------------
# Global term statistics
# ----------------------------------------------------------------------


class GlobalTermStats:
    """Corpus-wide idf / tf aggregates over the shard term indexes.

    Shard postings partition the corpus's text elements (the root's
    direct text is indexed by shard 0 only), so document frequencies and
    text-element counts are plain sums — giving exactly the numbers the
    monolithic :class:`~repro.index.term_index.TermIndex` would hold.
    """

    def __init__(self, term_indexes: list[TermIndex]) -> None:
        self._indexes = term_indexes
        self._n = max(
            1, sum(index.text_element_count for index in term_indexes)
        )
        self._idf_cache: dict[str, float] = {}
        self._total_cache: dict[str, int] = {}

    def idf(self, term: str) -> float:
        cached = self._idf_cache.get(term)
        if cached is None:
            df = sum(index.document_frequency(term) for index in self._indexes)
            cached = math.log(1.0 + self._n / (1.0 + df))
            self._idf_cache[term] = cached
        return cached

    def term_total(self, term: str) -> int:
        """Total corpus-wide term frequency (the root's subtree tf)."""
        cached = self._total_cache.get(term)
        if cached is None:
            cached = sum(
                sum(posting.tf for posting in index.postings(term))
                for index in self._indexes
            )
            self._total_cache[term] = cached
        return cached


class GlobalTermView:
    """A shard's term index scored with corpus-wide idf.

    Subtree term frequencies are exact shard-locally (a non-root
    element's subtree never crosses a shard boundary), so only ``idf``
    needs the global view.  Quacks enough like a ``TermIndex`` for
    :func:`repro.ranking.tfidf.text_score` and
    :func:`repro.keyword.search._score`.
    """

    __slots__ = ("_local", "_stats")

    def __init__(self, local: TermIndex, stats: GlobalTermStats) -> None:
        self._local = local
        self._stats = stats

    def idf(self, term: str) -> float:
        return self._stats.idf(term)

    def subtree_term_frequency(self, element: LabeledElement, term: str) -> int:
        return self._local.subtree_term_frequency(element, term)


class RootTermView:
    """Term view for the replicated corpus root.

    A shard's replica only sees its own slice, so the root's subtree
    term frequency is the corpus-wide total instead.
    """

    __slots__ = ("_stats",)

    def __init__(self, stats: GlobalTermStats) -> None:
        self._stats = stats

    def idf(self, term: str) -> float:
        return self._stats.idf(term)

    def subtree_term_frequency(self, element: LabeledElement, term: str) -> int:
        return self._stats.term_total(term)


# ----------------------------------------------------------------------
# Shard-corrected xpaths
# ----------------------------------------------------------------------


def element_xpath_sharded(
    element: LabeledElement, ordinal_offsets: dict[str, int]
) -> str:
    """:func:`element_xpath` with globally correct depth-1 ordinals.

    Only the root's direct children need correction: their same-tag
    sibling ordinal is counted within the shard, so the number of
    same-tag units in earlier shards is added.  Deeper ordinals are
    counted inside a single (shard-complete) subtree and are exact.
    """
    if not ordinal_offsets:
        return element_xpath(element)
    steps: list[str] = []
    current: LabeledElement | None = element
    while current is not None:
        parent = current.parent
        if parent is None:
            steps.append(f"/{current.tag}[1]")
        elif current.tag.startswith("@"):
            steps.append(f"/{current.tag}")
        else:
            ordinal = 0
            for sibling in parent.element.child_elements():
                if sibling.tag == current.tag:
                    ordinal += 1
                if sibling is current.element:
                    break
            if parent.parent is None:
                ordinal += ordinal_offsets.get(current.tag, 0)
            steps.append(f"/{current.tag}[{ordinal}]")
        current = parent
    return "".join(reversed(steps))


@dataclass(frozen=True, slots=True)
class ShardSearchResult(SearchResult):
    """A search hit whose xpath is corrected to global ordinals."""

    ordinal_offsets: dict[str, int] = field(default_factory=dict)

    @property
    def xpath(self) -> str:
        return element_xpath_sharded(self.primary, self.ordinal_offsets)


@dataclass(frozen=True, slots=True)
class ShardKeywordHit(KeywordHit):
    """A keyword hit whose xpath is corrected to global ordinals.

    ``snippet_text`` overrides the element-local preview: a hit on the
    corpus root names a *replica* element whose subtree holds only one
    shard's children, so the coordinator supplies the corpus-wide text.
    """

    ordinal_offsets: dict[str, int] = field(default_factory=dict)
    snippet_text: str | None = None

    def as_dict(self) -> dict:
        from repro.engine.results import make_snippet, snippet_from_text

        return {
            "xpath": element_xpath_sharded(self.element, self.ordinal_offsets),
            "tag": self.element.tag,
            "snippet": (
                make_snippet(self.element)
                if self.snippet_text is None
                else snippet_from_text(self.snippet_text)
            ),
            "score": round(self.score, 4),
            "text_score": round(self.text_score, 4),
            "specificity": round(self.specificity, 4),
        }


# ----------------------------------------------------------------------
# Merged structural summaries
# ----------------------------------------------------------------------


def merge_guides(databases: list[LotusXDatabase], spine_tag: str) -> DataGuide:
    """One corpus-wide DataGuide from the per-shard guides.

    Path sets union and counts add; the spine root path is counted once
    per shard (every shard carries a replica), so its count is corrected
    back to 1.  The merged guide is exactly the monolithic one up to
    node-id assignment order, which nothing downstream depends on.
    """
    guide = DataGuide()
    for database in databases:
        for node in database.labeled.guide.iter_nodes():
            guide.add_path(node.path, node.count, node.text_count)
    root_node = guide.node_for_path((spine_tag,))
    if root_node is not None and len(databases) > 1:
        root_node.count -= len(databases) - 1
    return guide


def merge_statistics(databases: list[LotusXDatabase], guide: DataGuide) -> dict:
    """Aggregates for :class:`~repro.index.statistics.CorpusStatistics`.

    Every sum is corrected for the ``n - 1`` extra root replicas; term
    and value vocabularies union; depth maxima max.
    """
    replicas = max(0, len(databases) - 1)
    element_count = (
        sum(len(db.labeled) for db in databases) - replicas
    )
    depth_total = 0.0
    max_depth = 0
    for db in databases:
        levels = [element.level + 1 for element in db.labeled.elements]
        depth_total += sum(levels)
        max_depth = max(max_depth, max(levels, default=0))
    depth_total -= replicas  # each replica root contributed depth 1
    terms: set[str] = set()
    values: set[str] = set()
    total_tokens = 0
    text_elements = 0
    tags: set[str] = set()
    for db in databases:
        terms.update(db.term_index.vocabulary())
        values.update(db.term_index.values())
        total_tokens += db.term_index.total_tokens
        text_elements += db.term_index.text_element_count
        tags.update(db.labeled.tags())
    return {
        "element_count": element_count,
        "distinct_tags": len(tags),
        "distinct_paths": len(guide),
        "max_depth": max_depth,
        "average_depth": depth_total / element_count if element_count else 0.0,
        "text_element_count": text_elements,
        "distinct_terms": len(terms),
        "total_tokens": total_tokens,
        "distinct_values": len(values),
    }


# ----------------------------------------------------------------------
# Merged completion index
# ----------------------------------------------------------------------


class ShardedCompletionIndex:
    """A :class:`~repro.index.completion_index.CompletionIndex` facade
    over the per-shard tries, exact under frequency summing.

    Positions arrive as *merged-guide* path node ids; each is translated
    to the corresponding shard path ids (same path tuple).  For each
    path, the shards' per-path tries are fully enumerated and summed —
    giving exactly the per-path counts of the monolithic trie — then the
    monolithic pipeline is reproduced: per-path top-k, frequency-summed
    union across paths, final ``(-count, text)`` rank.
    """

    def __init__(
        self,
        databases: list[LotusXDatabase],
        merged_guide: DataGuide,
        spine_tag: str,
    ) -> None:
        self._databases = databases
        self._merged_guide = merged_guide
        self._spine_tag = spine_tag
        # merged path id -> per-shard path id (or None when the shard
        # has no elements at that path).
        self._path_maps: dict[int, list[int | None]] = {}
        for node in merged_guide.iter_nodes():
            per_shard: list[int | None] = []
            for database in databases:
                shard_node = database.labeled.guide.node_for_path(node.path)
                per_shard.append(
                    shard_node.node_id if shard_node is not None else None
                )
            self._path_maps[node.node_id] = per_shard

    # -- helpers -------------------------------------------------------

    def _combined_path_counts(
        self, path_id: int, prefix: str, kind: str
    ) -> dict[str, int]:
        """Exact summed counts of one merged path's value/token trie."""
        combined: dict[str, int] = {}
        shard_ids = self._path_maps.get(path_id)
        if shard_ids is None:
            return combined
        for database, shard_path_id in zip(self._databases, shard_ids):
            if shard_path_id is None:
                continue
            completion = database.completion_index
            tries = (
                completion._path_value_tries
                if kind == "value"
                else completion._path_token_tries
            )
            trie = tries.get(shard_path_id)
            if trie is None:
                continue
            for key, weight in trie.iter_prefix(prefix):
                combined[key] = combined.get(key, 0) + weight
        return combined

    def _complete_at(
        self, path_ids, prefix: str, k: int, kind: str
    ) -> list[tuple[str, int]]:
        normalized = prefix.lower()
        merged: dict[str, int] = {}
        for path_id in path_ids:
            counts = self._combined_path_counts(path_id, normalized, kind)
            top = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
            for key, weight in top[:k]:
                merged[key] = merged.get(key, 0) + weight
        ranked = sorted(merged.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    # -- CompletionIndex API -------------------------------------------

    def complete_value_at(
        self, path_ids, prefix: str, k: int = 10
    ) -> list[tuple[str, int]]:
        return self._complete_at(path_ids, prefix, k, "value")

    def complete_token_at(
        self, path_ids, prefix: str, k: int = 10
    ) -> list[tuple[str, int]]:
        return self._complete_at(path_ids, prefix, k, "token")

    def path_has_values(self, path_id: int) -> bool:
        shard_ids = self._path_maps.get(path_id)
        if shard_ids is None:
            return False
        for database, shard_path_id in zip(self._databases, shard_ids):
            if shard_path_id is None:
                continue
            if database.completion_index.path_has_values(shard_path_id):
                return True
        return False

    def complete_tag(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        """Position-blind tag completion from the merged guide counts."""
        normalized = prefix.lower()
        pool = [
            (tag, self._merged_guide.tag_count(tag))
            for tag in self._merged_guide.all_tags()
            if tag.startswith(normalized)
        ]
        ranked = sorted(pool, key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def _global_counts(self, prefix: str, attribute: str) -> dict[str, int]:
        combined: dict[str, int] = {}
        for database in self._databases:
            trie = getattr(database.completion_index, attribute)
            for key, weight in trie.iter_prefix(prefix):
                combined[key] = combined.get(key, 0) + weight
        return combined

    def complete_value_global(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        counts = self._global_counts(prefix.lower(), "global_value_trie")
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def complete_token_global(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        counts = self._global_counts(prefix.lower(), "global_token_trie")
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]


def ordinal_offsets_for(spec: ShardSpec) -> dict[str, int]:
    """The xpath depth-1 correction map for a shard (empty for shard 0)."""
    return dict(spec.child_ordinal_offsets)
