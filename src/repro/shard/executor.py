"""Scatter-gather execution of per-shard work.

Three dispatch modes, selectable per :class:`ShardExecutor` or resolved
per query in ``"auto"`` mode:

* ``"serial"`` — run every shard task inline (deterministic; the
  default for tests and the fallback when only one shard is dispatched);
* ``"thread"`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (cheap dispatch; right for warm columnar paths where the per-shard
  work is small);
* ``"process"`` — a fork-based
  :class:`~concurrent.futures.ProcessPoolExecutor` (true parallelism for
  cold/heavy queries; workers inherit the shard databases copy-on-write
  through the module-level registry populated *before* the pool forks).

``"auto"`` sends a pattern's first evaluation (cold: streams must be
built, the per-shard work dominates) to the process pool and later
evaluations (warm: the forked workers hold compiled plans) to threads.

The wire protocol is deliberately tiny: workers return shard-local
``(node_id, order)`` pairs, never :class:`Match` objects — the parent
holds its own reference to every shard database and rebuilds matches by
indexing ``labeled.elements`` (orders are shard-local and dense).
Deadlines never cross the process boundary either; each worker gets a
remaining-milliseconds budget and builds its own
:class:`~repro.resilience.deadline.Deadline`.  A shard that trips its
budget returns whatever partial matches it salvaged plus a ``tripped``
flag instead of raising, so a straggler costs its own results only.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import uuid
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.engine.database import LotusXDatabase
from repro.keyword.elca import find_elcas
from repro.keyword.slca import find_slcas
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded, ShardsUnavailable
from repro.resilience.faults import fault_point
from repro.twig.algorithms.common import AlgorithmStats
from repro.twig.pattern import TwigPattern
from repro.twig.planner import Algorithm

#: Fleets visible to forked workers, keyed by executor id.  Populated
#: before the process pool is created so the fork inherits it.
_SHARD_REGISTRY: dict[str, list[LotusXDatabase]] = {}


class ShardOutcome:
    """One shard's answer to a scattered task.

    ``tripped`` marks budget exhaustion (partial answers salvaged);
    ``failed`` marks a shard whose evaluation *broke* — the worker
    raised, the pool worker died, or (with a replica fleet) every
    replica of the group was down.  A failed shard contributes nothing
    to the merge; the coordinator surfaces it as a degraded response
    instead of failing the whole scatter.
    """

    __slots__ = ("shard_index", "payload", "tripped", "failed", "error")

    def __init__(
        self,
        shard_index: int,
        payload: dict,
        tripped: bool,
        failed: bool = False,
        error: str = "",
    ) -> None:
        self.shard_index = shard_index
        self.payload = payload
        self.tripped = tripped
        self.failed = failed
        self.error = error


def _shard_deadline(budget_ms: float | None) -> Deadline | None:
    return None if budget_ms is None else Deadline.after_ms(budget_ms)


def _worker_site(payload: dict) -> str:
    """Per-shard fault site fired at worker-task entry (any mode)."""
    return f"shard.worker.{payload.get('shard_index', '?')}"


def _empty_payload(kind: str, tripped: bool = False) -> dict:
    """A well-formed zero-answer wire result for ``kind``."""
    if kind == "keyword":
        return {"orders": [], "free": [], "truncated": tripped}
    return {"matches": [], "tripped": tripped}


def _matches_task(database: LotusXDatabase, payload: dict) -> dict:
    """Evaluate a twig pattern on one shard; compact wire result."""
    deadline = _shard_deadline(payload.get("budget_ms"))
    fault_point(_worker_site(payload), deadline)
    pattern: TwigPattern = payload["pattern"]
    algorithm = Algorithm(payload["algorithm"])
    stats = AlgorithmStats() if payload.get("collect_stats") else None
    tripped = False
    try:
        matches = database._evaluate(
            pattern, algorithm, stats, payload["prune_streams"], deadline
        )
    except DeadlineExceeded as exc:
        matches = exc.partial or []
        tripped = True
    wire_matches = [
        [(node_id, element.order) for node_id, element in match.assignments.items()]
        for match in matches
    ]
    result: dict = {"matches": wire_matches, "tripped": tripped}
    if stats is not None:
        result["stats"] = {
            "elements_scanned": stats.elements_scanned,
            "intermediate_results": stats.intermediate_results,
            "matches": stats.matches,
            "notes": dict(stats.notes),
        }
    return result


def _keyword_task(database: LotusXDatabase, payload: dict) -> dict:
    """SLCA/ELCA answers for one shard plus the root-witness term bits.

    ``free`` lists the query terms that have at least one occurrence
    whose lowest qualifying ancestor is the (replica) root — i.e. an
    occurrence outside every top-level unit that contains a deep SLCA.
    The coordinator ORs these bits across shards to decide whether the
    corpus root is a global ELCA.
    """
    deadline = _shard_deadline(payload.get("budget_ms"))
    fault_point(_worker_site(payload), deadline)
    terms = tuple(payload["terms"])
    semantics = payload["semantics"]
    labeled = database.labeled
    term_index = database.term_index
    truncated = False
    finder = find_elcas if semantics == "elca" else find_slcas
    try:
        answers = finder(labeled, term_index, terms, deadline)
    except DeadlineExceeded as exc:
        answers = exc.partial or []
        truncated = True
    free: list[str] = []
    if semantics == "elca":
        if truncated:
            slcas = [a for a in answers if a.order != 0]
        else:
            try:
                slcas = find_slcas(labeled, term_index, terms, deadline)
            except DeadlineExceeded as exc:
                slcas = exc.partial or []
                truncated = True
        # Order ranges of the top-level units that contain a deep SLCA:
        # occurrences inside them have a qualifying ancestor below the
        # root; occurrences outside witness the root itself.
        ranges: list[tuple[int, int]] = []
        for element in slcas:
            if element.order == 0:
                continue
            unit = element
            while unit.parent is not None and unit.parent.order != 0:
                unit = unit.parent
            ranges.append(term_index.subtree_order_range(unit))
        ranges.sort()
        lowered = [term.lower() for term in dict.fromkeys(terms)]
        for term in lowered:
            postings = term_index.postings(term)
            if _any_outside(postings, ranges):
                free.append(term)
    return {
        "orders": [element.order for element in answers],
        "free": free,
        "truncated": truncated,
    }


def _any_outside(postings, ranges: list[tuple[int, int]]) -> bool:
    """Does any posting's order fall outside every ``(low, high)`` range?

    Ranges are sorted, disjoint subtree order ranges (half-open on the
    high end, matching ``subtree_order_range``).
    """
    if not ranges:
        return bool(postings)
    index = 0
    for posting in postings:
        order = posting.order
        while index < len(ranges) and ranges[index][1] <= order:
            index += 1
        if index >= len(ranges) or order < ranges[index][0]:
            return True
    return False


_TASKS = {
    "matches": _matches_task,
    "keyword": _keyword_task,
}


def _process_entry(registry_key: str, shard_index: int, kind: str, payload: dict) -> dict:
    """Top-level worker entry point (importable, hence picklable)."""
    fleet = _SHARD_REGISTRY.get(registry_key)
    if fleet is None:
        raise RuntimeError(
            f"shard fleet {registry_key!r} not present in worker process"
        )
    return _TASKS[kind](fleet[shard_index], payload)


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - platform probing
        return False


class ShardExecutor:
    """Scatters tasks over a shard fleet and gathers the outcomes."""

    #: Recognized dispatch modes.
    MODES = ("auto", "serial", "thread", "process")

    def __init__(
        self,
        databases: list[LotusXDatabase],
        mode: str = "auto",
        max_workers: int | None = None,
        fleet=None,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown executor mode: {mode!r}")
        self._databases = databases
        self._mode = mode
        self._max_workers = max_workers or min(
            len(databases), max(1, (os.cpu_count() or 2))
        )
        self._registry_key = uuid.uuid4().hex
        _SHARD_REGISTRY[self._registry_key] = databases
        self._lock = threading.Lock()
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._warm_signatures: set = set()
        self._closed = False
        #: Optional :class:`~repro.fleet.fleet.ReplicaFleet` — when set,
        #: every per-shard sub-request goes through its resilience
        #: pipeline (replica selection, retries, hedging, breakers)
        #: instead of hitting the shard database directly.  Fleet state
        #: lives in this process, so fleet dispatch never uses the
        #: process pool (``"process"``/cold-``"auto"`` fall back to
        #: threads).
        self._fleet = fleet

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def fleet(self):
        return self._fleet

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down pools and drop the fleet from the fork registry.

        Idempotent and safe at any point — pools are torn down with
        ``cancel_futures=True`` so a tripped or abandoned scatter-gather
        cannot leak worker threads/processes, and any pool created
        concurrently with the close is shut down rather than leaked
        (``_ensure_*`` refuses to build pools once closed).
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
            thread_pool, self._thread_pool = self._thread_pool, None
            process_pool, self._process_pool = self._process_pool, None
        if thread_pool is not None:
            thread_pool.shutdown(wait=False, cancel_futures=True)
        if process_pool is not None:
            process_pool.shutdown(wait=False, cancel_futures=True)
        if not already_closed:
            _SHARD_REGISTRY.pop(self._registry_key, None)

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(
        self,
        shard_indices: list[int],
        kind: str,
        payload: dict,
        deadline: Deadline | None = None,
        signature=None,
    ) -> list[ShardOutcome]:
        """Run ``kind`` with ``payload`` on every listed shard.

        Every shard receives the parent's *remaining* budget — shards run
        concurrently, so each may use the full residue — and outcomes
        come back in shard order.  ``signature`` (a pattern signature)
        feeds the cold/warm routing of ``"auto"`` mode.

        Failure containment: a shard whose evaluation raises (worker
        exception, killed pool worker) comes back as a *failed* outcome
        with an empty payload rather than propagating — except
        :class:`DeadlineExceeded`, which marks the shard tripped (an
        answer, just truncated).  The coordinator decides whether failed
        shards degrade or reject the response.
        """
        if self._closed:
            raise RuntimeError("ShardExecutor is closed")
        budget_ms = None
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining is not None:
                budget_ms = max(0.0, remaining * 1000.0)
        payloads = {}
        for index in shard_indices:
            shard_payload = dict(payload)
            shard_payload["shard_index"] = index
            if budget_ms is not None:
                shard_payload["budget_ms"] = budget_ms
            payloads[index] = shard_payload
        if self._fleet is not None:
            return [
                self._fleet_call(index, kind, payloads[index], deadline)
                for index in shard_indices
            ]
        mode = self._resolve_mode(shard_indices, signature)
        if mode == "serial":
            return [
                self._guarded_local(index, kind, payloads[index])
                for index in shard_indices
            ]
        if mode == "thread":
            pool = self._ensure_thread_pool()
            futures = [
                pool.submit(self._guarded_local, index, kind, payloads[index])
                for index in shard_indices
            ]
            return [future.result() for future in futures]
        return self._run_process(shard_indices, kind, payloads)

    def _run_process(
        self, shard_indices: list[int], kind: str, payloads: dict
    ) -> list[ShardOutcome]:
        pool = self._ensure_process_pool()
        futures = [
            pool.submit(
                _process_entry, self._registry_key, index, kind, payloads[index]
            )
            for index in shard_indices
        ]
        outcomes = []
        broken = False
        for index, future in zip(shard_indices, futures):
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                broken = True
                outcomes.append(
                    ShardOutcome(
                        index,
                        _empty_payload(kind),
                        tripped=False,
                        failed=True,
                        error=f"process pool broken: {exc}",
                    )
                )
                continue
            except Exception as exc:
                outcomes.append(
                    ShardOutcome(
                        index,
                        _empty_payload(kind),
                        tripped=False,
                        failed=True,
                        error=str(exc) or type(exc).__name__,
                    )
                )
                continue
            outcomes.append(
                ShardOutcome(
                    index,
                    result,
                    bool(result.get("tripped") or result.get("truncated")),
                )
            )
        if broken:
            # A killed worker poisons the whole fork pool.  Drop it so
            # the next run builds a fresh one (self-heal) instead of
            # failing every future scatter.
            with self._lock:
                dead, self._process_pool = self._process_pool, None
            if dead is not None:
                dead.shutdown(wait=False, cancel_futures=True)
        return outcomes

    def _guarded_local(
        self, shard_index: int, kind: str, payload: dict
    ) -> ShardOutcome:
        """Run one shard task inline, containing non-deadline failures."""
        try:
            result = _TASKS[kind](self._databases[shard_index], payload)
        except DeadlineExceeded:
            return ShardOutcome(
                shard_index, _empty_payload(kind, tripped=True), tripped=True
            )
        except Exception as exc:
            return ShardOutcome(
                shard_index,
                _empty_payload(kind),
                tripped=False,
                failed=True,
                error=str(exc) or type(exc).__name__,
            )
        return ShardOutcome(
            shard_index,
            result,
            bool(result.get("tripped") or result.get("truncated")),
        )

    def _fleet_call(
        self, shard_index: int, kind: str, payload: dict, deadline: Deadline | None
    ) -> ShardOutcome:
        """Route one shard task through the replica fleet.

        The task closure recomputes the shard budget from the *live*
        deadline at execution time — a retry or hedge leg that starts
        late must not inherit the budget computed when the scatter began.
        """

        def task(database: LotusXDatabase) -> dict:
            shard_payload = dict(payload)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    shard_payload["budget_ms"] = max(0.0, remaining * 1000.0)
            return _TASKS[kind](database, shard_payload)

        try:
            result = self._fleet.call(shard_index, task, deadline)
        except ShardsUnavailable as exc:
            return ShardOutcome(
                shard_index,
                _empty_payload(kind),
                tripped=False,
                failed=True,
                error=str(exc),
            )
        except DeadlineExceeded:
            return ShardOutcome(
                shard_index, _empty_payload(kind, tripped=True), tripped=True
            )
        return ShardOutcome(
            shard_index,
            result,
            bool(result.get("tripped") or result.get("truncated")),
        )

    def _resolve_mode(self, shard_indices: list[int], signature) -> str:
        if self._mode == "serial" or len(shard_indices) <= 1:
            return "serial"
        if self._mode in ("thread", "process"):
            if self._mode == "process" and not _fork_available():
                return "thread"
            return self._mode
        # auto: first sighting of a pattern is cold work (streams must be
        # built) -> processes; repeat sightings hit warm per-shard plans
        # where dispatch overhead dominates -> threads.
        if signature is None or not _fork_available():
            return "thread"
        with self._lock:
            warm = signature in self._warm_signatures
            self._warm_signatures.add(signature)
        return "thread" if warm else "process"

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardExecutor is closed")
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="lotusx-shard",
                )
            return self._thread_pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardExecutor is closed")
            if self._process_pool is None:
                context = multiprocessing.get_context("fork")
                self._process_pool = ProcessPoolExecutor(
                    max_workers=self._max_workers, mp_context=context
                )
            return self._process_pool
