"""Shard routing: prune shards that provably cannot contain a match.

Every shard keeps cheap summaries — its tag set (from the DataGuide) and
its term/value vocabularies (from the term index).  Before a query is
scattered, the router derives the query's *required* evidence and drops
every shard missing any piece of it:

* a required (non-optional) twig node with a concrete tag needs that tag
  in the shard (the replicated spine root's tag is present everywhere,
  so spine-tag nodes never prune — which is exactly right, since the
  replica exists in every shard);
* a positive ``ContainsPredicate`` on a required node needs all its
  terms in the shard (an element's subtree is entirely shard-local);
* an ``EqualsPredicate`` on a required node needs the normalized value
  in the shard.

For keyword queries a shard can only produce *deep* (below-root)
answers when it contains **all** terms, so full dispatch goes to those
shards only; per-term presence of the pruned shards still feeds the
coordinator's root-answer resolution and global idf without any
dispatch.

These are necessary conditions — pruning is sound (never drops a shard
that could answer) but not complete.  Counters are kept under a lock and
surface through ``/api/stats``.
"""

from __future__ import annotations

import threading

from repro.engine.database import LotusXDatabase
from repro.twig.pattern import (
    ContainsPredicate,
    EqualsPredicate,
    QueryNode,
    TwigPattern,
)


def spine_safe(pattern: TwigPattern, spine_tag: str) -> bool:
    """Can ``pattern`` be answered exactly by per-shard evaluation?

    Only the pattern's root can ever bind the corpus root (any other
    node would need an ancestor above it).  A root binding the spine is
    replicated per shard, where it sees only that shard's subtree — so a
    pattern is unsafe exactly when such a binding could carry
    *cross-shard* obligations: a predicate on the root (its evidence may
    be spread over several shards), two or more root branches (each
    could bind in a different shard), or an optional root branch (its
    presence may differ per shard).  A root-only or single-branch
    binding is complete within one shard, and duplicates of the shared
    spine binding are removed by the merger's global-identity dedup.
    """
    root = pattern.root
    if not root.accepts_tag(spine_tag):
        return True
    if root.predicate is not None:
        return False
    if len(root.children) >= 2:
        return False
    return not any(child.optional for child in root.children)


class ShardRouter:
    """Routes queries to the shards that could answer them."""

    def __init__(self, databases: list[LotusXDatabase], spine_tag: str) -> None:
        self._databases = databases
        self._spine_tag = spine_tag
        self._tag_sets = [set(db.labeled.tags()) for db in databases]
        self._lock = threading.Lock()
        self._counters = {
            "pattern_queries": 0,
            "keyword_queries": 0,
            "pruned_queries": 0,
            "shards_pruned": 0,
            "fallback_queries": 0,
        }

    @property
    def shard_count(self) -> int:
        return len(self._databases)

    # ------------------------------------------------------------------
    # Twig routing
    # ------------------------------------------------------------------

    def route_pattern(self, pattern: TwigPattern) -> list[int]:
        """Shard indices that could contain a match for ``pattern``."""
        requirements = self._pattern_requirements(pattern)
        dispatch = [
            index
            for index in range(len(self._databases))
            if self._shard_feasible(index, requirements)
        ]
        self._note("pattern_queries", dispatch)
        return dispatch

    def _pattern_requirements(
        self, pattern: TwigPattern
    ) -> tuple[set[str], set[str], set[str]]:
        """(required tags, required terms, required values) of a pattern.

        Only nodes on fully required branches contribute: an optional
        node (or any node below one) may simply stay unbound, so its
        absence from a shard never rules the shard out.
        """
        tags: set[str] = set()
        terms: set[str] = set()
        values: set[str] = set()

        def visit(node: QueryNode) -> None:
            if node.optional:
                return
            if node.tag is not None:
                tags.add(node.tag)
            predicate = node.predicate
            if isinstance(predicate, ContainsPredicate):
                terms.update(term.lower() for term in predicate.terms())
            elif isinstance(predicate, EqualsPredicate):
                # EqualsPredicate normalizes its value at construction.
                values.add(predicate.value)
            for child in node.children:
                visit(child)

        visit(pattern.root)
        return tags, terms, values

    def _shard_feasible(
        self, index: int, requirements: tuple[set[str], set[str], set[str]]
    ) -> bool:
        tags, terms, values = requirements
        tag_set = self._tag_sets[index]
        if any(tag not in tag_set for tag in tags):
            return False
        term_index = self._databases[index].term_index
        if any(term_index.document_frequency(term) == 0 for term in terms):
            return False
        return all(term_index.value_count(value) > 0 for value in values)

    # ------------------------------------------------------------------
    # Keyword routing
    # ------------------------------------------------------------------

    def route_terms(self, terms: tuple[str, ...]) -> tuple[list[int], list[dict]]:
        """(full-dispatch shard indices, per-shard term presence).

        Deep (below-root) answers require every term inside the shard,
        so only shards containing all terms are dispatched.  The
        presence maps cover *all* shards: the coordinator uses them to
        resolve the root answer and the global idf without touching the
        pruned shards.
        """
        lowered = [term.lower() for term in dict.fromkeys(terms)]
        presence: list[dict] = []
        dispatch: list[int] = []
        for index, database in enumerate(self._databases):
            term_index = database.term_index
            shard_presence = {
                term: term_index.document_frequency(term) > 0 for term in lowered
            }
            presence.append(shard_presence)
            if all(shard_presence.values()):
                dispatch.append(index)
        self._note("keyword_queries", dispatch)
        return dispatch, presence

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def note_fallback(self) -> None:
        with self._lock:
            self._counters["fallback_queries"] += 1

    def _note(self, kind: str, dispatch: list[int]) -> None:
        pruned = len(self._databases) - len(dispatch)
        with self._lock:
            self._counters[kind] += 1
            if pruned:
                self._counters["pruned_queries"] += 1
                self._counters["shards_pruned"] += pruned

    def statistics(self) -> dict:
        with self._lock:
            return dict(self._counters)
