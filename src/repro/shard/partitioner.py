"""Corpus partitioning: split one document into N label-compatible shards.

A multi-document corpus (or one huge document) is split by its
**top-level subtrees**: every direct child element of the root — a
"unit" — is assigned, contiguously and greedily balanced by subtree
element count, to one of N shards.  Each shard becomes a full,
self-contained :class:`~repro.engine.database.LotusXDatabase` (own
labels, term index, columnar streams, completion tries) over a fresh
document consisting of a **replica of the root** plus the shard's units.

The trick that makes scatter-gather merging exact is the *region shift*:
shard-local preorder ``order`` values stay dense (``0..n_local-1``, so
every index keyed by order — term postings, ``_subtree_end``, columnar
columns — works unchanged), but every element's containment
:class:`~repro.labeling.region.Region` is translated into **global
coordinates**: shard *i* adds ``2 * E_i`` ticks (``E_i`` = elements in
all earlier shards' units) to every non-root label, and the root replica
is widened to ``(0, 2 * N_total - 1)``.  Because the labeler assigns each
top-level subtree one contiguous tick block, the shifted labels are
exactly the labels the monolithic combined document would have assigned
— so ``region.start`` is a global element identity, document order,
ancestor/descendant and sibling-order tests, subtree sizes, and the
structural score all agree byte-for-byte with the single-database run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import LotusXDatabase
from repro.index.completion_index import CompletionIndex
from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument, label_document
from repro.labeling.region import Region
from repro.ranking.scorer import LotusXScorer
from repro.xmlio.tree import Document, Element, Text


@dataclass(frozen=True)
class ShardSpec:
    """Placement metadata for one shard of a partitioned corpus."""

    #: This shard's position in the fleet (0-based).
    index: int
    #: Total number of shards in the fleet.
    shard_count: int
    #: Tag of the replicated root ("spine") element.
    spine_tag: str
    #: Half-open range of top-level unit indices this shard holds.
    unit_range: tuple[int, int]
    #: Elements in all earlier shards' units (``E_i``); the region shift
    #: is ``2 * element_offset`` ticks.
    element_offset: int
    #: Elements in this shard, including the root replica.
    element_count: int
    #: Elements in the whole corpus, including the (single) root.
    total_elements: int
    #: Per-tag count of same-tag units in earlier shards; corrects the
    #: depth-1 ordinal of ``element_xpath`` from shard-local to global.
    child_ordinal_offsets: dict[str, int] = field(default_factory=dict)

    @property
    def tick_shift(self) -> int:
        return 2 * self.element_offset

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "shard_count": self.shard_count,
            "spine_tag": self.spine_tag,
            "unit_range": list(self.unit_range),
            "element_offset": self.element_offset,
            "element_count": self.element_count,
            "total_elements": self.total_elements,
            "child_ordinal_offsets": dict(self.child_ordinal_offsets),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> ShardSpec:
        return cls(
            index=int(payload["index"]),
            shard_count=int(payload["shard_count"]),
            spine_tag=str(payload["spine_tag"]),
            unit_range=tuple(payload["unit_range"]),  # type: ignore[arg-type]
            element_offset=int(payload["element_offset"]),
            element_count=int(payload["element_count"]),
            total_elements=int(payload["total_elements"]),
            child_ordinal_offsets={
                str(tag): int(count)
                for tag, count in payload.get("child_ordinal_offsets", {}).items()
            },
        )


@dataclass(frozen=True)
class PartitionPlan:
    """The shard documents plus their placement metadata."""

    specs: tuple[ShardSpec, ...]
    documents: tuple[Document, ...]
    spine_tag: str
    total_elements: int

    @property
    def shard_count(self) -> int:
        return len(self.specs)


def copy_subtree(element: Element) -> Element:
    """A structurally identical deep copy with no parent.

    ``Element.append`` refuses to adopt a node that already has a parent,
    so shard documents are built from fresh nodes; the caller's document
    is never re-parented or mutated.
    """
    clone = Element(element.tag, element.attributes, element.line, element.column)
    stack = [(element, clone)]
    while stack:
        source, target = stack.pop()
        for child in source.children:
            if isinstance(child, Text):
                target.append(Text(child.value))
            else:
                child_clone = Element(
                    child.tag, child.attributes, child.line, child.column
                )
                target.append(child_clone)
                stack.append((child, child_clone))
    return clone


def subtree_element_count(element: Element) -> int:
    """Number of elements in ``element``'s subtree (including itself)."""
    return sum(1 for _ in element.iter())


def split_units(weights: list[int], shards: int) -> list[tuple[int, int]]:
    """Contiguous, greedily balanced split of unit weights into at most
    ``shards`` non-empty blocks (fewer when there are fewer units)."""
    count = len(weights)
    if count == 0:
        return [(0, 0)]
    blocks = max(1, min(shards, count))
    bounds: list[tuple[int, int]] = []
    start = 0
    remaining = sum(weights)
    for block_index in range(blocks):
        left = blocks - block_index
        if left == 1:
            end = count
            taken = remaining
        else:
            target = remaining / left
            limit = count - (left - 1)
            end = start
            taken = 0
            while end < limit and (taken == 0 or taken < target):
                taken += weights[end]
                end += 1
        bounds.append((start, end))
        remaining -= taken
        start = end
    return bounds


def partition_document(document: Document, shards: int) -> PartitionPlan:
    """Partition ``document`` by top-level subtrees into shard documents.

    Every direct child element of the root is a unit; units are assigned
    contiguously to shards, balanced by subtree element count.  The
    root's attributes are replicated onto every shard root; the root's
    *direct text* goes to shard 0 only, so term postings and completion
    values are counted exactly once across the fleet.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1: {shards}")
    root = document.root
    units = root.child_elements()
    weights = [subtree_element_count(unit) for unit in units]
    total_elements = 1 + sum(weights)
    bounds = split_units(weights, shards)

    specs: list[ShardSpec] = []
    documents: list[Document] = []
    offset = 0
    ordinal_offsets: dict[str, int] = {}
    for index, (start, end) in enumerate(bounds):
        replica = Element(root.tag, root.attributes, root.line, root.column)
        if index == 0:
            for child in root.children:
                if isinstance(child, Text):
                    replica.append(Text(child.value))
        for unit in units[start:end]:
            replica.append(copy_subtree(unit))
        shard_document = Document(
            replica,
            version=document.version,
            encoding=document.encoding,
            source_name=(
                f"{document.source_name} [shard {index + 1}/{len(bounds)}]"
            ),
        )
        block_elements = sum(weights[start:end])
        specs.append(
            ShardSpec(
                index=index,
                shard_count=len(bounds),
                spine_tag=root.tag,
                unit_range=(start, end),
                element_offset=offset,
                element_count=1 + block_elements,
                total_elements=total_elements,
                child_ordinal_offsets=dict(ordinal_offsets),
            )
        )
        documents.append(shard_document)
        offset += block_elements
        for unit in units[start:end]:
            ordinal_offsets[unit.tag] = ordinal_offsets.get(unit.tag, 0) + 1
    return PartitionPlan(
        specs=tuple(specs),
        documents=tuple(documents),
        spine_tag=root.tag,
        total_elements=total_elements,
    )


def shift_regions(labeled: LabeledDocument, spec: ShardSpec) -> None:
    """Translate a freshly labeled shard into global region coordinates.

    Uniformly shifts every non-root label by ``spec.tick_shift`` ticks
    and widens the root replica to span the whole corpus
    (``(0, 2 * total - 1)``), reproducing exactly the labels the
    monolithic combined document would carry.
    """
    shift = spec.tick_shift
    for labeled_element in labeled.elements:
        region = labeled_element.region
        if labeled_element.order == 0:
            labeled_element.region = Region(
                0, 2 * spec.total_elements - 1, 0
            )
        elif shift:
            labeled_element.region = Region(
                region.start + shift, region.end + shift, region.level
            )


def build_shard_database(
    document: Document,
    spec: ShardSpec,
    scorer: LotusXScorer | None = None,
    synonyms: dict[str, tuple[str, ...]] | None = None,
) -> LotusXDatabase:
    """Index one shard document as a full ``LotusXDatabase`` whose labels
    live in global region coordinates.

    Regions are shifted *before* the term index and columnar streams are
    built, so ``_subtree_end``, skip pointers, and every downstream
    consumer see the global coordinates from the start.  Orders stay
    shard-local and dense, which keeps every order-keyed structure (and
    the snapshot codecs) working unchanged.
    """
    database = LotusXDatabase.__new__(LotusXDatabase)
    database.document = document
    database.expanded_attributes = False
    database.labeled = label_document(document)
    shift_regions(database.labeled, spec)
    database.term_index = TermIndex(database.labeled)
    database.completion_index = CompletionIndex(database.labeled, database.term_index)
    database._finish_wiring(scorer, synonyms)
    return database
