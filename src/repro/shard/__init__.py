"""Sharded corpus subsystem: partitioning, routing, scatter-gather.

Splits a corpus by top-level subtrees into N self-contained shard
databases whose region labels live in global coordinates, then serves
the full engine API over the fleet — pruning shards that cannot answer,
scattering work across threads or forked processes under deadline
budgets, and merging per-shard answers into globally exact results.
"""

from repro.shard.database import ShardedDatabase, sharded_from_plan
from repro.shard.executor import ShardExecutor, ShardOutcome
from repro.shard.merger import (
    ShardedCompletionIndex,
    merge_guides,
    merge_match_lists,
    merge_statistics,
)
from repro.shard.partitioner import (
    PartitionPlan,
    ShardSpec,
    build_shard_database,
    partition_document,
    split_units,
)
from repro.shard.router import ShardRouter, spine_safe

__all__ = [
    "PartitionPlan",
    "ShardExecutor",
    "ShardOutcome",
    "ShardRouter",
    "ShardSpec",
    "ShardedCompletionIndex",
    "ShardedDatabase",
    "build_shard_database",
    "merge_guides",
    "merge_match_lists",
    "merge_statistics",
    "partition_document",
    "sharded_from_plan",
    "spine_safe",
    "split_units",
]
