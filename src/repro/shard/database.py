"""The sharded database facade.

:class:`ShardedDatabase` exposes the :class:`~repro.engine.database.LotusXDatabase`
API over a fleet of per-shard databases (see
:mod:`repro.shard.partitioner`).  Per call:

1. the **router** prunes shards that provably cannot answer;
2. the **executor** scatters the work over the surviving shards
   (serial / threads / forked processes), handing each the caller's
   remaining deadline budget;
3. the **merger** combines per-shard answers into globally exact results
   — document-order merge for twig matches, global-idf rescoring for
   ranked search, root-answer resolution for keyword search, and
   frequency-summed trie merges for completion.

Queries whose root could bind the replicated corpus root *with
cross-shard obligations* (see :func:`repro.shard.router.spine_safe`)
cannot be decomposed; they fall back to a lazily built monolithic
database over the same corpus, so every query is answered exactly.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence

from repro.autocomplete.candidates import Candidate
from repro.autocomplete.engine import AutocompleteEngine
from repro.engine.database import LotusXDatabase
from repro.engine.results import SearchResponse
from repro.engine.translate import to_xpath, to_xquery
from repro.index.statistics import CorpusStatistics
from repro.keyword.search import KeywordResponse, _score
from repro.index.text import tokenize
from repro.ranking.scorer import LotusXScorer
from repro.fleet import FleetConfig, ReplicaFleet
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded, ShardsUnavailable
from repro.resilience.faults import fault_point
from repro.rewrite.engine import QueryRewriter, RewriteCandidate
from repro.rewrite.rules import default_rules
from repro.shard.executor import ShardExecutor
from repro.shard.merger import (
    GlobalTermStats,
    GlobalTermView,
    RootTermView,
    ShardKeywordHit,
    ShardSearchResult,
    ShardedCompletionIndex,
    matches_from_wire,
    merge_guides,
    merge_match_lists,
    merge_statistics,
)
from repro.shard.partitioner import (
    PartitionPlan,
    ShardSpec,
    build_shard_database,
    copy_subtree,
    partition_document,
)
from repro.shard.router import ShardRouter, spine_safe
from repro.twig.algorithms.common import AlgorithmStats
from repro.twig.match import Match
from repro.twig.parse import parse_twig
from repro.twig.pattern import Axis, QueryNode, TwigPattern
from repro.twig.planner import Algorithm
from repro.xmlio.builder import parse_file, parse_string
from repro.xmlio.tree import Document, Element, Text


class _UnsafeRewrite(Exception):
    """A rewrite produced a pattern that cannot be shard-decomposed."""


class ShardedDatabase:
    """One partitioned corpus behind the single-database API."""

    #: Entries kept in the merged-result match cache.
    MATCH_CACHE_SIZE = 128
    #: Entries kept in the query-text parse cache.
    PARSE_CACHE_SIZE = 256

    def __init__(
        self,
        databases: Sequence[LotusXDatabase],
        specs: Sequence[ShardSpec],
        source_document: Document | None = None,
        executor_mode: str = "auto",
        max_workers: int | None = None,
        scorer: LotusXScorer | None = None,
        synonyms: dict[str, tuple[str, ...]] | None = None,
        replicas: int = 1,
        fleet_config: FleetConfig | None = None,
    ) -> None:
        if len(databases) != len(specs) or not databases:
            raise ValueError("one spec per shard database is required")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.shards = list(databases)
        self.specs = tuple(specs)
        self.spine_tag = self.specs[0].spine_tag
        self.source_document = source_document
        self.expanded_attributes = False
        self.scorer = scorer or LotusXScorer()
        self._synonyms = synonyms
        # A replica fleet is built when asked for more than one replica
        # (or an explicit fleet config): every scatter sub-request then
        # runs through health-ranked routing, retries, hedging, and
        # per-replica circuit breakers.
        self.fleet: ReplicaFleet | None = None
        if replicas > 1 or fleet_config is not None:
            config = fleet_config or FleetConfig()
            if config.replicas != replicas and replicas > 1:
                config = config.with_replicas(replicas)
            self.fleet = ReplicaFleet(self.shards, config)
        self.executor = ShardExecutor(
            self.shards, executor_mode, max_workers, fleet=self.fleet
        )
        self.router = ShardRouter(self.shards, self.spine_tag)
        self.guide = merge_guides(self.shards, self.spine_tag)
        self.completion_index = ShardedCompletionIndex(
            self.shards, self.guide, self.spine_tag
        )
        self.autocomplete = AutocompleteEngine(self.guide, self.completion_index)
        self.term_stats = GlobalTermStats([db.term_index for db in self.shards])
        self._term_views = [
            GlobalTermView(db.term_index, self.term_stats) for db in self.shards
        ]
        self._root_view = RootTermView(self.term_stats)
        self._max_depth = max(
            (el.level for db in self.shards for el in db.labeled.elements),
            default=0,
        )
        self.rewriter = QueryRewriter(default_rules(self.guide, synonyms))
        self._lock = threading.Lock()
        self._match_cache: OrderedDict = OrderedDict()
        self._parse_cache: OrderedDict = OrderedDict()
        self._serving_generation = 0
        self.counters: dict[str, int] = {
            "match_cache_hits": 0,
            "match_cache_misses": 0,
            "parse_cache_hits": 0,
            "parse_cache_misses": 0,
            "scatter_evaluations": 0,
            "fallback_evaluations": 0,
        }
        self._fallback_db: LotusXDatabase | None = None
        self._fallback_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_document(
        cls,
        document: Document,
        shards: int,
        scorer: LotusXScorer | None = None,
        synonyms: dict[str, tuple[str, ...]] | None = None,
        **kwargs,
    ) -> ShardedDatabase:
        """Partition ``document`` by top-level subtrees into ``shards``."""
        plan = partition_document(document, shards)
        databases = [
            build_shard_database(shard_document, spec, scorer, synonyms)
            for shard_document, spec in zip(plan.documents, plan.specs)
        ]
        return cls(
            databases,
            plan.specs,
            source_document=document,
            scorer=scorer,
            synonyms=synonyms,
            **kwargs,
        )

    @classmethod
    def from_string(cls, xml_text: str, shards: int, **kwargs) -> ShardedDatabase:
        return cls.from_document(parse_string(xml_text), shards, **kwargs)

    @classmethod
    def from_file(
        cls, path: str | os.PathLike[str], shards: int, **kwargs
    ) -> ShardedDatabase:
        return cls.from_document(parse_file(path), shards, **kwargs)

    @classmethod
    def from_files(
        cls,
        paths: Sequence[str | os.PathLike[str]],
        shards: int,
        collection_tag: str = "collection",
        annotate_source: bool = True,
        **kwargs,
    ) -> ShardedDatabase:
        """Index several XML files as one sharded collection (the
        multi-document twin of ``LotusXDatabase.from_files``)."""
        if not paths:
            raise ValueError("from_files needs at least one path")
        root = Element(collection_tag)
        for path in paths:
            document = parse_file(path)
            if annotate_source:
                document.root.attributes.setdefault(
                    "source", os.path.basename(os.fspath(path))
                )
            root.append(document.root)
        combined = Document(
            root, source_name=f"collection of {len(paths)} documents"
        )
        return cls.from_document(combined, shards, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def element_count(self) -> int:
        """Corpus element count (the root counted once)."""
        return self.specs[0].total_elements

    @property
    def serving_generation(self) -> int:
        return self._serving_generation

    @serving_generation.setter
    def serving_generation(self, value: int) -> None:
        # Propagated into every shard: their plan-cache keys include it,
        # so a hot-swapped fleet can never serve a stale compiled plan.
        self._serving_generation = value
        for shard in self.shards:
            shard.serving_generation = value
        fallback = self._fallback_db
        if fallback is not None:
            fallback.serving_generation = value

    def warm(self) -> ShardedDatabase:
        """Force full materialization of every shard; returns ``self``."""
        for shard in self.shards:
            shard.warm()
        return self

    def warm_hot(self) -> ShardedDatabase:
        """Materialize only the hot query-path sections of every shard
        (snapshot-backed shards skip the document tree and label store —
        the mmap warm-start path); falls back to a full warm for shards
        without the distinction."""
        for shard in self.shards:
            hot = getattr(shard, "warm_hot", None)
            if hot is not None:
                hot()
            else:
                shard.warm()
        return self

    def close(self) -> None:
        """Shut down the scatter-gather pools, the replica fleet, and
        each shard that holds closeable resources (snapshot mappings)."""
        self.executor.close()
        if self.fleet is not None:
            self.fleet.close()
        for shard in self.shards:
            closer = getattr(shard, "close", None)
            if closer is not None:
                closer()

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase(shards={len(self.shards)},"
            f" elements={self.element_count}, paths={len(self.guide)})"
        )

    # ------------------------------------------------------------------
    # Fallback
    # ------------------------------------------------------------------

    def _fallback(self) -> LotusXDatabase:
        """The lazily built monolithic database over the same corpus.

        Serves the (rare) queries that cannot be shard-decomposed; built
        once, on first need, from the source document when available or
        reassembled from the shard documents otherwise.
        """
        with self._fallback_lock:
            if self._fallback_db is None:
                document = self.source_document or self._reassemble_document()
                database = LotusXDatabase(
                    document, scorer=self.scorer, synonyms=self._synonyms
                )
                database.serving_generation = self._serving_generation
                self._fallback_db = database
            return self._fallback_db

    def _reassemble_document(self) -> Document:
        """Rebuild the monolithic document from the shard documents."""
        first_root = self.shards[0].document.root
        root = Element(
            first_root.tag, first_root.attributes, first_root.line, first_root.column
        )
        for child in first_root.children:
            if isinstance(child, Text):
                root.append(Text(child.value))
        for shard in self.shards:
            for unit in shard.document.root.child_elements():
                root.append(copy_subtree(unit))
        return Document(root, source_name="reassembled sharded corpus")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> CorpusStatistics:
        return CorpusStatistics(**merge_statistics(self.shards, self.guide))

    def parse_query(self, text: str) -> TwigPattern:
        return parse_twig(text)

    def to_xpath(self, query: str | TwigPattern) -> str:
        return to_xpath(self._as_pattern(query))

    def to_xquery(self, query: str | TwigPattern) -> str:
        return to_xquery(self._as_pattern(query))

    def explain(self, query: str | TwigPattern) -> dict:
        """Evaluation plan against the monolithic view of the corpus."""
        return self._fallback().explain(self._as_pattern(query))

    def example_queries(self, k: int = 5):
        from repro.autocomplete.examples import suggest_example_queries

        suggestions = suggest_example_queries(self.guide, self.completion_index, k * 2)
        verified = [s for s in suggestions if self.matches(s.query)]
        return verified[:k]

    def cache_statistics(self) -> dict:
        """Coordinator cache counters plus router and per-shard stats."""
        with self._lock:
            counters = dict(self.counters)
            match_entries = len(self._match_cache)
            parse_entries = len(self._parse_cache)
        result = {
            "counters": counters,
            "match_cache_entries": match_entries,
            "parse_cache_entries": parse_entries,
            "serving_generation": self._serving_generation,
            "autocomplete_cache": self.autocomplete.cache_info(),
            "shard_count": len(self.shards),
            "executor_mode": self.executor.mode,
            "router": self.router.statistics(),
            "per_shard": [shard.cache_statistics() for shard in self.shards],
        }
        if self.fleet is not None:
            result["fleet"] = self.fleet.stats()
        return result

    # ------------------------------------------------------------------
    # Autocompletion (entirely coordinator-side: the merged DataGuide and
    # the frequency-summed completion facade already see global counts)
    # ------------------------------------------------------------------

    def complete_tag(
        self,
        pattern: TwigPattern | None = None,
        anchor: QueryNode | None = None,
        prefix: str = "",
        axis: Axis = Axis.CHILD,
        k: int = 10,
        deadline: Deadline | None = None,
    ) -> list[Candidate]:
        fault_point("engine.complete_tag", deadline)
        return self.autocomplete.complete_tag(
            pattern, anchor, prefix, axis, k, deadline
        )

    def complete_value(
        self,
        pattern: TwigPattern,
        node: QueryNode,
        prefix: str,
        k: int = 10,
        whole_values: bool = True,
        deadline: Deadline | None = None,
    ) -> list[Candidate]:
        fault_point("engine.complete_value", deadline)
        return self.autocomplete.complete_value(
            pattern, node, prefix, k, whole_values, deadline
        )

    # ------------------------------------------------------------------
    # Matching and search
    # ------------------------------------------------------------------

    def _scatter_matches(
        self,
        pattern: TwigPattern,
        algorithm: Algorithm,
        stats: AlgorithmStats | None,
        prune_streams: bool,
        deadline: Deadline | None,
    ) -> tuple[list[Match], bool, list[int]]:
        """Route, scatter, and merge one twig evaluation.

        Returns the globally merged, document-ordered matches, a flag
        marking that at least one shard ran out of budget (its partial
        answers are still merged in — partial-result salvage), and the
        indices of shards that *failed* outright (worker broke or every
        replica of the group is down): their answers are missing from the
        merge and the caller must degrade or reject the response.
        """
        dispatch = self.router.route_pattern(pattern)
        with self._lock:
            self.counters["scatter_evaluations"] += 1
        if not dispatch:
            return [], False, []
        payload = {
            "pattern": pattern,
            "algorithm": algorithm.value,
            "prune_streams": prune_streams,
            "collect_stats": stats is not None,
        }
        outcomes = self.executor.run(
            dispatch,
            "matches",
            payload,
            deadline,
            signature=(pattern.signature(), algorithm, prune_streams),
        )
        per_shard = [
            matches_from_wire(
                self.shards[outcome.shard_index],
                outcome.shard_index,
                outcome.payload["matches"],
            )
            for outcome in outcomes
            if not outcome.failed
        ]
        merged = merge_match_lists(per_shard)
        if stats is not None:
            for outcome in outcomes:
                shard_stats = outcome.payload.get("stats")
                if not shard_stats:
                    continue
                stats.elements_scanned += shard_stats["elements_scanned"]
                stats.intermediate_results += shard_stats["intermediate_results"]
                stats.matches += shard_stats["matches"]
                for note, value in shard_stats["notes"].items():
                    stats.notes[note] = stats.notes.get(note, 0) + value
            stats.notes["shards_dispatched"] = len(dispatch)
        tripped = any(outcome.tripped for outcome in outcomes)
        down = [outcome.shard_index for outcome in outcomes if outcome.failed]
        return merged, tripped, down

    def matches(
        self,
        query: str | TwigPattern,
        algorithm: Algorithm = Algorithm.AUTO,
        stats: AlgorithmStats | None = None,
        prune_streams: bool = False,
        deadline: Deadline | None = None,
    ) -> list[Match]:
        """Raw twig matches over the whole corpus, document order.

        Same contract as ``LotusXDatabase.matches`` — including the LRU
        result cache (bypassed by stats- or deadline-carrying calls) and
        ``DeadlineExceeded.partial`` carrying the salvaged merged matches
        when the budget runs out.  When a whole shard group is down,
        raises :class:`ShardsUnavailable` with the surviving shards'
        merged answers in ``partial`` (never cached — a degraded answer
        must not masquerade as a complete one once the group recovers).
        """
        pattern = self._as_pattern(query)
        if not spine_safe(pattern, self.spine_tag):
            self.router.note_fallback()
            with self._lock:
                self.counters["fallback_evaluations"] += 1
            return self._fallback().matches(
                pattern, algorithm, stats, prune_streams, deadline
            )
        if stats is not None or deadline is not None:
            merged, tripped, down = self._scatter_matches(
                pattern, algorithm, stats, prune_streams, deadline
            )
            if down:
                raise ShardsUnavailable(down=down, partial=merged)
            if tripped:
                raise DeadlineExceeded(
                    site="shard.scatter", partial=merged
                )
            return merged
        key = (pattern.signature(), algorithm, prune_streams)
        with self._lock:
            cached = self._match_cache.get(key)
            if cached is not None:
                self._match_cache.move_to_end(key)
                self.counters["match_cache_hits"] += 1
                return list(cached)
            self.counters["match_cache_misses"] += 1
        merged, _, down = self._scatter_matches(
            pattern, algorithm, None, prune_streams, None
        )
        if down:
            raise ShardsUnavailable(down=down, partial=merged)
        with self._lock:
            self._match_cache[key] = merged
            if len(self._match_cache) > self.MATCH_CACHE_SIZE:
                self._match_cache.popitem(last=False)
        return list(merged)

    def search(
        self,
        query: str | TwigPattern,
        k: int = 10,
        algorithm: Algorithm = Algorithm.AUTO,
        rewrite: bool = True,
        min_results: int = 1,
        timeout_ms: int | None = None,
        deadline: Deadline | None = None,
    ) -> SearchResponse:
        """Ranked search with rewriting, scatter-gathered per candidate.

        The rewriter runs at the coordinator (it only needs an evaluator
        callable); every candidate pattern is scattered like ``matches``.
        Scores use the corpus-wide idf, so they equal the monolithic
        scores bit for bit.  A rewrite candidate that is not
        shard-decomposable sends the whole search to the fallback.
        """
        pattern = self._as_pattern(query)
        started = time.perf_counter()
        if deadline is None and timeout_ms is not None:
            deadline = Deadline.after_ms(timeout_ms)
        fault_point("engine.search", deadline)
        if not spine_safe(pattern, self.spine_tag):
            self.router.note_fallback()
            with self._lock:
                self.counters["fallback_evaluations"] += 1
            return self._fallback().search(
                pattern,
                k,
                algorithm,
                rewrite,
                min_results,
                deadline=deadline,
            )
        truncated = False
        degraded: list[str] = []
        down_shards: set[int] = set()

        def evaluator(candidate_pattern: TwigPattern) -> list[Match]:
            if not spine_safe(candidate_pattern, self.spine_tag):
                raise _UnsafeRewrite(candidate_pattern)
            merged, tripped, down = self._scatter_matches(
                candidate_pattern, algorithm, None, False, deadline
            )
            if down:
                # Salvage: keep the surviving shards' answers and mark
                # the response degraded instead of failing the search.
                down_shards.update(down)
            if tripped:
                raise DeadlineExceeded(site="shard.scatter", partial=merged)
            return merged

        try:
            if rewrite:
                try:
                    outcome = self.rewriter.search_with_rewrites(
                        pattern,
                        evaluator,
                        min_results=min_results,
                        deadline=deadline,
                    )
                    productive = outcome.productive
                    rewrites_tried = outcome.evaluated - 1
                    used_rewrites = any(
                        candidate.steps for candidate, _ in productive
                    )
                    truncated = outcome.truncated
                    degraded.extend(outcome.degraded)
                except DeadlineExceeded as exc:
                    partial = exc.partial or []
                    productive = (
                        [(RewriteCandidate(pattern, 0.0, ()), partial)]
                        if partial
                        else []
                    )
                    rewrites_tried = 0
                    used_rewrites = False
                    truncated = True
            else:
                try:
                    matches = evaluator(pattern)
                except DeadlineExceeded as exc:
                    matches = exc.partial or []
                    truncated = True
                productive = (
                    [(RewriteCandidate(pattern, 0.0, ()), matches)]
                    if matches
                    else []
                )
                rewrites_tried = 0
                used_rewrites = False
        except _UnsafeRewrite:
            # A relaxation re-anchored the pattern on the corpus root in a
            # non-decomposable shape; answer the whole search monolithically.
            self.router.note_fallback()
            with self._lock:
                self.counters["fallback_evaluations"] += 1
            return self._fallback().search(
                pattern,
                k,
                algorithm,
                rewrite,
                min_results,
                deadline=deadline,
            )

        results = self._rank_productive(productive, k, deadline)
        if deadline is not None and deadline.tripped:
            truncated = True
            if "deadline" not in degraded:
                degraded.append("deadline")
        if down_shards:
            truncated = True
            for index in sorted(down_shards):
                tag = f"shard-{index}-unavailable"
                if tag not in degraded:
                    degraded.append(tag)
        return SearchResponse(
            query=str(pattern),
            results=results[:k],
            total_matches=sum(len(matches) for _, matches in productive),
            used_rewrites=used_rewrites,
            rewrites_tried=rewrites_tried,
            elapsed_seconds=time.perf_counter() - started,
            truncated=truncated,
            degraded=tuple(degraded),
        )

    def _rank_productive(
        self, productive, k: int, deadline: Deadline | None = None
    ) -> list[ShardSearchResult]:
        """The single-database ranking loop with global keys and scores.

        Differences from ``LotusXDatabase._rank_productive``: output
        identity and tie-breaking use ``region.start`` (global document
        order) instead of the shard-local ``order``, matches are scored
        against their shard's global-idf term view, and results carry
        their shard's xpath ordinal offsets.
        """
        if deadline is None:
            guard = None
        elif deadline.tripped:
            guard = Deadline(max_steps=LotusXDatabase.GRACE_RANK_STEPS)
        else:
            guard = deadline
        best: dict[tuple[int, ...], ShardSearchResult] = {}
        try:
            for candidate, matches in productive:
                candidate_pattern = candidate.pattern
                for match in matches:
                    if guard is not None:
                        guard.check("search.rank")
                    shard_index = getattr(match, "shard", 0)
                    score = self.scorer.score_match(
                        candidate_pattern,
                        match,
                        self._term_views[shard_index],
                        candidate.penalty,
                    )
                    outputs = tuple(match.output_elements(candidate_pattern))
                    key = tuple(el.region.start for el in outputs)
                    current = best.get(key)
                    if current is None or score.combined > current.score.combined:
                        best[key] = ShardSearchResult(
                            outputs=outputs,
                            score=score,
                            match=match,
                            source_query=str(candidate_pattern),
                            rewrite_steps=candidate.steps,
                            terms=candidate_pattern.all_terms(),
                            ordinal_offsets=self.specs[
                                shard_index
                            ].child_ordinal_offsets,
                        )
        except DeadlineExceeded:
            pass
        return sorted(
            best.values(),
            key=lambda result: (
                -result.score.combined,
                tuple(el.region.start for el in result.outputs),
            ),
        )

    # ------------------------------------------------------------------
    # Keyword search
    # ------------------------------------------------------------------

    def keyword_search(
        self,
        query: str,
        k: int = 10,
        semantics: str = "slca",
        deadline: Deadline | None = None,
    ) -> KeywordResponse:
        """Corpus-wide keyword search over the shard fleet.

        Deep (below-root) answers are shard-local and exact — a non-root
        element's subtree never crosses a shard boundary — so the global
        answer is their union plus a coordinator-resolved verdict on the
        corpus root:

        * **SLCA**: the root answers iff no deep answer exists anywhere
          and every term occurs somewhere in the corpus;
        * **ELCA**: the root answers iff every term has an occurrence
          whose lowest qualifying ancestor is the root itself — shards
          report these "free" occurrences as per-term witness bits, and a
          *pruned* shard's occurrences are all free (it cannot contain a
          deep qualifying element, which needs all terms).

        Hits are scored with the exact single-database scoring function
        fed global term statistics.
        """
        if semantics not in ("slca", "elca"):
            raise ValueError(f"unknown keyword semantics {semantics!r}")
        fault_point("keyword.search", deadline)
        terms = tuple(tokenize(query, drop_stopwords=True)) or tuple(tokenize(query))
        if not terms:
            return KeywordResponse((), (), 0, semantics)
        dispatch, presence = self.router.route_terms(terms)
        lowered = [term.lower() for term in dict.fromkeys(terms)]
        outcomes = (
            self.executor.run(
                dispatch,
                "keyword",
                {"terms": list(terms), "semantics": semantics},
                deadline,
            )
            if dispatch
            else []
        )
        truncated = any(outcome.tripped for outcome in outcomes)
        down = [outcome.shard_index for outcome in outcomes if outcome.failed]
        deep: list[tuple] = []  # (element, shard index)
        free_terms: set[str] = set()
        dispatched = set(dispatch)
        for outcome in outcomes:
            if outcome.failed:
                continue
            shard = self.shards[outcome.shard_index]
            for order in outcome.payload["orders"]:
                if order == 0:
                    continue  # per-shard root replica; resolved globally
                deep.append((shard.labeled.elements[order], outcome.shard_index))
            free_terms.update(outcome.payload.get("free", ()))
        for index, shard_presence in enumerate(presence):
            if index in dispatched:
                continue
            # A pruned shard misses at least one term, so it holds no deep
            # qualifying element: every occurrence it does have witnesses
            # the corpus root directly.
            free_terms.update(
                term for term, present in shard_presence.items() if present
            )
        all_present = all(
            any(shard_presence[term] for shard_presence in presence)
            for term in lowered
        )
        if semantics == "slca":
            include_root = not deep and all_present
        else:
            include_root = all_present and all(
                term in free_terms for term in lowered
            )
        if down:
            # A down shard may hold unseen deep answers or witness bits;
            # the root verdict is unprovable, and claiming it could turn
            # an incomplete answer into a *wrong* one.  Leave it out.
            include_root = False
        total = len(deep) + (1 if include_root else 0)
        hits = []
        for element, shard_index in deep:
            scored = _score(
                element, terms, self._term_views[shard_index], self._max_depth
            )
            hits.append(
                ShardKeywordHit(
                    scored.element,
                    scored.score,
                    scored.text_score,
                    scored.specificity,
                    self.specs[shard_index].child_ordinal_offsets,
                )
            )
        if include_root:
            root_element = self.shards[0].labeled.elements[0]
            scored = _score(root_element, terms, self._root_view, self._max_depth)
            # Each shard's replica subtree carries only that shard's
            # children (root-direct text rides on shard 0), so the
            # monolithic root preview is the shard previews in order.
            root_text = " ".join(
                " ".join(shard.labeled.elements[0].element.itertext())
                for shard in self.shards
            )
            hits.append(
                ShardKeywordHit(
                    scored.element,
                    scored.score,
                    scored.text_score,
                    scored.specificity,
                    {},
                    snippet_text=root_text,
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.element.region.start))
        degraded = tuple(
            f"shard-{index}-unavailable" for index in sorted(set(down))
        )
        return KeywordResponse(
            terms,
            tuple(hits[:k]),
            total,
            semantics,
            truncated or bool(down),
            degraded,
        )

    # ------------------------------------------------------------------

    def _as_pattern(self, query: str | TwigPattern) -> TwigPattern:
        """``LotusXDatabase._as_pattern`` with a thread-safe cache."""
        if isinstance(query, TwigPattern):
            return query
        with self._lock:
            cached = self._parse_cache.get(query)
            if cached is not None:
                self._parse_cache.move_to_end(query)
                self.counters["parse_cache_hits"] += 1
                return cached.copy()
            self.counters["parse_cache_misses"] += 1
        pattern = parse_twig(query)
        with self._lock:
            self._parse_cache[query] = pattern.copy()
            if len(self._parse_cache) > self.PARSE_CACHE_SIZE:
                self._parse_cache.popitem(last=False)
        return pattern


def sharded_from_plan(
    plan: PartitionPlan,
    source_document: Document | None = None,
    **kwargs,
) -> ShardedDatabase:
    """Build the fleet for an existing :class:`PartitionPlan`."""
    scorer = kwargs.get("scorer")
    synonyms = kwargs.get("synonyms")
    databases = [
        build_shard_database(document, spec, scorer, synonyms)
        for document, spec in zip(plan.documents, plan.specs)
    ]
    return ShardedDatabase(
        databases, plan.specs, source_document=source_document, **kwargs
    )
