"""Shared plumbing for the twig-matching algorithms.

Every algorithm takes the same inputs — a pattern and per-query-node
element streams — and produces :class:`~repro.twig.match.Match` objects,
so they are interchangeable and cross-checkable.  This module builds the
streams (applying tag, predicate, and root-pinning filters) and defines the
statistics counters the benchmarks read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.columnar import ColumnarStream
from repro.index.element_index import StreamFactory
from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.ordered import PartialCheck
from repro.twig.match import Match, satisfies_order
from repro.twig.pattern import Axis, QueryNode, TwigPattern

#: Virtual "start position" of an exhausted stream; larger than any label.
INFINITY = float("inf")

#: Fresh step budget granted to best-effort partial-result salvage after a
#: deadline trip: enough to merge modest state, small enough to stay well
#: inside the ~2x-deadline envelope even when the salvage itself explodes.
SALVAGE_STEPS = 10_000


def salvage(producer) -> list[Match]:
    """Run ``producer(deadline)`` under a small fresh step budget.

    Used after a :class:`DeadlineExceeded` trip to turn already-gathered
    intermediate state into well-formed partial matches without risking a
    second unbounded computation; returns ``[]`` if even that budget runs
    out.
    """
    try:
        return producer(Deadline(max_steps=SALVAGE_STEPS))
    except DeadlineExceeded:
        return []

#: A root-to-leaf partial assignment (node id -> element).
PathSolution = dict[int, LabeledElement]


@dataclass
class AlgorithmStats:
    """Counters every algorithm fills in (benchmarks E4/E5 read these)."""

    elements_scanned: int = 0
    #: Binary-join pairs (structural join) or path solutions (holistic).
    intermediate_results: int = 0
    matches: int = 0
    notes: dict[str, int] = field(default_factory=dict)


def build_streams(
    pattern: TwigPattern,
    factory: StreamFactory,
    guide=None,
    deadline: Deadline | None = None,
) -> dict[int, list[LabeledElement]]:
    """Document-ordered candidate stream per query node.

    Applies the node's tag, compiles its value predicate into a filter, and
    pins the root stream to the document root element when the pattern's
    root axis is CHILD.

    With ``guide`` (a :class:`~repro.summary.dataguide.DataGuide`), streams
    are additionally pruned to the node's *candidate positions* — the
    DataGuide paths consistent with the whole pattern ("boosting holism
    with structural indexes", Chen/Lu/Ling SIGMOD 2005).  Pruning is sound:
    every element a match binds sits at a candidate position (property-
    tested), so no answers are lost, while elements at impossible paths —
    the ones that become useless path solutions under parent-child edges —
    never enter the join.  Experiment E11 measures the effect.
    """
    term_index = factory.term_index
    positions = None
    if guide is not None:
        from repro.autocomplete.context import candidate_positions

        positions = candidate_positions(pattern, guide)
    streams: dict[int, list[LabeledElement]] = {}
    for node in pattern.nodes():
        if deadline is not None:
            deadline.check("twig.build_streams")
        predicate = node.predicate
        if predicate is None:
            stream = factory.stream(node.tag)
        elif deadline is None:
            stream = factory.filtered_stream(
                node.tag,
                lambda el, p=predicate: p.matches(el, term_index),
                key=predicate.signature(),
            )
        else:
            # Predicate streams scan every same-tag element, so the
            # per-element filter is itself a cooperative checkpoint (a
            # memo hit skips the scan — and its checkpoints — entirely).
            def checked_filter(el, p=predicate):
                deadline.check("twig.build_streams.filter")
                return p.matches(el, term_index)

            stream = factory.filtered_stream(
                node.tag, checked_filter, key=predicate.signature()
            )
        if node.is_root and node.axis is Axis.CHILD:
            stream = [el for el in stream if el.level == 0]
        if positions is not None:
            allowed = {p.node_id for p in positions[node.node_id]}
            stream = [el for el in stream if el.path_node.node_id in allowed]
        streams[node.node_id] = stream
    return streams


def build_columnar_streams(
    pattern: TwigPattern,
    factory: StreamFactory,
    guide=None,
    deadline: Deadline | None = None,
) -> dict[int, "ColumnarStream"]:
    """Columnar candidate stream per query node.

    The exact counterpart of :func:`build_streams` — same tag selection,
    predicate filters, root pinning, and DataGuide pruning, same
    ``twig.build_streams`` deadline checkpoints — but each node gets a
    :class:`~repro.index.columnar.ColumnarStream` view for the columnar
    twig kernels.  Predicate-filtered views are memoized in the factory
    by ``(tag, predicate signature)`` alongside their object twins.
    """
    term_index = factory.term_index
    positions = None
    if guide is not None:
        from repro.autocomplete.context import candidate_positions

        positions = candidate_positions(pattern, guide)
    views: dict[int, "ColumnarStream"] = {}
    for node in pattern.nodes():
        if deadline is not None:
            deadline.check("twig.build_streams")
        predicate = node.predicate
        if predicate is None:
            view = factory.columnar_stream(node.tag)
        elif deadline is None:
            view = factory.filtered_columnar_stream(
                node.tag,
                lambda el, p=predicate: p.matches(el, term_index),
                key=predicate.signature(),
            )
        else:

            def checked_filter(el, p=predicate):
                deadline.check("twig.build_streams.filter")
                return p.matches(el, term_index)

            view = factory.filtered_columnar_stream(
                node.tag, checked_filter, key=predicate.signature()
            )
        if node.is_root and node.axis is Axis.CHILD:
            levels = view.levels
            view = view.take(i for i in range(len(levels)) if levels[i] == 0)
        if positions is not None:
            allowed = {p.node_id for p in positions[node.node_id]}
            path_ids = view.path_ids
            view = view.take(
                i for i in range(len(path_ids)) if path_ids[i] in allowed
            )
        views[node.node_id] = view
    return views


def edge_satisfied(
    ancestor: LabeledElement, descendant: LabeledElement, axis: Axis
) -> bool:
    """Does (ancestor, descendant) satisfy a query edge with ``axis``?"""
    if axis is Axis.CHILD:
        return ancestor.region.is_parent_of(descendant.region)
    return ancestor.region.is_ancestor_of(descendant.region)


def filter_ordered(pattern: TwigPattern, matches: list[Match]) -> list[Match]:
    """Drop matches violating the pattern's order constraints."""
    if not pattern.ordered and not pattern.order_constraints:
        return matches
    return [match for match in matches if satisfies_order(pattern, match)]


def root_to_node_path(node: QueryNode) -> list[QueryNode]:
    """Query nodes from the pattern root down to ``node`` inclusive."""
    path = [node]
    while path[-1].parent is not None:
        path.append(path[-1].parent)
    path.reverse()
    return path


def merge_path_solutions(
    pattern: TwigPattern,
    leaves: list[QueryNode],
    path_solutions: dict[int, list[PathSolution]],
    partial_check: PartialCheck | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """Hash-join per-leaf path solutions on their shared pattern nodes.

    ``partial_check`` (order constraints) prunes each grown partial
    immediately, before it can multiply in later joins.
    """
    partials: list[PathSolution] | None = None
    bound_ids: set[int] = set()
    for leaf in leaves:
        solutions = path_solutions[leaf.node_id]
        leaf_ids = {node.node_id for node in root_to_node_path(leaf)}
        if partials is None:
            partials = [
                dict(solution)
                for solution in solutions
                if partial_check is None or partial_check(solution)
            ]
            bound_ids = set(leaf_ids)
            continue
        shared = sorted(bound_ids & leaf_ids)
        index: dict[tuple[int, ...], list[PathSolution]] = {}
        for solution in solutions:
            key = tuple(solution[node_id].order for node_id in shared)
            index.setdefault(key, []).append(solution)
        joined: list[PathSolution] = []
        for partial in partials:
            if deadline is not None:
                deadline.check("twig.merge")
            key = tuple(partial[node_id].order for node_id in shared)
            for solution in index.get(key, ()):
                grown = dict(partial)
                grown.update(solution)
                if partial_check is None or partial_check(grown):
                    joined.append(grown)
        partials = joined
        bound_ids |= leaf_ids
    if partials is None:  # pattern with no leaves cannot exist (root is one)
        return []
    # Deduplicate: distinct leaves can share interior nodes, and the join
    # can produce the same full assignment through different orders.
    unique: dict[tuple[tuple[int, int], ...], Match] = {}
    for assignment in partials:
        match = Match(assignment)
        unique[match.key()] = match
    return list(unique.values())
