"""PathStack: holistic matching for linear path patterns.

The path-query specialization of the holistic family (Bruno et al., SIGMOD
2002).  All node streams advance in global document order; stacks encode
every partial root-to-here chain compactly, and solutions are enumerated
when a leaf element lands on its stack.

TwigStack degenerates to this behaviour on paths, but PathStack skips
``get_next``'s child-set reasoning, making it measurably faster on path
workloads (part of experiment E4).
"""

from __future__ import annotations

from repro.index.columnar import INF_INT, ColumnarStream
from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import (
    AlgorithmStats,
    edge_satisfied,
    filter_ordered,
)
from repro.twig.match import Match
from repro.twig.pattern import Axis, QueryNode, TwigPattern

_StackEntry = tuple[LabeledElement, int]


def path_stack_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """All matches of a *linear* ``pattern`` (every node ≤ 1 child).

    With a ``deadline``, the stream loop checks it cooperatively; on
    expiry the raised :class:`DeadlineExceeded` carries the matches
    enumerated so far as its ``partial``.

    Raises
    ------
    ValueError
        If the pattern is not a path.
    """
    if not pattern.is_path():
        raise ValueError("PathStack requires a linear path pattern")
    stats = stats if stats is not None else AlgorithmStats()

    # Pattern nodes root -> leaf.
    chain: list[QueryNode] = []
    node: QueryNode | None = pattern.root
    while node is not None:
        chain.append(node)
        node = node.children[0] if node.children else None
    leaf = chain[-1]

    positions = {n.node_id: 0 for n in chain}
    stacks: dict[int, list[_StackEntry]] = {n.node_id: [] for n in chain}
    matches: list[Match] = []

    def head(n: QueryNode) -> LabeledElement | None:
        items = streams[n.node_id]
        pos = positions[n.node_id]
        return items[pos] if pos < len(items) else None

    def emit_solutions() -> None:
        """Enumerate chains ending at the just-pushed leaf entry."""
        leaf_entry = stacks[leaf.node_id][-1]

        def ascend(
            level: int, below: LabeledElement, max_index: int, acc: dict[int, LabeledElement]
        ) -> None:
            if level < 0:
                matches.append(Match(acc))
                stats.intermediate_results += 1
                return
            qnode = chain[level]
            child_axis = chain[level + 1].axis
            stack = stacks[qnode.node_id]
            for index in range(min(max_index, len(stack) - 1), -1, -1):
                element, pointer = stack[index]
                if edge_satisfied(element, below, child_axis):
                    acc[qnode.node_id] = element
                    ascend(level - 1, element, pointer, acc)
                    del acc[qnode.node_id]

        acc = {leaf.node_id: leaf_entry[0]}
        if len(chain) == 1:
            matches.append(Match(acc))
            stats.intermediate_results += 1
        else:
            ascend(len(chain) - 2, leaf_entry[0], leaf_entry[1], acc)

    while head(leaf) is not None:
        if deadline is not None:
            try:
                deadline.check("twig.path_stack")
            except DeadlineExceeded as exc:
                if exc.partial is None:
                    exc.partial = filter_ordered(pattern, matches)
                raise
        # The node whose head element starts earliest in the document.
        q_min = min(
            (n for n in chain if head(n) is not None),
            key=lambda n: head(n).region.start,  # type: ignore[union-attr]
        )
        current = head(q_min)
        assert current is not None
        # Expired stack entries can be cleaned on every stack.
        for n in chain:
            stack = stacks[n.node_id]
            while stack and stack[-1][0].region.end < current.region.start:
                stack.pop()
        parent = q_min.parent
        if parent is None or stacks[parent.node_id]:
            pointer = len(stacks[parent.node_id]) - 1 if parent is not None else -1
            stacks[q_min.node_id].append((current, pointer))
            if q_min is leaf:
                emit_solutions()
                stacks[q_min.node_id].pop()
        positions[q_min.node_id] += 1
        stats.elements_scanned += 1

    matches = filter_ordered(pattern, matches)
    stats.matches = len(matches)
    return matches


def _combos_up(
    combos: list[tuple[int, int, dict[int, LabeledElement]]],
    acc: dict[int, LabeledElement],
    level: int,
    below_start: int,
    below_end: int,
    below_level: int,
    max_index: int,
    base_start: int,
    base_level: int,
    stacks: list[list[tuple[int, int]]],
    starts_by: list,
    ends_by: list,
    levels_by: list,
    elements_by: list,
    chain: list[QueryNode],
    axis_is_child: list[bool],
) -> None:
    """Ascend interior stacks, accumulating one ancestor combination per
    root-reaching chain (``base_*`` carries the leaf-parent entry data
    through the recursion unchanged)."""
    if level < 0:
        combos.append((base_start, base_level, dict(acc)))
        return
    stack = stacks[level]
    starts = starts_by[level]
    ends = ends_by[level]
    levels = levels_by[level]
    elements = elements_by[level]
    node_id = chain[level].node_id
    want_parent = axis_is_child[level + 1]
    for index in range(min(max_index, len(stack) - 1), -1, -1):
        element_index, pointer = stack[index]
        entry_start = starts[element_index]
        if entry_start < below_start and below_end < ends[element_index]:
            entry_level = levels[element_index]
            if not want_parent or entry_level == below_level - 1:
                acc[node_id] = elements[element_index]
                _combos_up(
                    combos,
                    acc,
                    level - 1,
                    entry_start,
                    ends[element_index],
                    entry_level,
                    pointer,
                    base_start,
                    base_level,
                    stacks,
                    starts_by,
                    ends_by,
                    levels_by,
                    elements_by,
                    chain,
                    axis_is_child,
                )
                del acc[node_id]


def path_stack_match_columnar(
    pattern: TwigPattern,
    views: dict[int, ColumnarStream],
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """PathStack over columnar views — same answers as
    :func:`path_stack_match`, differentially tested against it.

    All per-iteration work (global-minimum head selection, stack
    cleaning, push decisions) runs on raw label ints indexed by chain
    position.  Two skips make this kernel fast:

    * When the processed node's parent stack is empty, its cursor
      ``seek_ge``-jumps to the parent's next head start — since heads
      are processed in strictly increasing start order, no element
      starting earlier can ever land on a non-empty parent stack.
    * Consecutive leaf elements are processed as a *run*: as long as the
      next leaf head starts before every interior head and before every
      live stack-top's end, the stack configuration cannot change, so
      the ancestor combinations are enumerated once and reused for the
      whole run (region starts/ends come from one shared counter, so an
      uncleaned stack entry strictly contains every run element).

    Raises
    ------
    ValueError
        If the pattern is not a path.
    """
    if not pattern.is_path():
        raise ValueError("PathStack requires a linear path pattern")
    stats = stats if stats is not None else AlgorithmStats()

    chain: list[QueryNode] = []
    node: QueryNode | None = pattern.root
    while node is not None:
        chain.append(node)
        node = node.children[0] if node.children else None
    depth = len(chain)
    leaf = chain[-1]
    leaf_index = depth - 1
    leaf_id = leaf.node_id
    axis_is_child = [n.axis is Axis.CHILD for n in chain]

    chain_views = [views[n.node_id] for n in chain]
    starts_by = [view.starts for view in chain_views]
    ends_by = [view.ends for view in chain_views]
    levels_by = [view.levels for view in chain_views]
    elements_by = [view.elements for view in chain_views]
    sizes = [len(view) for view in chain_views]
    matches: list[Match] = []

    leaf_view = chain_views[leaf_index]
    leaf_starts = starts_by[leaf_index]
    leaf_levels = levels_by[leaf_index]
    leaf_elements = elements_by[leaf_index]
    leaf_size = sizes[leaf_index]

    if depth == 1:
        # Single-node path: every stream element is a match on its own.
        for pos in range(leaf_size):
            if deadline is not None:
                try:
                    deadline.check("twig.path_stack")
                except DeadlineExceeded as exc:
                    if exc.partial is None:
                        exc.partial = filter_ordered(pattern, matches)
                    raise
            match = Match.__new__(Match)
            match.assignments = {leaf_id: leaf_elements[pos]}
            matches.append(match)
        stats.elements_scanned += leaf_size
        stats.intermediate_results += leaf_size
        matches = filter_ordered(pattern, matches)
        stats.matches = len(matches)
        return matches

    leaf_child = axis_is_child[leaf_index]
    scanned = 0
    emitted = 0

    if depth == 2:
        # Parent-leaf chain: one stack of open parent stream indices,
        # scalar cursors, and run-batched leaf emission.  Start ties
        # (shared elements between overlapping tag streams) resolve to
        # the parent, matching the generic scan's first-index-wins rule.
        parent_starts = starts_by[0]
        parent_ends = ends_by[0]
        parent_levels = levels_by[0]
        parent_elements = elements_by[0]
        parent_id = chain[0].node_id
        parent_size = sizes[0]
        parent_pos = 0
        leaf_pos = 0
        stack: list[int] = []
        try:
            while leaf_pos < leaf_size:
                if deadline is not None:
                    try:
                        deadline.check("twig.path_stack")
                    except DeadlineExceeded as exc:
                        if exc.partial is None:
                            exc.partial = filter_ordered(pattern, matches)
                        raise
                leaf_start = leaf_starts[leaf_pos]
                if parent_pos < parent_size:
                    parent_start = parent_starts[parent_pos]
                    if parent_start <= leaf_start:
                        while stack and parent_ends[stack[-1]] < parent_start:
                            stack.pop()
                        stack.append(parent_pos)
                        parent_pos += 1
                        scanned += 1
                        continue
                else:
                    parent_start = INF_INT
                while stack and parent_ends[stack[-1]] < leaf_start:
                    stack.pop()
                if not stack:
                    # Parent stack empty: skip to the parent's next head.
                    scanned += 1
                    leaf_pos = leaf_view.seek_ge(leaf_pos + 1, parent_start)
                    continue
                bound = parent_ends[stack[-1]] + 1
                if parent_start < bound:
                    bound = parent_start
                end_pos = leaf_view.seek_ge(leaf_pos + 1, bound)
                if leaf_child:
                    for pos in range(leaf_pos, end_pos):
                        element_start = leaf_starts[pos]
                        want_level = leaf_levels[pos] - 1
                        element = leaf_elements[pos]
                        for entry in stack:
                            if (
                                parent_starts[entry] < element_start
                                and parent_levels[entry] == want_level
                            ):
                                match = Match.__new__(Match)
                                match.assignments = {
                                    parent_id: parent_elements[entry],
                                    leaf_id: element,
                                }
                                matches.append(match)
                                emitted += 1
                else:
                    for pos in range(leaf_pos, end_pos):
                        element_start = leaf_starts[pos]
                        element = leaf_elements[pos]
                        for entry in stack:
                            if parent_starts[entry] < element_start:
                                match = Match.__new__(Match)
                                match.assignments = {
                                    parent_id: parent_elements[entry],
                                    leaf_id: element,
                                }
                                matches.append(match)
                                emitted += 1
                scanned += end_pos - leaf_pos
                leaf_pos = end_pos
        finally:
            stats.elements_scanned += scanned
            stats.intermediate_results += emitted
        matches = filter_ordered(pattern, matches)
        stats.matches = len(matches)
        return matches

    if depth == 3:
        # Grandparent(a) - parent(b) - leaf chain, fully unrolled: scalar
        # cursors, int stacks, per-run combo enumeration.  The b stack
        # records the a-stack height at push time (the classic parent
        # pointer); a-stack entries at or below it contain the b entry.
        a_starts, b_starts = starts_by[0], starts_by[1]
        a_ends, b_ends = ends_by[0], ends_by[1]
        a_levels, b_levels = levels_by[0], levels_by[1]
        a_elements, b_elements = elements_by[0], elements_by[1]
        a_id, b_id = chain[0].node_id, chain[1].node_id
        a_size, b_size = sizes[0], sizes[1]
        b_view = chain_views[1]
        b_child = axis_is_child[1]
        a_pos = b_pos = leaf_pos = 0
        a_stack: list[int] = []
        b_stack: list[tuple[int, int]] = []
        try:
            while leaf_pos < leaf_size:
                if deadline is not None:
                    try:
                        deadline.check("twig.path_stack")
                    except DeadlineExceeded as exc:
                        if exc.partial is None:
                            exc.partial = filter_ordered(pattern, matches)
                        raise
                a_start = a_starts[a_pos] if a_pos < a_size else INF_INT
                b_start = b_starts[b_pos] if b_pos < b_size else INF_INT
                leaf_start = leaf_starts[leaf_pos]
                if a_start <= b_start and a_start <= leaf_start:
                    while a_stack and a_ends[a_stack[-1]] < a_start:
                        a_stack.pop()
                    while b_stack and b_ends[b_stack[-1][0]] < a_start:
                        b_stack.pop()
                    a_stack.append(a_pos)
                    a_pos += 1
                    scanned += 1
                    continue
                if b_start <= leaf_start:
                    while a_stack and a_ends[a_stack[-1]] < b_start:
                        a_stack.pop()
                    while b_stack and b_ends[b_stack[-1][0]] < b_start:
                        b_stack.pop()
                    scanned += 1
                    if a_stack:
                        b_stack.append((b_pos, len(a_stack) - 1))
                        b_pos += 1
                    elif a_start > b_start:
                        b_pos = b_view.seek_ge(b_pos + 1, a_start)
                    else:
                        b_pos += 1
                    continue
                while a_stack and a_ends[a_stack[-1]] < leaf_start:
                    a_stack.pop()
                while b_stack and b_ends[b_stack[-1][0]] < leaf_start:
                    b_stack.pop()
                if not b_stack:
                    scanned += 1
                    if b_start > leaf_start:
                        leaf_pos = leaf_view.seek_ge(leaf_pos + 1, b_start)
                    else:
                        leaf_pos += 1
                    continue
                bound = a_start if a_start < b_start else b_start
                keep_until = b_ends[b_stack[-1][0]] + 1
                if keep_until < bound:
                    bound = keep_until
                if a_stack:
                    keep_until = a_ends[a_stack[-1]] + 1
                    if keep_until < bound:
                        bound = keep_until
                end_pos = leaf_view.seek_ge(leaf_pos + 1, bound)
                combos: list[tuple[int, int, LabeledElement, LabeledElement]] = []
                a_top = len(a_stack) - 1
                for b_entry, a_height in b_stack:
                    entry_start = b_starts[b_entry]
                    entry_end = b_ends[b_entry]
                    entry_level = b_levels[b_entry]
                    b_element = b_elements[b_entry]
                    for k in range(min(a_height, a_top), -1, -1):
                        a_entry = a_stack[k]
                        if (
                            a_starts[a_entry] < entry_start
                            and entry_end < a_ends[a_entry]
                            and (
                                not b_child
                                or a_levels[a_entry] == entry_level - 1
                            )
                        ):
                            combos.append(
                                (
                                    entry_start,
                                    entry_level,
                                    a_elements[a_entry],
                                    b_element,
                                )
                            )
                for pos in range(leaf_pos, end_pos):
                    element_start = leaf_starts[pos]
                    want_level = leaf_levels[pos] - 1
                    element = leaf_elements[pos]
                    for entry_start, entry_level, a_element, b_element in combos:
                        if entry_start < element_start and (
                            not leaf_child or entry_level == want_level
                        ):
                            match = Match.__new__(Match)
                            match.assignments = {
                                a_id: a_element,
                                b_id: b_element,
                                leaf_id: element,
                            }
                            matches.append(match)
                            emitted += 1
                scanned += end_pos - leaf_pos
                leaf_pos = end_pos
        finally:
            stats.elements_scanned += scanned
            stats.intermediate_results += emitted
        matches = filter_ordered(pattern, matches)
        stats.matches = len(matches)
        return matches

    positions = [0] * depth
    stacks: list[list[tuple[int, int]]] = [[] for _ in range(depth)]

    def build_combos() -> list[tuple[int, int, dict[int, LabeledElement]]]:
        """Ancestor combinations valid for the current leaf run.

        Each combo is ``(parent_start, parent_level, assignment)`` — the
        leaf's parent entry data (its containment/level test against each
        run element happens per element) plus the materialized interior
        assignment (these ancestors appear in emitted matches, so
        materializing here is still final-match-only).  Interior edges
        are fully checked here; they do not depend on the leaf element.
        """
        parent_level_index = depth - 2
        parent_stack = stacks[parent_level_index]
        parent_starts = starts_by[parent_level_index]
        parent_levels = levels_by[parent_level_index]
        parent_elements = elements_by[parent_level_index]
        parent_id = chain[parent_level_index].node_id
        combos: list[tuple[int, int, dict[int, LabeledElement]]] = []
        parent_ends = ends_by[parent_level_index]
        acc: dict[int, LabeledElement] = {}
        for index in range(len(parent_stack) - 1, -1, -1):
            element_index, pointer = parent_stack[index]
            entry_start = parent_starts[element_index]
            entry_level = parent_levels[element_index]
            acc[parent_id] = parent_elements[element_index]
            _combos_up(
                combos,
                acc,
                parent_level_index - 1,
                entry_start,
                parent_ends[element_index],
                entry_level,
                pointer,
                entry_start,
                entry_level,
                stacks,
                starts_by,
                ends_by,
                levels_by,
                elements_by,
                chain,
                axis_is_child,
            )
            del acc[parent_id]
        return combos

    try:
        while positions[leaf_index] < leaf_size:
            if deadline is not None:
                try:
                    deadline.check("twig.path_stack")
                except DeadlineExceeded as exc:
                    if exc.partial is None:
                        exc.partial = filter_ordered(pattern, matches)
                    raise
            # The node whose head element starts earliest in the document
            # (ties cannot happen: region starts are globally unique).
            q_min = -1
            current_start = INF_INT
            for i in range(depth):
                pos = positions[i]
                if pos < sizes[i]:
                    left = starts_by[i][pos]
                    if left < current_start:
                        current_start = left
                        q_min = i
            current_pos = positions[q_min]
            # Expired stack entries can be cleaned on every stack (the
            # leaf stack stays empty: leaf entries never persist).
            for i in range(depth - 1):
                stack = stacks[i]
                ends = ends_by[i]
                while stack and ends[stack[-1][0]] < current_start:
                    stack.pop()
            if q_min == leaf_index:
                parent_stack = stacks[leaf_index - 1]
                if parent_stack:
                    # Leaf run: every leaf element starting before
                    # ``bound`` sees this exact stack configuration.
                    bound = INF_INT
                    for i in range(depth - 1):
                        pos = positions[i]
                        if pos < sizes[i]:
                            left = starts_by[i][pos]
                            if left < bound:
                                bound = left
                        stack = stacks[i]
                        if stack:
                            keep_until = ends_by[i][stack[-1][0]] + 1
                            if keep_until < bound:
                                bound = keep_until
                    end_pos = leaf_view.seek_ge(current_pos + 1, bound)
                    combos = build_combos()
                    if leaf_child:
                        for pos in range(current_pos, end_pos):
                            element_start = leaf_starts[pos]
                            want_level = leaf_levels[pos] - 1
                            element = leaf_elements[pos]
                            for parent_start, parent_level, combo in combos:
                                if (
                                    parent_start < element_start
                                    and parent_level == want_level
                                ):
                                    match = Match.__new__(Match)
                                    match.assignments = {
                                        **combo,
                                        leaf_id: element,
                                    }
                                    matches.append(match)
                                    emitted += 1
                    else:
                        for pos in range(current_pos, end_pos):
                            element_start = leaf_starts[pos]
                            element = leaf_elements[pos]
                            for parent_start, _parent_level, combo in combos:
                                if parent_start < element_start:
                                    match = Match.__new__(Match)
                                    match.assignments = {
                                        **combo,
                                        leaf_id: element,
                                    }
                                    matches.append(match)
                                    emitted += 1
                    scanned += end_pos - current_pos
                    positions[leaf_index] = end_pos
                else:
                    # Parent stack empty: skip to the parent's next head
                    # start (an exhausted parent drains the leaf stream).
                    scanned += 1
                    parent_pos = positions[leaf_index - 1]
                    target = (
                        starts_by[leaf_index - 1][parent_pos]
                        if parent_pos < sizes[leaf_index - 1]
                        else INF_INT
                    )
                    if target > current_start:
                        positions[leaf_index] = leaf_view.seek_ge(
                            current_pos + 1, target
                        )
                    else:
                        positions[leaf_index] = current_pos + 1
            elif q_min == 0 or stacks[q_min - 1]:
                scanned += 1
                pointer = len(stacks[q_min - 1]) - 1 if q_min > 0 else -1
                stacks[q_min].append((current_pos, pointer))
                positions[q_min] = current_pos + 1
            else:
                # Parent stack empty: skip to the parent's next head start
                # (an exhausted parent drains this node's stream entirely).
                scanned += 1
                parent_pos = positions[q_min - 1]
                target = (
                    starts_by[q_min - 1][parent_pos]
                    if parent_pos < sizes[q_min - 1]
                    else INF_INT
                )
                if target > current_start:
                    positions[q_min] = chain_views[q_min].seek_ge(
                        current_pos + 1, target
                    )
                else:
                    positions[q_min] = current_pos + 1
    finally:
        stats.elements_scanned += scanned
        stats.intermediate_results += emitted

    matches = filter_ordered(pattern, matches)
    stats.matches = len(matches)
    return matches
