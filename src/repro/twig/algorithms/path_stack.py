"""PathStack: holistic matching for linear path patterns.

The path-query specialization of the holistic family (Bruno et al., SIGMOD
2002).  All node streams advance in global document order; stacks encode
every partial root-to-here chain compactly, and solutions are enumerated
when a leaf element lands on its stack.

TwigStack degenerates to this behaviour on paths, but PathStack skips
``get_next``'s child-set reasoning, making it measurably faster on path
workloads (part of experiment E4).
"""

from __future__ import annotations

from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import (
    AlgorithmStats,
    edge_satisfied,
    filter_ordered,
)
from repro.twig.match import Match
from repro.twig.pattern import QueryNode, TwigPattern

_StackEntry = tuple[LabeledElement, int]


def path_stack_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """All matches of a *linear* ``pattern`` (every node ≤ 1 child).

    With a ``deadline``, the stream loop checks it cooperatively; on
    expiry the raised :class:`DeadlineExceeded` carries the matches
    enumerated so far as its ``partial``.

    Raises
    ------
    ValueError
        If the pattern is not a path.
    """
    if not pattern.is_path():
        raise ValueError("PathStack requires a linear path pattern")
    stats = stats if stats is not None else AlgorithmStats()

    # Pattern nodes root -> leaf.
    chain: list[QueryNode] = []
    node: QueryNode | None = pattern.root
    while node is not None:
        chain.append(node)
        node = node.children[0] if node.children else None
    leaf = chain[-1]

    positions = {n.node_id: 0 for n in chain}
    stacks: dict[int, list[_StackEntry]] = {n.node_id: [] for n in chain}
    matches: list[Match] = []

    def head(n: QueryNode) -> LabeledElement | None:
        items = streams[n.node_id]
        pos = positions[n.node_id]
        return items[pos] if pos < len(items) else None

    def emit_solutions() -> None:
        """Enumerate chains ending at the just-pushed leaf entry."""
        leaf_entry = stacks[leaf.node_id][-1]

        def ascend(
            level: int, below: LabeledElement, max_index: int, acc: dict[int, LabeledElement]
        ) -> None:
            if level < 0:
                matches.append(Match(acc))
                stats.intermediate_results += 1
                return
            qnode = chain[level]
            child_axis = chain[level + 1].axis
            stack = stacks[qnode.node_id]
            for index in range(min(max_index, len(stack) - 1), -1, -1):
                element, pointer = stack[index]
                if edge_satisfied(element, below, child_axis):
                    acc[qnode.node_id] = element
                    ascend(level - 1, element, pointer, acc)
                    del acc[qnode.node_id]

        acc = {leaf.node_id: leaf_entry[0]}
        if len(chain) == 1:
            matches.append(Match(acc))
            stats.intermediate_results += 1
        else:
            ascend(len(chain) - 2, leaf_entry[0], leaf_entry[1], acc)

    while head(leaf) is not None:
        if deadline is not None:
            try:
                deadline.check("twig.path_stack")
            except DeadlineExceeded as exc:
                if exc.partial is None:
                    exc.partial = filter_ordered(pattern, matches)
                raise
        # The node whose head element starts earliest in the document.
        q_min = min(
            (n for n in chain if head(n) is not None),
            key=lambda n: head(n).region.start,  # type: ignore[union-attr]
        )
        current = head(q_min)
        assert current is not None
        # Expired stack entries can be cleaned on every stack.
        for n in chain:
            stack = stacks[n.node_id]
            while stack and stack[-1][0].region.end < current.region.start:
                stack.pop()
        parent = q_min.parent
        if parent is None or stacks[parent.node_id]:
            pointer = len(stacks[parent.node_id]) - 1 if parent is not None else -1
            stacks[q_min.node_id].append((current, pointer))
            if q_min is leaf:
                emit_solutions()
                stacks[q_min.node_id].pop()
        positions[q_min.node_id] += 1
        stats.elements_scanned += 1

    matches = filter_ordered(pattern, matches)
    stats.matches = len(matches)
    return matches
