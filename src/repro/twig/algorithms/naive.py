"""Naive twig matching by exhaustive tree search.

The correctness oracle and the baseline for experiment E4: enumerate every
embedding of the pattern by walking the document tree, with no labels and
no indexes (beyond predicate evaluation, which is shared with all
algorithms so that value semantics are identical).

Exponential in the worst case; only run it on small documents.
"""

from __future__ import annotations

from itertools import product

from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import AlgorithmStats, filter_ordered
from repro.twig.match import Match
from repro.twig.pattern import Axis, QueryNode, TwigPattern


def naive_match(
    pattern: TwigPattern,
    labeled: LabeledDocument,
    term_index: TermIndex,
    stats: AlgorithmStats | None = None,
    limit: int | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """All matches of ``pattern``, by exhaustive search.

    ``limit`` caps the number of matches returned (pre-order-filter the
    cap applies to raw embeddings, so use it only for existence checks).
    """
    stats = stats if stats is not None else AlgorithmStats()

    def node_matches(qnode: QueryNode, element: LabeledElement) -> bool:
        if deadline is not None:
            deadline.check("twig.naive")
        stats.elements_scanned += 1
        if not qnode.accepts_tag(element.tag):
            return False
        if qnode.predicate is not None:
            return qnode.predicate.matches(element, term_index)
        return True

    def candidates(qnode: QueryNode, anchor: LabeledElement) -> list[LabeledElement]:
        """Elements under ``anchor`` that can bind ``qnode``."""
        if qnode.axis is Axis.CHILD:
            pool = [
                labeled.label_of(child)
                for child in anchor.element.child_elements()
            ]
        else:
            pool = [
                labeled.label_of(descendant)
                for descendant in anchor.element.iter_descendants()
            ]
        return [element for element in pool if node_matches(qnode, element)]

    def embeddings(qnode: QueryNode, element: LabeledElement) -> list[dict[int, LabeledElement]]:
        """All assignments for the pattern subtree at ``qnode`` given that
        ``qnode`` binds ``element``."""
        partial_lists: list[list[dict[int, LabeledElement]]] = []
        for child in qnode.children:
            child_options: list[dict[int, LabeledElement]] = []
            for candidate in candidates(child, element):
                child_options.extend(embeddings(child, candidate))
            if not child_options:
                return []
            partial_lists.append(child_options)
        results: list[dict[int, LabeledElement]] = []
        for combo in product(*partial_lists):
            assignment: dict[int, LabeledElement] = {qnode.node_id: element}
            for part in combo:
                assignment.update(part)
            results.append(assignment)
        stats.intermediate_results += len(results)
        return results

    if pattern.root.axis is Axis.CHILD:
        root_candidates = [labeled.elements[0]]
    else:
        root_candidates = labeled.elements
    matches: list[Match] = []
    try:
        for element in root_candidates:
            if not node_matches(pattern.root, element):
                continue
            for assignment in embeddings(pattern.root, element):
                matches.append(Match(assignment))
                if limit is not None and len(matches) >= limit:
                    break
            if limit is not None and len(matches) >= limit:
                break
    except DeadlineExceeded as exc:
        if exc.partial is None:
            exc.partial = filter_ordered(pattern, matches)
        raise
    matches = filter_ordered(pattern, matches)
    stats.matches = len(matches)
    return matches
