"""Holistic twig join: TwigStack (Bruno, Koudas, Srivastava, SIGMOD 2002).

TwigStack processes all query-node streams in lock-step.  ``get_next``
returns the next query node whose head element is guaranteed to have the
right descendants to extend a solution; elements are moved onto per-node
stacks encoding ancestor chains compactly, path solutions are emitted when
a leaf is pushed, and path solutions are merge-joined into full twig
matches at the end.

For ancestor-descendant-only twigs TwigStack is I/O optimal: every path
solution it emits joins into at least one full match.  With parent-child
edges it can emit path solutions that die in the merge — the sub-optimality
experiment E5 measures — but it remains *correct*: edge axes are enforced
during path-solution enumeration, so no false match survives.
"""

from __future__ import annotations

from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import (
    INFINITY,
    AlgorithmStats,
    edge_satisfied,
    filter_ordered,
    root_to_node_path,
    salvage,
)
from repro.twig.algorithms.common import merge_path_solutions
from repro.twig.algorithms.ordered import build_partial_order_check
from repro.twig.match import Match
from repro.twig.pattern import QueryNode, TwigPattern

#: A stack entry: the element plus the index of the top of the parent
#: node's stack at push time (-1 when the parent stack was empty / root).
_StackEntry = tuple[LabeledElement, int]

PathSolution = dict[int, LabeledElement]


class _NodeState:
    """Cursor + stack for one query node."""

    __slots__ = ("node", "items", "pos", "stack")

    def __init__(self, node: QueryNode, items: list[LabeledElement]) -> None:
        self.node = node
        self.items = items
        self.pos = 0
        self.stack: list[_StackEntry] = []

    def eof(self) -> bool:
        return self.pos >= len(self.items)

    def head(self) -> LabeledElement | None:
        if self.eof():
            return None
        return self.items[self.pos]

    def next_left(self) -> float:
        head = self.head()
        return INFINITY if head is None else head.region.start

    def next_right(self) -> float:
        head = self.head()
        return INFINITY if head is None else head.region.end

    def advance(self) -> None:
        if not self.eof():
            self.pos += 1

    def clean_stack(self, act_left: float) -> None:
        """Pop stack entries that end before ``act_left`` (no longer open)."""
        while self.stack and self.stack[-1][0].region.end < act_left:
            self.stack.pop()


def twig_stack_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """All matches of ``pattern`` over ``streams`` via TwigStack.

    With a ``deadline``, the main loop checks it cooperatively; on expiry
    the raised :class:`DeadlineExceeded` carries the matches mergeable
    from the path solutions gathered so far as its ``partial``.
    """
    stats = stats if stats is not None else AlgorithmStats()
    states: dict[int, _NodeState] = {
        node.node_id: _NodeState(node, streams[node.node_id])
        for node in pattern.nodes()
    }
    leaves = pattern.leaves()
    path_solutions: dict[int, list[PathSolution]] = {
        leaf.node_id: [] for leaf in leaves
    }

    def state(node: QueryNode) -> _NodeState:
        return states[node.node_id]

    # ------------------------------------------------------------------
    # getNext
    # ------------------------------------------------------------------

    def get_next(q: QueryNode) -> QueryNode:
        if q.is_leaf:
            return q
        for child in q.children:
            result = get_next(child)
            if result is not child and not state(result).eof():
                return result
            # An exhausted descendant branch contributes nextL = INFINITY
            # below; bubbling it up would starve the other branches (their
            # leaves may still have elements whose path solutions must be
            # emitted to merge with solutions already collected here).
        n_min = min(q.children, key=lambda c: state(c).next_left())
        n_max = max(q.children, key=lambda c: state(c).next_left())
        q_state = state(q)
        while q_state.next_right() < state(n_max).next_left():
            q_state.advance()
            stats.elements_scanned += 1
        if q_state.next_left() < state(n_min).next_left():
            return q
        return n_min

    # ------------------------------------------------------------------
    # Path-solution emission
    # ------------------------------------------------------------------

    def emit_path_solutions(leaf: QueryNode) -> None:
        """Enumerate root-to-leaf solutions ending at the just-pushed leaf
        stack entry, enforcing each edge's axis."""
        path = root_to_node_path(leaf)
        leaf_entry = state(leaf).stack[-1]
        solutions = path_solutions[leaf.node_id]

        def ascend(
            level: int, below: LabeledElement, max_index: int, acc: PathSolution
        ) -> None:
            if level < 0:
                solutions.append(dict(acc))
                stats.intermediate_results += 1
                return
            qnode = path[level]
            child_axis = path[level + 1].axis
            node_stack = state(qnode).stack
            for index in range(min(max_index, len(node_stack) - 1), -1, -1):
                element, pointer = node_stack[index]
                if edge_satisfied(element, below, child_axis):
                    acc[qnode.node_id] = element
                    ascend(level - 1, element, pointer, acc)
                    del acc[qnode.node_id]

        acc: PathSolution = {leaf.node_id: leaf_entry[0]}
        if len(path) == 1:
            solutions.append(dict(acc))
            stats.intermediate_results += 1
        else:
            ascend(len(path) - 2, leaf_entry[0], leaf_entry[1], acc)

    # ------------------------------------------------------------------
    # Merge (shared by the complete and the salvage paths)
    # ------------------------------------------------------------------

    def finish(merge_deadline: Deadline | None) -> list[Match]:
        merged = merge_path_solutions(
            pattern,
            leaves,
            path_solutions,
            build_partial_order_check(pattern),
            merge_deadline,
        )
        return filter_ordered(pattern, merged)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    root = pattern.root
    try:
        while any(not state(leaf).eof() for leaf in leaves):
            if deadline is not None:
                deadline.check("twig.twig_stack")
            q = get_next(root)
            q_state = state(q)
            if q_state.eof():
                # Only reachable when every productive stream is drained; no
                # further solutions can form.
                break
            parent_state = state(q.parent) if q.parent is not None else None
            if parent_state is not None:
                parent_state.clean_stack(q_state.next_left())
            if parent_state is None or parent_state.stack:
                q_state.clean_stack(q_state.next_left())
                pointer = len(parent_state.stack) - 1 if parent_state else -1
                head = q_state.head()
                assert head is not None
                q_state.stack.append((head, pointer))
                q_state.advance()
                stats.elements_scanned += 1
                if q.is_leaf:
                    emit_path_solutions(q)
                    q_state.stack.pop()
            else:
                q_state.advance()
                stats.elements_scanned += 1
        matches = finish(deadline)
    except DeadlineExceeded as exc:
        if exc.partial is None:
            # Best-effort salvage: merge what was gathered, under a small
            # fresh budget so the salvage itself stays bounded.
            exc.partial = salvage(finish)
        raise

    stats.matches = len(matches)
    return matches
