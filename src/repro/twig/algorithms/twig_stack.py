"""Holistic twig join: TwigStack (Bruno, Koudas, Srivastava, SIGMOD 2002).

TwigStack processes all query-node streams in lock-step.  ``get_next``
returns the next query node whose head element is guaranteed to have the
right descendants to extend a solution; elements are moved onto per-node
stacks encoding ancestor chains compactly, path solutions are emitted when
a leaf is pushed, and path solutions are merge-joined into full twig
matches at the end.

For ancestor-descendant-only twigs TwigStack is I/O optimal: every path
solution it emits joins into at least one full match.  With parent-child
edges it can emit path solutions that die in the merge — the sub-optimality
experiment E5 measures — but it remains *correct*: edge axes are enforced
during path-solution enumeration, so no false match survives.
"""

from __future__ import annotations

from repro.index.columnar import INF_INT, ColumnarStream
from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import (
    INFINITY,
    AlgorithmStats,
    edge_satisfied,
    filter_ordered,
    root_to_node_path,
    salvage,
)
from repro.twig.algorithms.common import merge_path_solutions
from repro.twig.algorithms.ordered import build_partial_order_check
from repro.twig.match import Match
from repro.twig.pattern import Axis, QueryNode, TwigPattern

#: A stack entry: the element plus the index of the top of the parent
#: node's stack at push time (-1 when the parent stack was empty / root).
_StackEntry = tuple[LabeledElement, int]

PathSolution = dict[int, LabeledElement]


class _NodeState:
    """Cursor + stack for one query node."""

    __slots__ = ("node", "items", "pos", "stack")

    def __init__(self, node: QueryNode, items: list[LabeledElement]) -> None:
        self.node = node
        self.items = items
        self.pos = 0
        self.stack: list[_StackEntry] = []

    def eof(self) -> bool:
        return self.pos >= len(self.items)

    def head(self) -> LabeledElement | None:
        if self.eof():
            return None
        return self.items[self.pos]

    def next_left(self) -> float:
        head = self.head()
        return INFINITY if head is None else head.region.start

    def next_right(self) -> float:
        head = self.head()
        return INFINITY if head is None else head.region.end

    def advance(self) -> None:
        if not self.eof():
            self.pos += 1

    def clean_stack(self, act_left: float) -> None:
        """Pop stack entries that end before ``act_left`` (no longer open)."""
        while self.stack and self.stack[-1][0].region.end < act_left:
            self.stack.pop()


def twig_stack_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """All matches of ``pattern`` over ``streams`` via TwigStack.

    With a ``deadline``, the main loop checks it cooperatively; on expiry
    the raised :class:`DeadlineExceeded` carries the matches mergeable
    from the path solutions gathered so far as its ``partial``.
    """
    stats = stats if stats is not None else AlgorithmStats()
    states: dict[int, _NodeState] = {
        node.node_id: _NodeState(node, streams[node.node_id])
        for node in pattern.nodes()
    }
    leaves = pattern.leaves()
    path_solutions: dict[int, list[PathSolution]] = {
        leaf.node_id: [] for leaf in leaves
    }

    def state(node: QueryNode) -> _NodeState:
        return states[node.node_id]

    # ------------------------------------------------------------------
    # getNext
    # ------------------------------------------------------------------

    def get_next(q: QueryNode) -> QueryNode:
        if q.is_leaf:
            return q
        for child in q.children:
            result = get_next(child)
            if result is not child and not state(result).eof():
                return result
            # An exhausted descendant branch contributes nextL = INFINITY
            # below; bubbling it up would starve the other branches (their
            # leaves may still have elements whose path solutions must be
            # emitted to merge with solutions already collected here).
        n_min = min(q.children, key=lambda c: state(c).next_left())
        n_max = max(q.children, key=lambda c: state(c).next_left())
        q_state = state(q)
        while q_state.next_right() < state(n_max).next_left():
            q_state.advance()
            stats.elements_scanned += 1
        if q_state.next_left() < state(n_min).next_left():
            return q
        return n_min

    # ------------------------------------------------------------------
    # Path-solution emission
    # ------------------------------------------------------------------

    def emit_path_solutions(leaf: QueryNode) -> None:
        """Enumerate root-to-leaf solutions ending at the just-pushed leaf
        stack entry, enforcing each edge's axis."""
        path = root_to_node_path(leaf)
        leaf_entry = state(leaf).stack[-1]
        solutions = path_solutions[leaf.node_id]

        def ascend(
            level: int, below: LabeledElement, max_index: int, acc: PathSolution
        ) -> None:
            if level < 0:
                solutions.append(dict(acc))
                stats.intermediate_results += 1
                return
            qnode = path[level]
            child_axis = path[level + 1].axis
            node_stack = state(qnode).stack
            for index in range(min(max_index, len(node_stack) - 1), -1, -1):
                element, pointer = node_stack[index]
                if edge_satisfied(element, below, child_axis):
                    acc[qnode.node_id] = element
                    ascend(level - 1, element, pointer, acc)
                    del acc[qnode.node_id]

        acc: PathSolution = {leaf.node_id: leaf_entry[0]}
        if len(path) == 1:
            solutions.append(dict(acc))
            stats.intermediate_results += 1
        else:
            ascend(len(path) - 2, leaf_entry[0], leaf_entry[1], acc)

    # ------------------------------------------------------------------
    # Merge (shared by the complete and the salvage paths)
    # ------------------------------------------------------------------

    def finish(merge_deadline: Deadline | None) -> list[Match]:
        merged = merge_path_solutions(
            pattern,
            leaves,
            path_solutions,
            build_partial_order_check(pattern),
            merge_deadline,
        )
        return filter_ordered(pattern, merged)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    root = pattern.root
    try:
        while any(not state(leaf).eof() for leaf in leaves):
            if deadline is not None:
                deadline.check("twig.twig_stack")
            q = get_next(root)
            q_state = state(q)
            if q_state.eof():
                # Only reachable when every productive stream is drained; no
                # further solutions can form.
                break
            parent_state = state(q.parent) if q.parent is not None else None
            if parent_state is not None:
                parent_state.clean_stack(q_state.next_left())
            if parent_state is None or parent_state.stack:
                q_state.clean_stack(q_state.next_left())
                pointer = len(parent_state.stack) - 1 if parent_state else -1
                head = q_state.head()
                assert head is not None
                q_state.stack.append((head, pointer))
                q_state.advance()
                stats.elements_scanned += 1
                if q.is_leaf:
                    emit_path_solutions(q)
                    q_state.stack.pop()
            else:
                q_state.advance()
                stats.elements_scanned += 1
        matches = finish(deadline)
    except DeadlineExceeded as exc:
        if exc.partial is None:
            # Best-effort salvage: merge what was gathered, under a small
            # fresh budget so the salvage itself stays bounded.
            exc.partial = salvage(finish)
        raise

    stats.matches = len(matches)
    return matches


# ======================================================================
# Columnar kernel
# ======================================================================


class _ColumnarNodeState:
    """Cursor + stack for one query node over a columnar view.

    The stack holds ``(stream index, parent-stack pointer)`` int pairs;
    elements are materialized only for final matches.  Beyond the cursor,
    the state caches everything the hot loop would otherwise re-derive
    per iteration: the leaf flag, the parent's state, the child states
    (for ``get_next``), and — for leaves — the precomputed emission plan
    over the root-to-leaf query path.
    """

    __slots__ = (
        "node",
        "view",
        "starts",
        "ends",
        "levels",
        "n",
        "pos",
        "stack",
        "leaf",
        "parent_state",
        "child_states",
        "path_len",
        "emit_plan",
        "acc",
        "solutions",
    )

    def __init__(self, node: QueryNode, view: ColumnarStream) -> None:
        self.node = node
        self.view = view
        self.starts = view.starts
        self.ends = view.ends
        self.levels = view.levels
        self.n = len(view)
        self.pos = 0
        self.stack: list[tuple[int, int]] = []
        self.leaf = node.is_leaf
        self.parent_state: _ColumnarNodeState | None = None
        self.child_states: list[_ColumnarNodeState] = []
        self.path_len = 0
        self.emit_plan: list[tuple] = []
        self.acc: list[int] = []
        self.solutions: list[tuple[int, ...]] = []


def _ascend_int(
    plan: list[tuple],
    level: int,
    below_start: int,
    below_end: int,
    below_level: int,
    max_index: int,
    acc: list[int],
    out: list[tuple[int, ...]],
) -> None:
    """Enumerate ancestor chains for one pushed leaf, as index tuples.

    ``plan[level]`` is ``(stack, starts, ends, levels, want_parent)`` for
    the query node at that depth of the root-to-leaf path; ``acc`` holds
    the stream index chosen per depth and is flattened into ``out`` when
    the root is reached.  Pure int comparisons — nothing materializes.
    """
    stack, starts, ends, levels, want_parent = plan[level]
    next_level = level - 1
    for index in range(min(max_index, len(stack) - 1), -1, -1):
        element_index, pointer = stack[index]
        entry_start = starts[element_index]
        if entry_start < below_start and below_end < ends[element_index]:
            entry_level = levels[element_index]
            if not want_parent or entry_level == below_level - 1:
                acc[level] = element_index
                if next_level < 0:
                    out.append(tuple(acc))
                else:
                    _ascend_int(
                        plan,
                        next_level,
                        entry_start,
                        ends[element_index],
                        entry_level,
                        pointer,
                        acc,
                        out,
                    )


def twig_stack_match_columnar(
    pattern: TwigPattern,
    views: dict[int, ColumnarStream],
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """TwigStack over columnar views — same answers as
    :func:`twig_stack_match`, differentially tested against it.

    Two things make this kernel fast: all structural comparisons are raw
    int reads from the label columns (no ``LabeledElement`` attribute
    chains), and a query node whose parent stack is empty *skips* —
    ``seek_ge`` jumps its cursor to the parent's next head start, because
    no element starting earlier can ever sit under a parent-stack entry
    (all remaining parent elements start at or after that head).
    """
    stats = stats if stats is not None else AlgorithmStats()
    states: dict[int, _ColumnarNodeState] = {
        node.node_id: _ColumnarNodeState(node, views[node.node_id])
        for node in pattern.nodes()
    }
    for node in pattern.nodes():
        node_state = states[node.node_id]
        if node.parent is not None:
            node_state.parent_state = states[node.parent.node_id]
        node_state.child_states = [states[c.node_id] for c in node.children]
    leaves = pattern.leaves()
    leaf_paths: dict[int, list[QueryNode]] = {
        leaf.node_id: root_to_node_path(leaf) for leaf in leaves
    }
    for leaf in leaves:
        path = leaf_paths[leaf.node_id]
        leaf_state = states[leaf.node_id]
        leaf_state.path_len = len(path)
        leaf_state.acc = [0] * len(path)
        # plan[level] serves the ascend step *into* path[level]; the
        # want_parent flag belongs to the edge from path[level+1] down.
        leaf_state.emit_plan = [
            (
                states[path[level].node_id].stack,
                states[path[level].node_id].starts,
                states[path[level].node_id].ends,
                states[path[level].node_id].levels,
                path[level + 1].axis is Axis.CHILD,
            )
            for level in range(len(path) - 1)
        ]

    # ------------------------------------------------------------------
    # getNext (same recursion as the object kernel, on states, int
    # comparisons, no per-call attribute chains)
    # ------------------------------------------------------------------

    scanned = 0

    def get_next(s: _ColumnarNodeState) -> _ColumnarNodeState:
        nonlocal scanned
        if s.leaf:
            return s
        n_min = None
        min_left = INF_INT + 1
        max_left = -1
        for child_state in s.child_states:
            if not child_state.leaf:
                # get_next(leaf) returns the leaf itself; recursion is
                # only informative for interior children.
                result = get_next(child_state)
                if result is not child_state and result.pos < result.n:
                    return result
            child_pos = child_state.pos
            left = (
                child_state.starts[child_pos]
                if child_pos < child_state.n
                else INF_INT
            )
            if left < min_left:
                min_left = left
                n_min = child_state
            if left > max_left:
                max_left = left
        pos = s.pos
        n = s.n
        ends = s.ends
        while pos < n and ends[pos] < max_left:
            pos += 1
            scanned += 1
        s.pos = pos
        if pos < n and s.starts[pos] < min_left:
            return s
        assert n_min is not None
        return n_min

    # ------------------------------------------------------------------
    # Merge: join the per-leaf index tuples on shared query nodes; the
    # winning assignments are the only ones that materialize elements.
    # ------------------------------------------------------------------

    def finish(merge_deadline: Deadline | None) -> list[Match]:
        if pattern.ordered or pattern.order_constraints:
            # Order constraints prune *during* the join (see
            # merge_path_solutions); take the object-solution route so the
            # shared pruning logic applies unchanged.
            object_solutions: dict[int, list[PathSolution]] = {}
            for leaf in leaves:
                ids = [n.node_id for n in leaf_paths[leaf.node_id]]
                element_columns = [states[nid].view.elements for nid in ids]
                object_solutions[leaf.node_id] = [
                    {
                        nid: column[index]
                        for nid, column, index in zip(ids, element_columns, sol)
                    }
                    for sol in states[leaf.node_id].solutions
                ]
            merged = merge_path_solutions(
                pattern,
                leaves,
                object_solutions,
                build_partial_order_check(pattern),
                merge_deadline,
            )
            return filter_ordered(pattern, merged)

        # Partials are flat slot lists (one slot per pattern node, None =
        # unbound) — copying and indexing them beats per-node-id dicts.
        all_nodes = pattern.nodes()
        slot_of = {n.node_id: slot for slot, n in enumerate(all_nodes)}
        partials: list[list[int | None]] | None = None
        bound_slots: set[int] = set()
        for leaf in leaves:
            ids = [n.node_id for n in leaf_paths[leaf.node_id]]
            slots = [slot_of[nid] for nid in ids]
            solutions = states[leaf.node_id].solutions
            if partials is None:
                empty: list[int | None] = [None] * len(all_nodes)
                partials = []
                for sol in solutions:
                    row = empty.copy()
                    for slot, value in zip(slots, sol):
                        row[slot] = value
                    partials.append(row)
                bound_slots = set(slots)
                continue
            slot_set = set(slots)
            shared = sorted(bound_slots & slot_set)
            shared_positions = [slots.index(slot) for slot in shared]
            index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
            for sol in solutions:
                key = tuple(sol[p] for p in shared_positions)
                index.setdefault(key, []).append(sol)
            joined: list[list[int | None]] = []
            lookup = index.get
            for partial in partials:
                if merge_deadline is not None:
                    merge_deadline.check("twig.merge")
                key = tuple(partial[slot] for slot in shared)
                for sol in lookup(key, ()):
                    grown = partial.copy()
                    for slot, value in zip(slots, sol):
                        grown[slot] = value
                    joined.append(grown)
            partials = joined
            bound_slots |= slot_set
        if partials is None:  # a pattern always has at least one leaf
            return []
        # Dedup on int identity, then materialize winners only.
        unique: dict[tuple[int | None, ...], list[int | None]] = {}
        for row in partials:
            unique[tuple(row)] = row
        element_columns = [states[n.node_id].view.elements for n in all_nodes]
        node_ids = [n.node_id for n in all_nodes]
        matches = []
        for row in unique.values():
            match = Match.__new__(Match)
            match.assignments = {
                nid: column[value]
                for nid, column, value in zip(node_ids, element_columns, row)
                if value is not None
            }
            matches.append(match)
        return matches

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    root_state = states[pattern.root.node_id]
    leaf_states = [states[leaf.node_id] for leaf in leaves]
    try:
        while True:
            for leaf_state in leaf_states:
                if leaf_state.pos < leaf_state.n:
                    break
            else:
                break
            if deadline is not None:
                deadline.check("twig.twig_stack")
            q_state = get_next(root_state)
            pos = q_state.pos
            if pos >= q_state.n:
                # Only reachable when every productive stream is drained;
                # no further solutions can form.
                break
            q_left = q_state.starts[pos]
            parent_state = q_state.parent_state
            if parent_state is not None:
                parent_stack = parent_state.stack
                parent_ends = parent_state.ends
                while parent_stack and parent_ends[parent_stack[-1][0]] < q_left:
                    parent_stack.pop()
                if not parent_stack:
                    # Parent stack empty: no element of q starting before
                    # the parent's next head can ever be pushed (every
                    # remaining parent element starts at or after that
                    # head, so none can contain it) — skip straight there.
                    # An exhausted parent makes the target INF_INT,
                    # draining q entirely.
                    scanned += 1
                    parent_pos = parent_state.pos
                    target = (
                        parent_state.starts[parent_pos]
                        if parent_pos < parent_state.n
                        else INF_INT
                    )
                    if target > q_left:
                        q_state.pos = q_state.view.seek_ge(pos + 1, target)
                    else:
                        q_state.pos = pos + 1
                    continue
                pointer = len(parent_stack) - 1
            else:
                pointer = -1
            scanned += 1
            q_state.pos = pos + 1
            if q_state.leaf:
                # A leaf entry lives only for its emission: enumerate the
                # ancestor chains directly instead of push-emit-pop.
                path_len = q_state.path_len
                if path_len == 2:
                    # Root-plus-leaf path (the common flat-twig branch):
                    # one parent-stack sweep, no recursion.
                    stack, starts, ends, levels, want_parent = (
                        q_state.emit_plan[0]
                    )
                    q_end = q_state.ends[pos]
                    want_level = q_state.levels[pos] - 1
                    solutions = q_state.solutions
                    for index in range(min(pointer, len(stack) - 1), -1, -1):
                        element_index = stack[index][0]
                        if (
                            starts[element_index] < q_left
                            and q_end < ends[element_index]
                            and (
                                not want_parent
                                or levels[element_index] == want_level
                            )
                        ):
                            solutions.append((element_index, pos))
                elif path_len == 1:
                    q_state.solutions.append((pos,))
                else:
                    acc = q_state.acc
                    acc[path_len - 1] = pos
                    _ascend_int(
                        q_state.emit_plan,
                        path_len - 2,
                        q_left,
                        q_state.ends[pos],
                        q_state.levels[pos],
                        pointer,
                        acc,
                        q_state.solutions,
                    )
            else:
                own_stack = q_state.stack
                own_ends = q_state.ends
                while own_stack and own_ends[own_stack[-1][0]] < q_left:
                    own_stack.pop()
                own_stack.append((pos, pointer))
        matches = finish(deadline)
    except DeadlineExceeded as exc:
        if exc.partial is None:
            exc.partial = salvage(finish)
        raise
    finally:
        stats.elements_scanned += scanned
        stats.intermediate_results += sum(
            len(states[leaf.node_id].solutions) for leaf in leaves
        )

    stats.matches = len(matches)
    return matches
