"""Binary structural joins (the pre-holistic baseline).

Decomposes the twig into its parent-child / ancestor-descendant edges,
evaluates each edge with the stack-based merge join of Al-Khalifa et al.
("Structural joins: a primitive for efficient XML query pattern matching"),
then stitches the edge pair-lists back into full twig matches with hash
joins.

The point of this baseline (experiment E5) is its weakness: each edge is
evaluated in isolation, so pair lists can be huge even when the final twig
has few matches — exactly the blow-up TwigStack's holistic processing
avoids.
"""

from __future__ import annotations

from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.twig.algorithms.common import AlgorithmStats, filter_ordered
from repro.twig.match import Match
from repro.twig.pattern import Axis, QueryNode, TwigPattern

Pair = tuple[LabeledElement, LabeledElement]


def structural_join_pairs(
    ancestors: list[LabeledElement],
    descendants: list[LabeledElement],
    axis: Axis,
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Pair]:
    """All (ancestor, descendant) pairs satisfying ``axis``.

    Single merge pass over the two document-ordered streams with a stack of
    open ancestors (Stack-Tree-Desc): O(|A| + |D| + output).
    """
    pairs: list[Pair] = []
    stack: list[LabeledElement] = []
    a_index = 0
    for descendant in descendants:
        if deadline is not None:
            deadline.check("twig.structural_join")
        # Push every ancestor-stream element that starts before this
        # descendant; the stack keeps only elements still open here.
        while a_index < len(ancestors) and (
            ancestors[a_index].region.start < descendant.region.start
        ):
            candidate = ancestors[a_index]
            a_index += 1
            while stack and stack[-1].region.end < candidate.region.start:
                stack.pop()
            stack.append(candidate)
        while stack and stack[-1].region.end < descendant.region.start:
            stack.pop()
        if axis is Axis.DESCENDANT:
            pairs.extend((ancestor, descendant) for ancestor in stack)
        else:
            target_level = descendant.region.level - 1
            pairs.extend(
                (ancestor, descendant)
                for ancestor in stack
                if ancestor.region.level == target_level
            )
    if stats is not None:
        stats.elements_scanned += len(ancestors) + len(descendants)
        stats.intermediate_results += len(pairs)
    return pairs


def structural_join_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    stats: AlgorithmStats | None = None,
    reorder: bool = False,
    deadline: Deadline | None = None,
) -> list[Match]:
    """Full twig matching via per-edge structural joins + stitching.

    Edges grow the partial matches one at a time with a hash join on the
    edge's parent node.  By default they are evaluated in pattern
    preorder; with ``reorder=True`` a greedy selectivity-ordered plan is
    used instead — among the edges adjacent to the already-joined node
    set, always take the one whose child stream is smallest, so selective
    branches cut the partials down before wide branches multiply them
    (the join-ordering ablation measures the effect).
    """
    stats = stats if stats is not None else AlgorithmStats()

    partials: list[dict[int, LabeledElement]] = [
        {pattern.root.node_id: element} for element in streams[pattern.root.node_id]
    ]

    def extend_with_edge(parent: QueryNode, child: QueryNode) -> None:
        nonlocal partials
        pairs = structural_join_pairs(
            streams[parent.node_id],
            streams[child.node_id],
            child.axis,
            stats,
            deadline,
        )
        by_parent: dict[int, list[LabeledElement]] = {}
        for ancestor, descendant in pairs:
            by_parent.setdefault(ancestor.order, []).append(descendant)
        extended: list[dict[int, LabeledElement]] = []
        for partial in partials:
            if deadline is not None:
                deadline.check("twig.structural_join")
            anchor = partial[parent.node_id]
            for descendant in by_parent.get(anchor.order, ()):
                grown = dict(partial)
                grown[child.node_id] = descendant
                extended.append(grown)
        partials = extended
        stats.intermediate_results += len(partials)

    for parent, child in _edge_plan(pattern, streams, reorder):
        extend_with_edge(parent, child)

    matches = filter_ordered(pattern, [Match(partial) for partial in partials])
    stats.matches = len(matches)
    return matches


def _edge_plan(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    reorder: bool,
) -> list[tuple[QueryNode, QueryNode]]:
    """The order in which edges extend the partial matches.

    Either pattern preorder (stable default), or greedy smallest-adjacent-
    child-stream first.  Both orders only ever pick edges whose parent
    node is already joined, which the hash-join extension requires.
    """
    if not reorder:
        plan: list[tuple[QueryNode, QueryNode]] = []

        def walk(node: QueryNode) -> None:
            for child in node.children:
                plan.append((node, child))
                walk(child)

        walk(pattern.root)
        return plan

    plan = []
    joined = {pattern.root.node_id}
    frontier: list[tuple[QueryNode, QueryNode]] = [
        (pattern.root, child) for child in pattern.root.children
    ]
    while frontier:
        parent, child = min(
            frontier, key=lambda edge: len(streams[edge[1].node_id])
        )
        frontier.remove((parent, child))
        plan.append((parent, child))
        joined.add(child.node_id)
        frontier.extend((child, grandchild) for grandchild in child.children)
    return plan
