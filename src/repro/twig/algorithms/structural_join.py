"""Binary structural joins (the pre-holistic baseline).

Decomposes the twig into its parent-child / ancestor-descendant edges,
evaluates each edge with the stack-based merge join of Al-Khalifa et al.
("Structural joins: a primitive for efficient XML query pattern matching"),
then stitches the edge pair-lists back into full twig matches with hash
joins.

The point of this baseline (experiment E5) is its weakness: each edge is
evaluated in isolation, so pair lists can be huge even when the final twig
has few matches — exactly the blow-up TwigStack's holistic processing
avoids.
"""

from __future__ import annotations

from repro.index.columnar import ColumnarStream
from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.twig.algorithms.common import AlgorithmStats, filter_ordered
from repro.twig.match import Match
from repro.twig.pattern import Axis, QueryNode, TwigPattern

Pair = tuple[LabeledElement, LabeledElement]


def structural_join_pairs(
    ancestors: list[LabeledElement],
    descendants: list[LabeledElement],
    axis: Axis,
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Pair]:
    """All (ancestor, descendant) pairs satisfying ``axis``.

    Single merge pass over the two document-ordered streams with a stack of
    open ancestors (Stack-Tree-Desc): O(|A| + |D| + output).
    """
    pairs: list[Pair] = []
    stack: list[LabeledElement] = []
    a_index = 0
    for descendant in descendants:
        if deadline is not None:
            deadline.check("twig.structural_join")
        # Push every ancestor-stream element that starts before this
        # descendant; the stack keeps only elements still open here.
        while a_index < len(ancestors) and (
            ancestors[a_index].region.start < descendant.region.start
        ):
            candidate = ancestors[a_index]
            a_index += 1
            while stack and stack[-1].region.end < candidate.region.start:
                stack.pop()
            stack.append(candidate)
        while stack and stack[-1].region.end < descendant.region.start:
            stack.pop()
        if axis is Axis.DESCENDANT:
            pairs.extend((ancestor, descendant) for ancestor in stack)
        else:
            target_level = descendant.region.level - 1
            pairs.extend(
                (ancestor, descendant)
                for ancestor in stack
                if ancestor.region.level == target_level
            )
    if stats is not None:
        stats.elements_scanned += len(ancestors) + len(descendants)
        stats.intermediate_results += len(pairs)
    return pairs


def structural_join_pairs_columnar(
    ancestors: ColumnarStream,
    descendants: ColumnarStream,
    axis: Axis,
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Pair]:
    """Columnar Stack-Tree-Desc — same pairs as
    :func:`structural_join_pairs`, comparing raw label ints.

    The stack holds ancestor *positions*; elements materialize only when
    a pair is emitted.  When the stack empties, no ancestor starting
    before the current descendant can contain any later one (every such
    ancestor was pushed and popped, i.e. ended already), so the
    descendant cursor skips straight to the next ancestor's start.
    """
    pairs: list[Pair] = []
    a_starts = ancestors.starts
    a_ends = ancestors.ends
    a_levels = ancestors.levels
    a_elements = ancestors.elements
    d_starts = descendants.starts
    d_levels = descendants.levels
    d_elements = descendants.elements
    na = len(a_starts)
    nd = len(d_starts)
    stack: list[int] = []
    a_i = 0
    d_i = 0
    while d_i < nd:
        if deadline is not None:
            deadline.check("twig.structural_join")
        d_start = d_starts[d_i]
        # Push every ancestor-stream element that starts before this
        # descendant; the stack keeps only elements still open here.
        while a_i < na and a_starts[a_i] < d_start:
            candidate = a_i
            a_i += 1
            while stack and a_ends[stack[-1]] < a_starts[candidate]:
                stack.pop()
            stack.append(candidate)
        while stack and a_ends[stack[-1]] < d_start:
            stack.pop()
        if stack:
            descendant = d_elements[d_i]
            if axis is Axis.DESCENDANT:
                pairs.extend((a_elements[index], descendant) for index in stack)
            else:
                target_level = d_levels[d_i] - 1
                pairs.extend(
                    (a_elements[index], descendant)
                    for index in stack
                    if a_levels[index] == target_level
                )
            d_i += 1
        elif a_i < na:
            target = a_starts[a_i]
            if target > d_start:
                d_i = descendants.seek_ge(d_i + 1, target)
            else:
                d_i += 1
        else:
            break  # no open and no future ancestors: nothing can pair
    if stats is not None:
        stats.elements_scanned += na + nd
        stats.intermediate_results += len(pairs)
    return pairs


def structural_join_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    stats: AlgorithmStats | None = None,
    reorder: bool = False,
    deadline: Deadline | None = None,
) -> list[Match]:
    """Full twig matching via per-edge structural joins + stitching.

    Edges grow the partial matches one at a time with a hash join on the
    edge's parent node.  By default they are evaluated in pattern
    preorder; with ``reorder=True`` a greedy selectivity-ordered plan is
    used instead — among the edges adjacent to the already-joined node
    set, always take the one whose child stream is smallest, so selective
    branches cut the partials down before wide branches multiply them
    (the join-ordering ablation measures the effect).
    """
    stats = stats if stats is not None else AlgorithmStats()

    partials: list[dict[int, LabeledElement]] = [
        {pattern.root.node_id: element} for element in streams[pattern.root.node_id]
    ]

    def extend_with_edge(parent: QueryNode, child: QueryNode) -> None:
        nonlocal partials
        pairs = structural_join_pairs(
            streams[parent.node_id],
            streams[child.node_id],
            child.axis,
            stats,
            deadline,
        )
        by_parent: dict[int, list[LabeledElement]] = {}
        for ancestor, descendant in pairs:
            by_parent.setdefault(ancestor.order, []).append(descendant)
        extended: list[dict[int, LabeledElement]] = []
        for partial in partials:
            if deadline is not None:
                deadline.check("twig.structural_join")
            anchor = partial[parent.node_id]
            for descendant in by_parent.get(anchor.order, ()):
                grown = dict(partial)
                grown[child.node_id] = descendant
                extended.append(grown)
        partials = extended
        stats.intermediate_results += len(partials)

    for parent, child in _edge_plan(pattern, streams, reorder):
        extend_with_edge(parent, child)

    matches = filter_ordered(pattern, [Match(partial) for partial in partials])
    stats.matches = len(matches)
    return matches


def structural_join_match_columnar(
    pattern: TwigPattern,
    views: dict[int, ColumnarStream],
    stats: AlgorithmStats | None = None,
    reorder: bool = False,
    deadline: Deadline | None = None,
) -> list[Match]:
    """Twig matching via columnar per-edge structural joins.

    Identical stitching to :func:`structural_join_match` (the partial
    dicts hold :class:`LabeledElement` objects either way); only the
    per-edge pair enumeration runs on the columnar kernels.
    """
    stats = stats if stats is not None else AlgorithmStats()

    partials: list[dict[int, LabeledElement]] = [
        {pattern.root.node_id: element}
        for element in views[pattern.root.node_id].elements
    ]

    def extend_with_edge(parent: QueryNode, child: QueryNode) -> None:
        nonlocal partials
        pairs = structural_join_pairs_columnar(
            views[parent.node_id],
            views[child.node_id],
            child.axis,
            stats,
            deadline,
        )
        by_parent: dict[int, list[LabeledElement]] = {}
        for ancestor, descendant in pairs:
            by_parent.setdefault(ancestor.order, []).append(descendant)
        extended: list[dict[int, LabeledElement]] = []
        for partial in partials:
            if deadline is not None:
                deadline.check("twig.structural_join")
            anchor = partial[parent.node_id]
            for descendant in by_parent.get(anchor.order, ()):
                grown = dict(partial)
                grown[child.node_id] = descendant
                extended.append(grown)
        partials = extended
        stats.intermediate_results += len(partials)

    for parent, child in _edge_plan(pattern, views, reorder):
        extend_with_edge(parent, child)

    matches = filter_ordered(pattern, [Match(partial) for partial in partials])
    stats.matches = len(matches)
    return matches


def _edge_plan(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]] | dict[int, ColumnarStream],
    reorder: bool,
) -> list[tuple[QueryNode, QueryNode]]:
    """The order in which edges extend the partial matches.

    Either pattern preorder (stable default), or greedy smallest-adjacent-
    child-stream first.  Both orders only ever pick edges whose parent
    node is already joined, which the hash-join extension requires.
    """
    if not reorder:
        plan: list[tuple[QueryNode, QueryNode]] = []

        def walk(node: QueryNode) -> None:
            for child in node.children:
                plan.append((node, child))
                walk(child)

        walk(pattern.root)
        return plan

    plan = []
    joined = {pattern.root.node_id}
    frontier: list[tuple[QueryNode, QueryNode]] = [
        (pattern.root, child) for child in pattern.root.children
    ]
    while frontier:
        parent, child = min(
            frontier, key=lambda edge: len(streams[edge[1].node_id])
        )
        frontier.remove((parent, child))
        plan.append((parent, child))
        joined.add(child.node_id)
        frontier.extend((child, grandchild) for grandchild in child.children)
    return plan
