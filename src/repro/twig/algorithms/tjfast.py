"""TJFast: twig matching from leaf streams only (extended Dewey).

Lu, Ling, Chan, Chen — "From Region Encoding to Extended Dewey: On
Efficient Processing of XML Twig Pattern Matching" (VLDB 2005), the
algorithm the LotusX demo's engine lineage is built on.

The key idea: because an extended Dewey label *encodes the whole tag
path*, a query's internal nodes never need their own streams.  Only the
streams of the pattern's **leaf** nodes are scanned; for each leaf
element, the root-to-leaf tag path is recovered from its label alone and
matched against the pattern's root-to-leaf chain (tags and axes), binding
internal query nodes to label prefixes (= ancestors).  Path solutions are
then merge-joined across leaves exactly as in TwigStack's second phase.

The payoff measured in experiment E9: ``elements_scanned`` counts only
leaf-stream elements, so twigs over huge internal streams (``//site``,
``//item`` …) touch a fraction of what TwigStack reads.

Unlike the stream-only algorithms, TJFast takes the corpus term index
explicitly: internal-node value predicates are evaluated on the ancestor
elements it derives itself (the other algorithms get this for free from
their pre-filtered internal streams).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.index.columnar import ColumnarStream
from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import AlgorithmStats, filter_ordered, salvage
from repro.twig.algorithms.ordered import build_partial_order_check
from repro.twig.algorithms.common import merge_path_solutions
from repro.twig.match import Match
from repro.twig.pattern import Axis, QueryNode, TwigPattern

PathSolution = dict[int, LabeledElement]


def tjfast_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    term_index: TermIndex,
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """All matches of ``pattern``; only leaf-node streams are read.

    ``streams`` uses the same layout as the other algorithms (so builds
    and benchmarks are interchangeable), but entries for internal query
    nodes are ignored — their bindings come from label prefixes.
    """
    stats = stats if stats is not None else AlgorithmStats()
    leaves = pattern.leaves()
    path_solutions: dict[int, list[PathSolution]] = {
        leaf.node_id: [] for leaf in leaves
    }

    def finish(merge_deadline: Deadline | None) -> list[Match]:
        merged = merge_path_solutions(
            pattern,
            leaves,
            path_solutions,
            build_partial_order_check(pattern),
            merge_deadline,
        )
        return filter_ordered(pattern, merged)

    try:
        for leaf in leaves:
            solutions = path_solutions[leaf.node_id]
            chain = _root_chain(leaf)
            for element in streams[leaf.node_id]:
                if deadline is not None:
                    deadline.check("twig.tjfast")
                stats.elements_scanned += 1
                for solution in _embed_path(chain, element, term_index):
                    solutions.append(solution)
                    stats.intermediate_results += 1
        matches = finish(deadline)
    except DeadlineExceeded as exc:
        if exc.partial is None:
            exc.partial = salvage(finish)
        raise

    stats.matches = len(matches)
    return matches


def tjfast_match_columnar(
    pattern: TwigPattern,
    views: dict[int, ColumnarStream],
    term_index: TermIndex,
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """Columnar TJFast: embeddings are decided per *tag path*, not per
    element.

    This is where the ``path_ids`` column plays the extended-Dewey role:
    every element carries its DataGuide path id, and two elements share
    an id exactly when they share their whole root-to-leaf tag path — the
    only input the chain embedding reads.  The depth assignments of each
    distinct path are therefore computed once and cached by path id; per
    element the hot loop is a dict probe on an int, and ancestors are
    materialized only for elements whose path embeds at all.
    """
    stats = stats if stats is not None else AlgorithmStats()
    leaves = pattern.leaves()
    path_solutions: dict[int, list[PathSolution]] = {
        leaf.node_id: [] for leaf in leaves
    }

    def finish(merge_deadline: Deadline | None) -> list[Match]:
        merged = merge_path_solutions(
            pattern,
            leaves,
            path_solutions,
            build_partial_order_check(pattern),
            merge_deadline,
        )
        return filter_ordered(pattern, merged)

    try:
        for leaf in leaves:
            solutions = path_solutions[leaf.node_id]
            chain = _root_chain(leaf)
            internal_predicates = [
                (index, qnode.predicate)
                for index, qnode in enumerate(chain[:-1])
                if qnode.predicate is not None
            ]
            view = views[leaf.node_id]
            path_ids = view.path_ids
            elements = view.elements
            assignments_for: dict[int, list[tuple[int, ...]]] = {}
            for position in range(len(path_ids)):
                if deadline is not None:
                    deadline.check("twig.tjfast")
                stats.elements_scanned += 1
                path_id = path_ids[position]
                assignments = assignments_for.get(path_id)
                if assignments is None:
                    assignments = _chain_assignments(
                        chain, elements[position].path_node.path
                    )
                    assignments_for[path_id] = assignments
                if not assignments:
                    continue
                ancestors: list[LabeledElement] = []
                current: LabeledElement | None = elements[position]
                while current is not None:
                    ancestors.append(current)
                    current = current.parent
                ancestors.reverse()
                for depths in assignments:
                    if any(
                        not predicate.matches(ancestors[depths[index]], term_index)
                        for index, predicate in internal_predicates
                    ):
                        continue
                    solutions.append(
                        {
                            chain[index].node_id: ancestors[depth]
                            for index, depth in enumerate(depths)
                        }
                    )
                    stats.intermediate_results += 1
        matches = finish(deadline)
    except DeadlineExceeded as exc:
        if exc.partial is None:
            exc.partial = salvage(finish)
        raise

    stats.matches = len(matches)
    return matches


def _chain_assignments(
    chain: list[QueryNode], tags: Sequence[str]
) -> list[tuple[int, ...]]:
    """All depth assignments embedding the query chain onto a tag path.

    The tags-only core of :func:`_embed_path`: axis and tag constraints
    depend only on the path, so the result is cacheable per DataGuide
    path id.  Predicates are *not* checked here — they depend on element
    content and stay with the per-element loop.
    """
    leaf_depth = len(tags) - 1
    assignments: list[tuple[int, ...]] = []
    depths: list[int] = []

    def place(index: int, min_depth: int) -> None:
        if index == len(chain):
            assignments.append(tuple(depths))
            return
        qnode = chain[index]
        is_leaf = index == len(chain) - 1
        if index == 0:
            allowed: range | tuple[int, ...]
            allowed = (0,) if qnode.axis is Axis.CHILD else range(leaf_depth + 1)
        elif qnode.axis is Axis.CHILD:
            allowed = (min_depth,)
        else:
            allowed = range(min_depth, leaf_depth + 1)
        for depth in allowed:
            if depth > leaf_depth:
                continue
            if is_leaf and depth != leaf_depth:
                continue
            if not qnode.accepts_tag(tags[depth]):
                continue
            depths.append(depth)
            place(index + 1, depth + 1)
            depths.pop()

    place(0, 0)
    return assignments


def _root_chain(leaf: QueryNode) -> list[QueryNode]:
    chain = [leaf]
    while chain[-1].parent is not None:
        chain.append(chain[-1].parent)
    chain.reverse()
    return chain


def _embed_path(
    chain: list[QueryNode], element: LabeledElement, term_index: TermIndex
) -> list[PathSolution]:
    """All embeddings of the root-to-leaf query chain onto the leaf
    element's ancestor path.

    The ancestor path is exactly what the extended Dewey label encodes;
    we materialize it through parent pointers, the in-memory equivalent
    of the label-prefix lookups the on-disk algorithm performs.
    Internal-node predicates are checked on the bound ancestors (the
    leaf's own predicate was already applied to its stream).
    """
    ancestors: list[LabeledElement] = []
    current: LabeledElement | None = element
    while current is not None:
        ancestors.append(current)
        current = current.parent
    ancestors.reverse()
    leaf_depth = len(ancestors) - 1

    def binds(qnode: QueryNode, depth: int, check_predicate: bool) -> bool:
        bound = ancestors[depth]
        if not qnode.accepts_tag(bound.tag):
            return False
        if check_predicate and qnode.predicate is not None:
            return qnode.predicate.matches(bound, term_index)
        return True

    solutions: list[PathSolution] = []

    def place(index: int, min_depth: int, acc: PathSolution) -> None:
        if index == len(chain):
            solutions.append(dict(acc))
            return
        qnode = chain[index]
        is_leaf = index == len(chain) - 1
        # Depths the node's axis allows relative to its parent's binding
        # (the pattern root's CHILD axis pins it to the document root).
        if index == 0:
            allowed: range | list[int]
            allowed = [0] if qnode.axis is Axis.CHILD else range(leaf_depth + 1)
        elif qnode.axis is Axis.CHILD:
            allowed = [min_depth]
        else:
            allowed = range(min_depth, leaf_depth + 1)
        for depth in allowed:
            if depth > leaf_depth:
                continue
            if is_leaf and depth != leaf_depth:
                continue
            if not binds(qnode, depth, check_predicate=not is_leaf):
                continue
            acc[qnode.node_id] = ancestors[depth]
            place(index + 1, depth + 1, acc)
            del acc[qnode.node_id]

    place(0, 0, {})
    return solutions
