"""TJFast: twig matching from leaf streams only (extended Dewey).

Lu, Ling, Chan, Chen — "From Region Encoding to Extended Dewey: On
Efficient Processing of XML Twig Pattern Matching" (VLDB 2005), the
algorithm the LotusX demo's engine lineage is built on.

The key idea: because an extended Dewey label *encodes the whole tag
path*, a query's internal nodes never need their own streams.  Only the
streams of the pattern's **leaf** nodes are scanned; for each leaf
element, the root-to-leaf tag path is recovered from its label alone and
matched against the pattern's root-to-leaf chain (tags and axes), binding
internal query nodes to label prefixes (= ancestors).  Path solutions are
then merge-joined across leaves exactly as in TwigStack's second phase.

The payoff measured in experiment E9: ``elements_scanned`` counts only
leaf-stream elements, so twigs over huge internal streams (``//site``,
``//item`` …) touch a fraction of what TwigStack reads.

Unlike the stream-only algorithms, TJFast takes the corpus term index
explicitly: internal-node value predicates are evaluated on the ancestor
elements it derives itself (the other algorithms get this for free from
their pre-filtered internal streams).
"""

from __future__ import annotations

from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import AlgorithmStats, filter_ordered, salvage
from repro.twig.algorithms.ordered import build_partial_order_check
from repro.twig.algorithms.common import merge_path_solutions
from repro.twig.match import Match
from repro.twig.pattern import Axis, QueryNode, TwigPattern

PathSolution = dict[int, LabeledElement]


def tjfast_match(
    pattern: TwigPattern,
    streams: dict[int, list[LabeledElement]],
    term_index: TermIndex,
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """All matches of ``pattern``; only leaf-node streams are read.

    ``streams`` uses the same layout as the other algorithms (so builds
    and benchmarks are interchangeable), but entries for internal query
    nodes are ignored — their bindings come from label prefixes.
    """
    stats = stats if stats is not None else AlgorithmStats()
    leaves = pattern.leaves()
    path_solutions: dict[int, list[PathSolution]] = {
        leaf.node_id: [] for leaf in leaves
    }

    def finish(merge_deadline: Deadline | None) -> list[Match]:
        merged = merge_path_solutions(
            pattern,
            leaves,
            path_solutions,
            build_partial_order_check(pattern),
            merge_deadline,
        )
        return filter_ordered(pattern, merged)

    try:
        for leaf in leaves:
            solutions = path_solutions[leaf.node_id]
            chain = _root_chain(leaf)
            for element in streams[leaf.node_id]:
                if deadline is not None:
                    deadline.check("twig.tjfast")
                stats.elements_scanned += 1
                for solution in _embed_path(chain, element, term_index):
                    solutions.append(solution)
                    stats.intermediate_results += 1
        matches = finish(deadline)
    except DeadlineExceeded as exc:
        if exc.partial is None:
            exc.partial = salvage(finish)
        raise

    stats.matches = len(matches)
    return matches


def _root_chain(leaf: QueryNode) -> list[QueryNode]:
    chain = [leaf]
    while chain[-1].parent is not None:
        chain.append(chain[-1].parent)
    chain.reverse()
    return chain


def _embed_path(
    chain: list[QueryNode], element: LabeledElement, term_index: TermIndex
) -> list[PathSolution]:
    """All embeddings of the root-to-leaf query chain onto the leaf
    element's ancestor path.

    The ancestor path is exactly what the extended Dewey label encodes;
    we materialize it through parent pointers, the in-memory equivalent
    of the label-prefix lookups the on-disk algorithm performs.
    Internal-node predicates are checked on the bound ancestors (the
    leaf's own predicate was already applied to its stream).
    """
    ancestors: list[LabeledElement] = []
    current: LabeledElement | None = element
    while current is not None:
        ancestors.append(current)
        current = current.parent
    ancestors.reverse()
    leaf_depth = len(ancestors) - 1

    def binds(qnode: QueryNode, depth: int, check_predicate: bool) -> bool:
        bound = ancestors[depth]
        if not qnode.accepts_tag(bound.tag):
            return False
        if check_predicate and qnode.predicate is not None:
            return qnode.predicate.matches(bound, term_index)
        return True

    solutions: list[PathSolution] = []

    def place(index: int, min_depth: int, acc: PathSolution) -> None:
        if index == len(chain):
            solutions.append(dict(acc))
            return
        qnode = chain[index]
        is_leaf = index == len(chain) - 1
        # Depths the node's axis allows relative to its parent's binding
        # (the pattern root's CHILD axis pins it to the document root).
        if index == 0:
            allowed: range | list[int]
            allowed = [0] if qnode.axis is Axis.CHILD else range(leaf_depth + 1)
        elif qnode.axis is Axis.CHILD:
            allowed = [min_depth]
        else:
            allowed = range(min_depth, leaf_depth + 1)
        for depth in allowed:
            if depth > leaf_depth:
                continue
            if is_leaf and depth != leaf_depth:
                continue
            if not binds(qnode, depth, check_predicate=not is_leaf):
                continue
            acc[qnode.node_id] = ancestors[depth]
            place(index + 1, depth + 1, acc)
            del acc[qnode.node_id]

    place(0, 0, {})
    return solutions
