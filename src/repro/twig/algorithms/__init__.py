"""Twig-matching algorithms: naive oracle, binary structural joins, and
the holistic PathStack / TwigStack family, plus order-constraint support."""

from repro.twig.algorithms.common import (
    AlgorithmStats,
    build_streams,
    edge_satisfied,
    filter_ordered,
)
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.ordered import (
    build_partial_order_check,
    order_constraint_pairs,
)
from repro.twig.algorithms.path_stack import path_stack_match
from repro.twig.algorithms.tjfast import tjfast_match
from repro.twig.algorithms.structural_join import (
    structural_join_match,
    structural_join_pairs,
)
from repro.twig.algorithms.twig_stack import twig_stack_match

__all__ = [
    "AlgorithmStats",
    "build_partial_order_check",
    "build_streams",
    "edge_satisfied",
    "filter_ordered",
    "naive_match",
    "order_constraint_pairs",
    "path_stack_match",
    "structural_join_match",
    "structural_join_pairs",
    "tjfast_match",
    "twig_stack_match",
]
