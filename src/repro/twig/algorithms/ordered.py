"""Order-sensitive twig matching support.

The abstract's "order sensitive queries": sibling query nodes (under the
``ordered`` flag) and explicit ``order_constraints`` require their matched
elements to appear in document order with disjoint subtrees.

Two mechanisms implement this:

* every algorithm applies :func:`~repro.twig.match.satisfies_order` as a
  final filter (correctness), and
* the holistic algorithms prune during their merge phase using
  :func:`build_partial_order_check`, which validates a *partial* match as
  soon as both endpoints of any constraint are bound — so violating
  combinations never multiply (the overhead/benefit is experiment E6).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.labeling.assign import LabeledElement
from repro.twig.pattern import TwigPattern

PartialCheck = Callable[[Mapping[int, LabeledElement]], bool]


def order_constraint_pairs(pattern: TwigPattern) -> list[tuple[int, int]]:
    """All (before_id, after_id) pairs the pattern requires.

    With ``pattern.ordered``, every adjacent sibling pair contributes a
    constraint (transitivity of *entirely-before* makes adjacent pairs
    sufficient); explicit constraints are always included.
    """
    pairs: list[tuple[int, int]] = list(pattern.order_constraints)
    if pattern.ordered:
        for node in pattern.nodes():
            for earlier, later in zip(node.children, node.children[1:]):
                pairs.append((earlier.node_id, later.node_id))
    return pairs


def build_partial_order_check(pattern: TwigPattern) -> PartialCheck | None:
    """A predicate validating partial matches against order constraints.

    Returns None when the pattern has no order requirements (so callers
    can skip the check entirely).  The returned predicate only evaluates
    constraints whose two nodes are both bound, so it is safe to call on
    any partial assignment.
    """
    pairs = tuple(order_constraint_pairs(pattern))
    if not pairs:
        return None

    def check(assignment: Mapping[int, LabeledElement]) -> bool:
        get = assignment.get
        for before_id, after_id in pairs:
            first = get(before_id)
            if first is None:
                continue
            second = get(after_id)
            if second is None:
                continue
            # entirely_before, inlined: runs once per grown partial in
            # the merge loops, so attribute chains matter here.
            if first.region.end >= second.region.start:
                return False
        return True

    return check
