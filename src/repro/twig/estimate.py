"""Twig cardinality estimation from the DataGuide.

Estimates how many embeddings a twig pattern has *without evaluating it*,
using only the structural summary: per-position element counts give exact
per-edge fanouts, combined under the classical attribute-value-
independence assumption.  Value predicates contribute heuristic
selectivities from the term index's document frequencies.

The estimate drives nothing critical — `explain`/`profile` surface it and
experiment E12 measures its q-error — but it is the standard first
building block of a cost-based twig optimizer, so the repository ships
it with its accuracy characterized rather than assumed.

Model: for a query node ``q`` bound to a DataGuide position ``p``, the
expected number of embeddings of ``q``'s subtree per single element at
``p`` is::

    per_element(q, p) = Π_{child c of q}  sel(c) ·
        Σ_{feasible position p_c of c under p}
            count(p_c) / count(p) · per_element(c, p_c)

(the count ratio is the *exact* average fanout from ``p`` to ``p_c``;
independence enters when the per-child factors are multiplied).  The
total is ``Σ_p count(p) · sel(root) · per_element(root, p)`` over the
root's candidate positions.  Optional branches contribute nothing (they
never filter); order constraints are ignored (an over-estimate by
design).
"""

from __future__ import annotations

from repro.index.term_index import TermIndex
from repro.summary.dataguide import DataGuide, PathNode
from repro.twig.pattern import (
    AbsentBranchPredicate,
    Axis,
    ContainsPredicate,
    EqualsPredicate,
    NotPredicate,
    Predicate,
    QueryNode,
    RangePredicate,
    TwigPattern,
)

#: Selectivity assumed for numeric range predicates (the classical guess).
RANGE_SELECTIVITY = 1.0 / 3.0

#: Selectivity floor — no predicate is estimated to kill everything.
MIN_SELECTIVITY = 0.001


def estimate_cardinality(
    pattern: TwigPattern,
    guide: DataGuide,
    term_index: TermIndex | None = None,
) -> float:
    """Estimated number of embeddings of ``pattern``.

    With ``term_index`` value predicates contribute selectivities; without
    it they are ignored (structure-only estimate).
    """
    # Imported lazily: context imports the twig package, so a top-level
    # import here would be circular.
    from repro.autocomplete.context import candidate_positions

    skeleton = pattern.required_skeleton() if pattern.has_optional() else pattern
    positions = candidate_positions(skeleton, guide)
    memo: dict[tuple[int, int], float] = {}

    def feasible_below(child: QueryNode, parent_position: PathNode):
        kept = positions[child.node_id]
        if child.axis is Axis.CHILD:
            return [p for p in kept if p.parent is parent_position]
        return [
            p
            for p in kept
            if p is not parent_position and _is_guide_descendant(p, parent_position)
        ]

    def node_population(node: QueryNode) -> int:
        """Elements at the node's candidate positions — the population a
        value predicate's document frequency is compared against."""
        return sum(p.count for p in positions[node.node_id])

    def per_element(node: QueryNode, position: PathNode) -> float:
        key = (node.node_id, position.node_id)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = 1.0
        for child in node.children:
            expected = 0.0
            for child_position in feasible_below(child, position):
                fanout = child_position.count / max(1, position.count)
                expected += fanout * per_element(child, child_position)
            result *= expected * _selectivity(
                child.predicate, term_index, node_population(child)
            )
        memo[key] = result
        return result

    total = 0.0
    for position in positions[skeleton.root.node_id]:
        total += position.count * per_element(skeleton.root, position)
    return total * _selectivity(
        skeleton.root.predicate, term_index, node_population(skeleton.root)
    )


def q_error(estimate: float, actual: float) -> float:
    """The symmetric ratio error, ≥ 1.0 (1.0 = exact).

    Zeroes are smoothed to 1 so empty results compare sanely.
    """
    smoothed_estimate = max(estimate, 1.0)
    smoothed_actual = max(float(actual), 1.0)
    return max(
        smoothed_estimate / smoothed_actual, smoothed_actual / smoothed_estimate
    )


def _selectivity(
    predicate: Predicate | None,
    term_index: TermIndex | None,
    population: int,
) -> float:
    if predicate is None or term_index is None:
        return 1.0
    raw = _raw_selectivity(predicate, term_index, max(1, population))
    return max(MIN_SELECTIVITY, min(1.0, raw))


def _raw_selectivity(
    predicate: Predicate, term_index: TermIndex, population: int
) -> float:
    """Estimated fraction of the node's *position-local* population that
    satisfies the predicate.

    Document frequencies are corpus-wide (the index keeps no per-path
    frequencies), so a term concentrated at this node's positions gets an
    accurate ratio while a term spread elsewhere over-estimates — the
    honest failure mode E12 quantifies.
    """
    if isinstance(predicate, ContainsPredicate):
        selectivity = 1.0
        for term in predicate.terms():
            selectivity *= min(
                1.0, term_index.document_frequency(term) / population
            )
        return selectivity
    if isinstance(predicate, EqualsPredicate):
        return min(1.0, term_index.value_count(predicate.value) / population)
    if isinstance(predicate, RangePredicate):
        return RANGE_SELECTIVITY
    if isinstance(predicate, NotPredicate):
        return 1.0 - _raw_selectivity(predicate.inner, term_index, population)
    if isinstance(predicate, AbsentBranchPredicate):
        # Structure-only heuristic: treat as moderately selective.
        return 0.5
    return 1.0


def _is_guide_descendant(node: PathNode, ancestor: PathNode) -> bool:
    current = node.parent
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False
