"""Algorithm selection for twig evaluation.

A tiny rule-based planner: linear paths go to PathStack, everything else
to TwigStack.  The naive matcher and binary structural joins are never
chosen automatically — they exist as baselines — but can be forced, which
the benchmarks and the cross-checking tests do.
"""

from __future__ import annotations

import enum

from repro.index.element_index import StreamFactory
from repro.labeling.assign import LabeledDocument
from repro.resilience.deadline import Deadline
from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.path_stack import path_stack_match
from repro.twig.algorithms.structural_join import structural_join_match
from repro.twig.algorithms.tjfast import tjfast_match
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import Match
from repro.twig.pattern import TwigPattern


class Algorithm(enum.Enum):
    """Selectable twig-matching algorithms."""

    AUTO = "auto"
    NAIVE = "naive"
    STRUCTURAL_JOIN = "structural-join"
    PATH_STACK = "path-stack"
    TWIG_STACK = "twig-stack"
    TJFAST = "tjfast"


def choose_algorithm(pattern: TwigPattern) -> Algorithm:
    """The planner's pick for ``pattern``."""
    if pattern.is_path():
        return Algorithm.PATH_STACK
    return Algorithm.TWIG_STACK


def evaluate(
    pattern: TwigPattern,
    labeled: LabeledDocument,
    factory: StreamFactory,
    algorithm: Algorithm = Algorithm.AUTO,
    stats: AlgorithmStats | None = None,
    prune_streams: bool = False,
    deadline: Deadline | None = None,
) -> list[Match]:
    """Evaluate ``pattern`` with the chosen (or planned) algorithm.

    ``prune_streams`` filters every node's stream by its DataGuide
    candidate positions first (see
    :func:`repro.twig.algorithms.common.build_streams`).

    ``deadline`` is checked cooperatively inside every algorithm's main
    loop; on expiry a
    :class:`~repro.resilience.errors.DeadlineExceeded` is raised, with
    whatever well-formed partial matches could be salvaged attached as
    its ``partial``.
    """
    if algorithm is Algorithm.AUTO:
        algorithm = choose_algorithm(pattern)
    if pattern.has_optional():
        from repro.twig.match import sort_matches
        from repro.twig.optional import (
            extend_with_optionals,
            validate_optional_pattern,
        )

        validate_optional_pattern(pattern)
        skeleton = pattern.required_skeleton()
        skeleton_matches = evaluate(
            skeleton, labeled, factory, algorithm, stats, prune_streams, deadline
        )
        return sort_matches(
            extend_with_optionals(
                pattern, skeleton_matches, labeled, factory.term_index
            )
        )
    if algorithm is Algorithm.NAIVE:
        return naive_match(
            pattern, labeled, factory.term_index, stats, deadline=deadline
        )
    guide = labeled.guide if prune_streams else None
    streams = build_streams(pattern, factory, guide, deadline)
    if algorithm is Algorithm.PATH_STACK:
        return path_stack_match(pattern, streams, stats, deadline)
    if algorithm is Algorithm.STRUCTURAL_JOIN:
        return structural_join_match(pattern, streams, stats, deadline=deadline)
    if algorithm is Algorithm.TJFAST:
        return tjfast_match(pattern, streams, factory.term_index, stats, deadline)
    return twig_stack_match(pattern, streams, stats, deadline)
