"""Algorithm selection and plan compilation for twig evaluation.

A tiny rule-based planner: linear paths go to PathStack, everything else
to TwigStack.  The naive matcher and binary structural joins are never
chosen automatically — they exist as baselines — but can be forced, which
the benchmarks and the cross-checking tests do.

Evaluation is split into two phases so the engine can cache the first:

* :func:`compile_plan` resolves the algorithm, validates the pattern,
  and builds the per-node candidate streams (columnar views when the
  factory supports them, object lists otherwise) into an immutable
  :class:`CompiledPlan`;
* :func:`execute_plan` runs the matching kernel over those streams.

Streams are shared, read-only snapshots of the index, so a compiled plan
stays valid for as long as the factory it was built from — the engine
keys its plan cache by serving generation to get invalidation on hot
reload for free.  :func:`evaluate` composes the two phases for callers
that don't cache.
"""

from __future__ import annotations

import enum

from repro.index.columnar import ColumnarStream
from repro.index.element_index import StreamFactory
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.resilience.deadline import Deadline
from repro.twig.algorithms.common import (
    AlgorithmStats,
    build_columnar_streams,
    build_streams,
)
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.path_stack import (
    path_stack_match,
    path_stack_match_columnar,
)
from repro.twig.algorithms.structural_join import (
    structural_join_match,
    structural_join_match_columnar,
)
from repro.twig.algorithms.tjfast import tjfast_match, tjfast_match_columnar
from repro.twig.algorithms.twig_stack import (
    twig_stack_match,
    twig_stack_match_columnar,
)
from repro.twig.match import Match
from repro.twig.pattern import TwigPattern


class Algorithm(enum.Enum):
    """Selectable twig-matching algorithms."""

    AUTO = "auto"
    NAIVE = "naive"
    STRUCTURAL_JOIN = "structural-join"
    PATH_STACK = "path-stack"
    TWIG_STACK = "twig-stack"
    TJFAST = "tjfast"


def choose_algorithm(pattern: TwigPattern) -> Algorithm:
    """The planner's pick for ``pattern``."""
    if pattern.is_path():
        return Algorithm.PATH_STACK
    return Algorithm.TWIG_STACK


class CompiledPlan:
    """A pattern resolved to an algorithm plus its candidate streams.

    ``kind`` selects the execution strategy:

    * ``"columnar"`` — ``views`` holds per-node
      :class:`~repro.index.columnar.ColumnarStream` views for the
      columnar kernels;
    * ``"object"`` — ``streams`` holds the per-node element lists the
      original kernels consume (the fallback when the factory has no
      columnar index, e.g. pre-columnar snapshots);
    * ``"naive"`` — no streams; the oracle walks the document directly;
    * ``"optional"`` — ``inner`` is the compiled plan of the required
      skeleton; optional nodes are grafted on after execution.

    Plans hold references to shared, immutable index data — execute as
    often as you like, but never mutate the streams.
    """

    __slots__ = (
        "kind",
        "pattern",
        "algorithm",
        "prune_streams",
        "streams",
        "views",
        "inner",
    )

    def __init__(
        self,
        kind: str,
        pattern: TwigPattern,
        algorithm: Algorithm,
        prune_streams: bool,
        streams: dict[int, list[LabeledElement]] | None = None,
        views: dict[int, ColumnarStream] | None = None,
        inner: CompiledPlan | None = None,
    ) -> None:
        self.kind = kind
        self.pattern = pattern
        self.algorithm = algorithm
        self.prune_streams = prune_streams
        self.streams = streams
        self.views = views
        self.inner = inner

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(kind={self.kind!r},"
            f" algorithm={self.algorithm.value!r})"
        )


def compile_plan(
    pattern: TwigPattern,
    labeled: LabeledDocument,
    factory: StreamFactory,
    algorithm: Algorithm = Algorithm.AUTO,
    prune_streams: bool = False,
    deadline: Deadline | None = None,
    use_columnar: bool | None = None,
) -> CompiledPlan:
    """Resolve the algorithm and build the candidate streams for
    ``pattern``.

    ``use_columnar`` defaults to whatever the factory supports; pass
    ``False`` to force the object-stream kernels (the cross-check tests
    compare the two).  Stream building checks ``deadline`` at the same
    ``twig.build_streams`` checkpoints as before the split.
    """
    if algorithm is Algorithm.AUTO:
        algorithm = choose_algorithm(pattern)
    if use_columnar is None:
        use_columnar = factory.supports_columnar()
    if pattern.has_optional():
        from repro.twig.optional import validate_optional_pattern

        validate_optional_pattern(pattern)
        inner = compile_plan(
            pattern.required_skeleton(),
            labeled,
            factory,
            algorithm,
            prune_streams,
            deadline,
            use_columnar,
        )
        return CompiledPlan(
            "optional", pattern, algorithm, prune_streams, inner=inner
        )
    if algorithm is Algorithm.NAIVE:
        return CompiledPlan("naive", pattern, algorithm, prune_streams)
    guide = labeled.guide if prune_streams else None
    if use_columnar:
        views = build_columnar_streams(pattern, factory, guide, deadline)
        return CompiledPlan(
            "columnar", pattern, algorithm, prune_streams, views=views
        )
    streams = build_streams(pattern, factory, guide, deadline)
    return CompiledPlan(
        "object", pattern, algorithm, prune_streams, streams=streams
    )


def execute_plan(
    plan: CompiledPlan,
    labeled: LabeledDocument,
    factory: StreamFactory,
    stats: AlgorithmStats | None = None,
    deadline: Deadline | None = None,
) -> list[Match]:
    """Run a compiled plan's matching kernel.

    ``deadline`` is checked cooperatively inside every algorithm's main
    loop; on expiry a
    :class:`~repro.resilience.errors.DeadlineExceeded` is raised, with
    whatever well-formed partial matches could be salvaged attached as
    its ``partial``.

    When ``stats`` is supplied, ``stats.notes["columnar"]`` records
    which kernel family actually ran (1 columnar, 0 object/naive).
    """
    pattern = plan.pattern
    if plan.kind == "optional":
        from repro.twig.match import sort_matches
        from repro.twig.optional import extend_with_optionals

        skeleton_matches = execute_plan(
            plan.inner, labeled, factory, stats, deadline
        )
        return sort_matches(
            extend_with_optionals(
                pattern, skeleton_matches, labeled, factory.term_index
            )
        )
    if plan.kind == "naive":
        if stats is not None:
            stats.notes["columnar"] = 0
        return naive_match(
            pattern, labeled, factory.term_index, stats, deadline=deadline
        )
    algorithm = plan.algorithm
    if plan.kind == "columnar":
        if stats is not None:
            stats.notes["columnar"] = 1
        views = plan.views
        assert views is not None
        if algorithm is Algorithm.PATH_STACK:
            return path_stack_match_columnar(pattern, views, stats, deadline)
        if algorithm is Algorithm.STRUCTURAL_JOIN:
            return structural_join_match_columnar(
                pattern, views, stats, deadline=deadline
            )
        if algorithm is Algorithm.TJFAST:
            return tjfast_match_columnar(
                pattern, views, factory.term_index, stats, deadline
            )
        return twig_stack_match_columnar(pattern, views, stats, deadline)
    if stats is not None:
        stats.notes["columnar"] = 0
    streams = plan.streams
    assert streams is not None
    if algorithm is Algorithm.PATH_STACK:
        return path_stack_match(pattern, streams, stats, deadline)
    if algorithm is Algorithm.STRUCTURAL_JOIN:
        return structural_join_match(pattern, streams, stats, deadline=deadline)
    if algorithm is Algorithm.TJFAST:
        return tjfast_match(pattern, streams, factory.term_index, stats, deadline)
    return twig_stack_match(pattern, streams, stats, deadline)


def evaluate(
    pattern: TwigPattern,
    labeled: LabeledDocument,
    factory: StreamFactory,
    algorithm: Algorithm = Algorithm.AUTO,
    stats: AlgorithmStats | None = None,
    prune_streams: bool = False,
    deadline: Deadline | None = None,
    use_columnar: bool | None = None,
) -> list[Match]:
    """Evaluate ``pattern`` with the chosen (or planned) algorithm.

    ``prune_streams`` filters every node's stream by its DataGuide
    candidate positions first (see
    :func:`repro.twig.algorithms.common.build_streams`).

    One-shot compile + execute; the engine caches the compiled plan
    instead of calling this (see ``LotusXDatabase.matches``).
    """
    plan = compile_plan(
        pattern,
        labeled,
        factory,
        algorithm,
        prune_streams,
        deadline,
        use_columnar,
    )
    return execute_plan(plan, labeled, factory, stats, deadline)
