"""Textual twig syntax.

A compact XPath-like notation used by the CLI, the tests, and the examples
(the GUI builds :class:`~repro.twig.pattern.TwigPattern` objects directly).

Grammar::

    query    := [ "ordered:" ] path
    path     := step+
    step     := axis tag predicate* [ "!" ] [ "?" ]
    axis     := "//" | "/"
    tag      := NAME | "*"
    predicate:= "[" relpath [ op value ] "]"        # on a nested node
              | "[" "." op value "]"                # on the current node
              | "[" "not(" axis tag ")" "]"         # structural absence
    relpath  := ( "./" | ".//" )? path
    op       := "=" | "!=" | "<=" | "<" | ">=" | ">" | "~" | "!~"
    value    := '"' chars '"' | "'" chars "'" | NUMBER

Examples::

    //article[./title ~ "twig"]/year
    //book[author="jiaheng lu"][year>=2005]/title!
    //article[not(./editor)][./title !~ "survey"]
    ordered://proceedings[//title][//author]

``!`` marks an output (return) node; when no node is marked the *last step
of the main path* is returned.  ``?`` makes a branch optional
(left-outer-join semantics, see :mod:`repro.twig.optional`).  ``ordered:``
makes the pattern order-sensitive.
"""

from __future__ import annotations

from repro.twig.pattern import (
    AbsentBranchPredicate,
    Axis,
    ComparisonOp,
    ContainsPredicate,
    EqualsPredicate,
    NotPredicate,
    Predicate,
    QueryNode,
    RangePredicate,
    TwigPattern,
)


class TwigSyntaxError(ValueError):
    """Malformed twig query text."""

    def __init__(self, message: str, position: int) -> None:
        self.position = position
        super().__init__(f"{message} (at offset {position})")


# "@" admits synthetic attribute tags (see repro.xmlio.transform).
_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:@"
)
_OPS = ("<=", ">=", "!~", "!=", "<", ">", "=", "~")


class _Scanner:
    """Character scanner with position tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def take(self, literal: str) -> bool:
        if self.startswith(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise TwigSyntaxError(f"expected {literal!r}", self.pos)

    def skip_space(self) -> None:
        while not self.eof() and self.peek().isspace():
            self.pos += 1

    def error(self, message: str) -> TwigSyntaxError:
        return TwigSyntaxError(message, self.pos)


def parse_twig(text: str) -> TwigPattern:
    """Parse twig query ``text`` into a :class:`TwigPattern`.

    Raises
    ------
    TwigSyntaxError
        On malformed input, with the offending offset.
    """
    scanner = _Scanner(text.strip())
    ordered = scanner.take("ordered:")
    scanner.skip_space()

    pattern_holder: list[TwigPattern] = []

    def parse_path(parent: QueryNode | None) -> QueryNode:
        """Parse ``step+``; returns the *last* step's node."""
        node = parse_step(parent)
        while scanner.startswith("/"):
            node = parse_step(node)
        return node

    def parse_step(parent: QueryNode | None) -> QueryNode:
        scanner.skip_space()
        if scanner.take("//"):
            axis = Axis.DESCENDANT
        elif scanner.take("/"):
            axis = Axis.CHILD
        else:
            raise scanner.error("expected '/' or '//'")
        tag = parse_tag()
        if parent is None:
            pattern = TwigPattern(tag, ordered=ordered)
            pattern.root.axis = axis
            pattern_holder.append(pattern)
            node = pattern.root
        else:
            node = pattern_holder[0].add_child(parent, tag, axis)
        parse_predicates(node)
        if take_output_marker():
            node.is_output = True
            parse_predicates(node)
        if scanner.take("?"):
            node.optional = True
            parse_predicates(node)
        return node

    def take_output_marker() -> bool:
        # "!" marks an output node, but "!=" and "!~" are operators —
        # never split those.
        if scanner.peek() == "!" and scanner.peek(1) not in ("=", "~"):
            scanner.pos += 1
            return True
        return False

    def parse_tag() -> str | None:
        scanner.skip_space()
        if scanner.take("*"):
            return None
        start = scanner.pos
        while not scanner.eof() and scanner.peek() in _NAME_CHARS:
            scanner.pos += 1
        if scanner.pos == start:
            raise scanner.error("expected a tag name or '*'")
        return scanner.text[start : scanner.pos]

    def parse_predicates(node: QueryNode) -> None:
        while True:
            scanner.skip_space()
            if not scanner.take("["):
                return
            scanner.skip_space()
            if scanner.startswith("not("):
                attach_absent_branch(node)
            elif scanner.startswith(".") and not scanner.startswith("./"):
                # "[. op value]" — predicate on the node itself.
                scanner.expect(".")
                op, value = parse_comparison()
                attach_predicate(node, op, value)
            else:
                # Nested relative path, optionally compared to a value.
                scanner.take(".")  # "./" and ".//" start with an ignorable dot
                if scanner.startswith("/"):
                    target = parse_path(node)
                else:
                    # Bare-name shorthand: "[title=...]" == "[./title=...]".
                    tag = parse_tag()
                    target = pattern_holder[0].add_child(node, tag, Axis.CHILD)
                    parse_predicates(target)
                    if take_output_marker():
                        target.is_output = True
                        parse_predicates(target)
                    if scanner.take("?"):
                        target.optional = True
                        parse_predicates(target)
                    while scanner.startswith("/"):
                        target = parse_step(target)
                scanner.skip_space()
                if scanner.peek() and scanner.peek() in "<>=!~":
                    op, value = parse_comparison()
                    attach_predicate(target, op, value)
            scanner.skip_space()
            scanner.expect("]")

    def attach_absent_branch(node: QueryNode) -> None:
        """Parse "not( axis tag )" — structural absence on the node."""
        scanner.expect("not(")
        scanner.skip_space()
        scanner.take(".")  # allow ./ and .//
        if scanner.take("//"):
            axis = Axis.DESCENDANT
        elif scanner.take("/"):
            axis = Axis.CHILD
        else:
            raise scanner.error("not(...) needs '/' or '//' before the tag")
        tag = parse_tag()
        if tag is None:
            raise scanner.error("not(...) needs a concrete tag, not '*'")
        scanner.skip_space()
        scanner.expect(")")
        if node.predicate is not None:
            raise scanner.error(
                f"node {node.display_tag!r} already has a predicate"
            )
        node.predicate = AbsentBranchPredicate(tag, axis)

    def parse_comparison() -> tuple[ComparisonOp, str]:
        scanner.skip_space()
        for literal in _OPS:
            if scanner.take(literal):
                op = ComparisonOp(literal)
                break
        else:
            raise scanner.error("expected a comparison operator")
        scanner.skip_space()
        return op, parse_value()

    def parse_value() -> str:
        quote = scanner.peek()
        if quote in ("'", '"'):
            scanner.pos += 1
            start = scanner.pos
            while not scanner.eof() and scanner.peek() != quote:
                scanner.pos += 1
            if scanner.eof():
                raise scanner.error("unterminated string value")
            value = scanner.text[start : scanner.pos]
            scanner.pos += 1
            return value
        start = scanner.pos
        while not scanner.eof() and (
            scanner.peek().isdigit() or scanner.peek() in ".-+"
        ):
            scanner.pos += 1
        if scanner.pos == start:
            raise scanner.error("expected a quoted string or a number")
        return scanner.text[start : scanner.pos]

    def attach_predicate(node: QueryNode, op: ComparisonOp, raw: str) -> None:
        if node.predicate is not None:
            raise scanner.error(
                f"node {node.display_tag!r} already has a predicate"
            )
        node.predicate = build_predicate(op, raw)

    root = parse_path(None)
    scanner.skip_space()
    if not scanner.eof():
        raise scanner.error(f"unexpected trailing input {scanner.text[scanner.pos:]!r}")
    pattern = pattern_holder[0]
    # Default output: the last step of the main path.
    if not any(node.is_output for node in pattern.nodes()):
        root.is_output = True
    return pattern


def build_predicate(op: ComparisonOp, raw: str) -> Predicate:
    """Build the right predicate object for operator ``op`` and text
    ``raw`` (numbers get numeric semantics, strings get text semantics)."""
    if op is ComparisonOp.CONTAINS:
        return ContainsPredicate(raw)
    if op is ComparisonOp.NOT_CONTAINS:
        return NotPredicate(ContainsPredicate(raw))
    number = _try_number(raw)
    if op is ComparisonOp.EQ:
        if number is not None:
            return RangePredicate(ComparisonOp.EQ, number)
        return EqualsPredicate(raw)
    if number is None:
        raise ValueError(f"operator {op.value!r} requires a numeric value, got {raw!r}")
    return RangePredicate(op, number)


def _try_number(raw: str) -> float | None:
    try:
        return float(raw)
    except ValueError:
        return None
