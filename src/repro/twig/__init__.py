"""Twig queries: the pattern model, textual syntax, matching algorithms,
and the planner."""

from repro.twig.estimate import estimate_cardinality, q_error
from repro.twig.match import Match, dedupe_output, satisfies_order, sort_matches
from repro.twig.parse import TwigSyntaxError, build_predicate, parse_twig
from repro.twig.pattern import (
    AbsentBranchPredicate,
    Axis,
    ComparisonOp,
    ContainsPredicate,
    EqualsPredicate,
    NotPredicate,
    Predicate,
    QueryNode,
    RangePredicate,
    TwigPattern,
)
from repro.twig.planner import Algorithm, choose_algorithm, evaluate
from repro.twig.sample import sample_twig, sample_workload

__all__ = [
    "Algorithm",
    "AbsentBranchPredicate",
    "Axis",
    "ComparisonOp",
    "ContainsPredicate",
    "EqualsPredicate",
    "Match",
    "NotPredicate",
    "Predicate",
    "QueryNode",
    "RangePredicate",
    "TwigPattern",
    "TwigSyntaxError",
    "build_predicate",
    "choose_algorithm",
    "dedupe_output",
    "estimate_cardinality",
    "evaluate",
    "parse_twig",
    "q_error",
    "sample_twig",
    "sample_workload",
    "satisfies_order",
    "sort_matches",
]
