"""Sampling satisfiable twig queries from a corpus.

Workload generation for benchmarks, fuzzing, and demos: a pattern is
derived from an *actual document element* — the root binds the element,
branches bind a sample of its descendants, predicates quote its real
values — so every sampled twig is guaranteed to have at least one match
(the element it was carved from).
"""

from __future__ import annotations

import random

from repro.index.text import completion_value, tokenize
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.twig.pattern import (
    Axis,
    ContainsPredicate,
    EqualsPredicate,
    QueryNode,
    TwigPattern,
)
from repro.xmlio.tree import Element


def sample_twig(
    labeled: LabeledDocument,
    rng: random.Random,
    max_nodes: int = 5,
    descendant_probability: float = 0.35,
    predicate_probability: float = 0.3,
) -> TwigPattern:
    """A random twig pattern with at least one guaranteed match.

    Parameters
    ----------
    labeled:
        The corpus to carve patterns from.
    rng:
        Seeded RNG — sampling is deterministic given the corpus and seed.
    max_nodes:
        Upper bound on pattern size (at least 1).
    descendant_probability:
        Chance that a sampled edge is ``//`` instead of the exact
        parent-child chain the witness element provides.
    predicate_probability:
        Chance that a text-carrying node gets a predicate quoting the
        witness's actual value (equality for short values, containment
        for a sampled token otherwise).
    """
    if max_nodes < 1:
        raise ValueError("max_nodes must be at least 1")
    # Anchor on an element with some structure below it when possible.
    candidates = [e for e in labeled.elements if e.element.child_elements()]
    anchor = rng.choice(candidates or labeled.elements)

    pattern = TwigPattern(anchor.tag)
    _maybe_predicate(pattern.root, anchor.element, rng, predicate_probability)
    bound: dict[int, Element] = {pattern.root.node_id: anchor.element}
    open_nodes: list[QueryNode] = [pattern.root]

    while len(pattern.nodes()) < max_nodes and open_nodes:
        parent = rng.choice(open_nodes)
        parent_element = bound[parent.node_id]
        descendants = list(parent_element.iter_descendants())
        if not descendants:
            open_nodes.remove(parent)
            continue
        witness = rng.choice(descendants)
        if witness.parent is parent_element and rng.random() >= (
            descendant_probability
        ):
            axis = Axis.CHILD
        else:
            axis = Axis.DESCENDANT
        node = pattern.add_child(parent, witness.tag, axis)
        _maybe_predicate(node, witness, rng, predicate_probability)
        bound[node.node_id] = witness
        open_nodes.append(node)

    return pattern


def sample_workload(
    labeled: LabeledDocument, seed: int, count: int, **kwargs
) -> list[TwigPattern]:
    """``count`` sampled twigs, deterministic in ``seed``."""
    rng = random.Random(seed)
    return [sample_twig(labeled, rng, **kwargs) for _ in range(count)]


def _maybe_predicate(
    node: QueryNode, witness: Element, rng: random.Random, probability: float
) -> None:
    if node.predicate is not None or rng.random() >= probability:
        return
    text = witness.direct_text
    value = completion_value(text)
    if value and len(value) <= 24:
        node.predicate = EqualsPredicate(value)
        return
    tokens = tokenize(text)
    if tokens:
        node.predicate = ContainsPredicate((rng.choice(tokens),))