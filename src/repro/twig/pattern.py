"""Twig pattern model.

A *twig pattern* is the tree-shaped query LotusX users draw in the GUI:
nodes carry a tag (or wildcard) and optionally a value predicate; edges are
parent-child (``/``) or ancestor-descendant (``//``).  Patterns may be
*order-sensitive*: sibling query nodes must then match elements in document
order (the abstract's "order sensitive queries").

Patterns are plain mutable trees with value semantics where it matters:
:meth:`TwigPattern.signature` gives a hashable structural identity used by
the rewrite engine to deduplicate candidate rewrites.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Callable, Iterator

from repro.index.text import normalize, tokenize
from repro.labeling.assign import LabeledElement


class Axis(enum.Enum):
    """Edge type between a query node and its parent."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:
        return self.value


class ComparisonOp(enum.Enum):
    """Operators for value predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "~"
    NOT_CONTAINS = "!~"

    def __str__(self) -> str:
        return self.value


class Predicate:
    """Base class for value predicates attached to query nodes."""

    def matches(self, element: LabeledElement, term_index) -> bool:
        raise NotImplementedError

    def signature(self) -> tuple:
        raise NotImplementedError

    def terms(self) -> tuple[str, ...]:
        """Search terms this predicate contributes (for ranking)."""
        return ()


class ContainsPredicate(Predicate):
    """All given terms occur somewhere in the element's subtree text."""

    __slots__ = ("_terms",)

    def __init__(self, text_or_terms: str | tuple[str, ...]) -> None:
        if isinstance(text_or_terms, str):
            self._terms = tuple(tokenize(text_or_terms))
        else:
            self._terms = tuple(term.lower() for term in text_or_terms)
        if not self._terms:
            raise ValueError("contains predicate needs at least one term")

    def matches(self, element: LabeledElement, term_index) -> bool:
        return term_index.subtree_contains_all(element, self._terms)

    def terms(self) -> tuple[str, ...]:
        return self._terms

    def signature(self) -> tuple:
        return ("contains", self._terms)

    def __repr__(self) -> str:
        return f"ContainsPredicate({self._terms!r})"

    def __str__(self) -> str:
        return f'~"{" ".join(self._terms)}"'


class EqualsPredicate(Predicate):
    """The element's normalized direct text equals the value exactly."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = normalize(value)

    def matches(self, element: LabeledElement, term_index) -> bool:
        return term_index.has_value(element, self.value)

    def terms(self) -> tuple[str, ...]:
        return tuple(tokenize(self.value))

    def signature(self) -> tuple:
        return ("equals", self.value)

    def __repr__(self) -> str:
        return f"EqualsPredicate({self.value!r})"

    def __str__(self) -> str:
        return f'="{self.value}"'


class RangePredicate(Predicate):
    """The element's direct text, read as a number, compares to a bound."""

    __slots__ = ("op", "bound")

    _CHECKS: dict[ComparisonOp, Callable[[float, float], bool]] = {
        ComparisonOp.EQ: lambda v, b: v == b,
        ComparisonOp.NE: lambda v, b: v != b,
        ComparisonOp.LT: lambda v, b: v < b,
        ComparisonOp.LE: lambda v, b: v <= b,
        ComparisonOp.GT: lambda v, b: v > b,
        ComparisonOp.GE: lambda v, b: v >= b,
    }

    def __init__(self, op: ComparisonOp, bound: float) -> None:
        if op not in self._CHECKS:
            raise ValueError(f"operator {op} is not a range operator")
        self.op = op
        self.bound = float(bound)

    def matches(self, element: LabeledElement, term_index) -> bool:
        value = term_index.numeric_value(element)
        if value is None:
            return False
        return self._CHECKS[self.op](value, self.bound)

    def signature(self) -> tuple:
        return ("range", self.op.value, self.bound)

    def __repr__(self) -> str:
        return f"RangePredicate({self.op.value!r}, {self.bound})"

    def __str__(self) -> str:
        bound = int(self.bound) if self.bound.is_integer() else self.bound
        return f"{self.op.value}{bound}"


class NotPredicate(Predicate):
    """Negation of a value predicate (e.g. ``!~`` = does-not-contain).

    Contributes no search terms to ranking: absence is a filter, not a
    relevance signal.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: Predicate) -> None:
        if isinstance(inner, NotPredicate):
            raise ValueError("double negation — drop both nots instead")
        self.inner = inner

    def matches(self, element: LabeledElement, term_index) -> bool:
        return not self.inner.matches(element, term_index)

    def signature(self) -> tuple:
        return ("not", self.inner.signature())

    def __repr__(self) -> str:
        return f"NotPredicate({self.inner!r})"

    def __str__(self) -> str:
        inner_text = str(self.inner)
        if inner_text.startswith("~"):
            return "!" + inner_text
        return f"not({inner_text})"


class AbsentBranchPredicate(Predicate):
    """Structural negation: the element has no child (``/``) or
    descendant (``//``) with the given tag — ``[not(./editor)]``.

    Evaluated as an element filter, so it composes with every matching
    algorithm exactly like the value predicates do.
    """

    __slots__ = ("tag", "axis")

    def __init__(self, tag: str, axis: "Axis") -> None:
        self.tag = tag
        self.axis = axis

    def matches(self, element: LabeledElement, term_index) -> bool:
        if self.axis is Axis.CHILD:
            pool = element.element.child_elements()
        else:
            pool = element.element.iter_descendants()
        return all(candidate.tag != self.tag for candidate in pool)

    def signature(self) -> tuple:
        return ("absent", self.axis.value, self.tag)

    def __repr__(self) -> str:
        return f"AbsentBranchPredicate({self.axis.value}{self.tag})"

    def __str__(self) -> str:
        return f"not({self.axis.value}{self.tag})"


class QueryNode:
    """One node of a twig pattern.

    ``tag`` is the element tag to match, or None for a wildcard (``*``).
    ``axis`` is the edge type to the parent (ignored on the root).
    """

    __slots__ = (
        "node_id",
        "tag",
        "axis",
        "predicate",
        "parent",
        "children",
        "is_output",
        "optional",
    )

    def __init__(
        self,
        node_id: int,
        tag: str | None,
        axis: Axis = Axis.CHILD,
        predicate: Predicate | None = None,
        is_output: bool = False,
        optional: bool = False,
    ) -> None:
        self.node_id = node_id
        self.tag = tag
        self.axis = axis
        self.predicate = predicate
        self.parent: QueryNode | None = None
        self.children: list[QueryNode] = []
        self.is_output = is_output
        #: Optional nodes (and their subtrees) bind when possible but
        #: never eliminate a match — left-outer-join semantics.
        self.optional = optional

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def display_tag(self) -> str:
        return self.tag if self.tag is not None else "*"

    def iter_subtree(self) -> Iterator[QueryNode]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def accepts_tag(self, tag: str) -> bool:
        return self.tag is None or self.tag == tag

    def __repr__(self) -> str:
        marker = "!" if self.is_output else ""
        return f"QueryNode(#{self.node_id} {self.axis}{self.display_tag}{marker})"


class TwigPattern:
    """A twig query: a rooted tree of :class:`QueryNode`.

    Create the root via the constructor, grow the tree with
    :meth:`add_child`, and mark result nodes with ``is_output`` (if none is
    marked, the root is the result).

    ``ordered=True`` makes the whole pattern order-sensitive: for every
    pair of sibling query nodes, the matched elements must appear in the
    siblings' order in the document (the earlier sibling's subtree must end
    before the later one's begins).  Finer-grained constraints can be added
    with :meth:`add_order_constraint`.
    """

    def __init__(
        self,
        root_tag: str | None,
        predicate: Predicate | None = None,
        ordered: bool = False,
        is_output: bool = False,
    ) -> None:
        self._next_id = itertools.count(1)
        # The root's axis positions the whole pattern: DESCENDANT (default)
        # lets it match anywhere in the document; CHILD pins it to the
        # document root element.
        self.root = QueryNode(0, root_tag, Axis.DESCENDANT, predicate, is_output)
        self.ordered = ordered
        #: Explicit (before_id, after_id) document-order constraints.
        self.order_constraints: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_child(
        self,
        parent: QueryNode,
        tag: str | None,
        axis: Axis = Axis.CHILD,
        predicate: Predicate | None = None,
        is_output: bool = False,
        optional: bool = False,
    ) -> QueryNode:
        """Attach a new query node under ``parent`` and return it."""
        if self.find_node(parent.node_id) is not parent:
            raise ValueError("parent node does not belong to this pattern")
        node = QueryNode(
            next(self._next_id), tag, axis, predicate, is_output, optional
        )
        node.parent = parent
        parent.children.append(node)
        return node

    def add_order_constraint(self, before: QueryNode, after: QueryNode) -> None:
        """Require ``before``'s match to end before ``after``'s starts."""
        for node in (before, after):
            if self.find_node(node.node_id) is not node:
                raise ValueError("constraint node does not belong to this pattern")
        self.order_constraints.append((before.node_id, after.node_id))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nodes(self) -> list[QueryNode]:
        """All query nodes, preorder."""
        return list(self.root.iter_subtree())

    def leaves(self) -> list[QueryNode]:
        return [node for node in self.nodes() if node.is_leaf]

    def find_node(self, node_id: int) -> QueryNode | None:
        for node in self.root.iter_subtree():
            if node.node_id == node_id:
                return node
        return None

    def output_nodes(self) -> list[QueryNode]:
        """Marked output nodes, or the root if none are marked."""
        marked = [node for node in self.nodes() if node.is_output]
        return marked or [self.root]

    @property
    def size(self) -> int:
        return len(self.nodes())

    def is_path(self) -> bool:
        """True if the pattern is a linear path (every node ≤ 1 child)."""
        return all(len(node.children) <= 1 for node in self.nodes())

    def has_wildcards(self) -> bool:
        return any(node.tag is None for node in self.nodes())

    def has_optional(self) -> bool:
        return any(node.optional for node in self.nodes())

    def optional_branches(self) -> list[QueryNode]:
        """Top-level optional nodes (optional nodes whose ancestors are
        all required)."""
        branches: list[QueryNode] = []

        def walk(node: QueryNode) -> None:
            for child in node.children:
                if child.optional:
                    branches.append(child)
                else:
                    walk(child)

        walk(self.root)
        return branches

    def required_skeleton(self) -> TwigPattern:
        """A copy with every optional subtree removed (node ids kept)."""
        skeleton = self.copy()
        for node in skeleton.nodes():
            node.children = [c for c in node.children if not c.optional]
        return skeleton

    def predicates(self) -> list[tuple[QueryNode, Predicate]]:
        return [
            (node, node.predicate)
            for node in self.nodes()
            if node.predicate is not None
        ]

    def all_terms(self) -> tuple[str, ...]:
        """Every search term contributed by any predicate."""
        terms: list[str] = []
        for _, predicate in self.predicates():
            terms.extend(predicate.terms())
        return tuple(terms)

    # ------------------------------------------------------------------
    # Identity / copying
    # ------------------------------------------------------------------

    def signature(self) -> tuple:
        """Hashable structural identity (used to deduplicate rewrites)."""

        def node_signature(node: QueryNode) -> tuple:
            predicate = node.predicate.signature() if node.predicate else None
            return (
                node.tag,
                node.axis.value,
                predicate,
                node.is_output,
                node.optional,
                tuple(node_signature(child) for child in node.children),
            )

        return (
            node_signature(self.root),
            self.ordered,
            tuple(sorted(self.order_constraints)),
        )

    def copy(self) -> TwigPattern:
        """Deep copy preserving node ids (so constraints stay valid)."""
        pattern = TwigPattern.__new__(TwigPattern)
        pattern.ordered = self.ordered
        pattern.order_constraints = list(self.order_constraints)
        max_id = 0

        def copy_node(node: QueryNode, parent: QueryNode | None) -> QueryNode:
            nonlocal max_id
            clone = QueryNode(
                node.node_id,
                node.tag,
                node.axis,
                node.predicate,
                node.is_output,
                node.optional,
            )
            clone.parent = parent
            max_id = max(max_id, node.node_id)
            for child in node.children:
                clone.children.append(copy_node(child, clone))
            return clone

        pattern.root = copy_node(self.root, None)
        pattern._next_id = itertools.count(max_id + 1)
        return pattern

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        """Render in the textual twig syntax (parseable back)."""

        def render(node: QueryNode) -> str:
            text = str(node.axis) + node.display_tag
            if isinstance(node.predicate, AbsentBranchPredicate):
                text += f"[{node.predicate}]"
            elif node.predicate is not None:
                text += f"[.{node.predicate}]"
            if node.is_output:
                text += "!"
            if node.optional:
                text += "?"
            for child in node.children:
                text += f"[{render(child)}]"
            return text

        prefix = "ordered:" if self.ordered else ""
        return prefix + render(self.root)

    def pretty(self) -> str:
        """Multi-line tree rendering for debugging and the CLI."""
        lines: list[str] = []

        def walk(node: QueryNode, depth: int) -> None:
            axis = "" if node.is_root else str(node.axis)
            predicate = f" [{node.predicate}]" if node.predicate else ""
            marker = "  (output)" if node.is_output else ""
            if node.optional:
                marker += "  (optional)"
            lines.append("  " * depth + f"{axis}{node.display_tag}{predicate}{marker}")
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        if self.ordered:
            lines.append("(ordered)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TwigPattern({self!s})"
