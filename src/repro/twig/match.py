"""Match model: the output of every twig-matching algorithm.

A :class:`Match` maps each query-node id to the labeled element it matched.
All algorithms produce the same Match objects, so results can be compared
across algorithms (the test suite cross-checks every algorithm against the
naive oracle this way).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.labeling.assign import LabeledElement
from repro.twig.pattern import TwigPattern


class Match:
    """One complete embedding of a twig pattern into the document."""

    __slots__ = ("assignments",)

    def __init__(self, assignments: Mapping[int, LabeledElement]) -> None:
        self.assignments: dict[int, LabeledElement] = dict(assignments)

    def element(self, node_id: int) -> LabeledElement:
        return self.assignments[node_id]

    def output_elements(self, pattern: TwigPattern) -> list[LabeledElement]:
        """Elements bound to the pattern's output nodes."""
        return [self.assignments[node.node_id] for node in pattern.output_nodes()]

    def key(self) -> tuple[tuple[int, int], ...]:
        """Canonical hashable identity: sorted (node_id, element_order)."""
        return tuple(sorted((nid, el.order) for nid, el in self.assignments.items()))

    def order_key(self) -> tuple[int, ...]:
        """Document-order sort key over the bound elements."""
        return tuple(
            self.assignments[nid].order for nid in sorted(self.assignments)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{nid}->{el.tag}@{el.region.start}"
            for nid, el in sorted(self.assignments.items())
        )
        return f"Match({parts})"


def sort_matches(matches: Iterable[Match]) -> list[Match]:
    """Deterministic document-order sort (stable across algorithms)."""
    return sorted(matches, key=Match.order_key)


def dedupe_output(
    matches: Iterable[Match], pattern: TwigPattern
) -> list[tuple[LabeledElement, ...]]:
    """Distinct output-node bindings, document order.

    Several matches can bind the same elements to the output nodes while
    differing on interior nodes; search results show each distinct output
    combination once.
    """
    seen: set[tuple[int, ...]] = set()
    distinct: list[tuple[LabeledElement, ...]] = []
    for match in sort_matches(matches):
        outputs = tuple(match.output_elements(pattern))
        key = tuple(element.order for element in outputs)
        if key not in seen:
            seen.add(key)
            distinct.append(outputs)
    return distinct


def satisfies_order(pattern: TwigPattern, match: Match) -> bool:
    """Check the pattern's order constraints against ``match``.

    With ``pattern.ordered``, every pair of sibling query nodes must match
    elements whose subtrees are disjoint and in the siblings' order.
    Explicit ``order_constraints`` are checked regardless of the flag.
    """
    if pattern.ordered:
        for node in pattern.nodes():
            for earlier, later in zip(node.children, node.children[1:]):
                first = match.assignments.get(earlier.node_id)
                second = match.assignments.get(later.node_id)
                if first is None or second is None:
                    continue  # unbound optional nodes impose no order
                if not first.region.entirely_before(second.region):
                    return False
    for before_id, after_id in pattern.order_constraints:
        first = match.assignments.get(before_id)
        second = match.assignments.get(after_id)
        if first is None or second is None:
            continue
        if not first.region.entirely_before(second.region):
            return False
    return True
