"""Optional query nodes: left-outer-join twig semantics.

A node marked optional (``?`` in the textual syntax) never eliminates a
match: the required skeleton of the pattern is evaluated with any
algorithm, and each match is then *extended* with bindings for the
optional branches where the document provides them.

Extension semantics (deterministic): for each top-level optional branch,
the first (document-order) embedding under the match's anchor element
that keeps the pattern's order constraints satisfied is bound; if none
exists the branch stays unbound and the match survives without it.
"""

from __future__ import annotations

from itertools import product

from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.twig.match import Match, satisfies_order
from repro.twig.pattern import Axis, QueryNode, TwigPattern


def validate_optional_pattern(pattern: TwigPattern) -> None:
    """Reject patterns whose output depends on an optional subtree.

    Raises
    ------
    ValueError
        If any output node is optional or sits inside an optional branch.
    """
    optional_subtree_ids: set[int] = set()
    for branch in pattern.optional_branches():
        optional_subtree_ids.update(n.node_id for n in branch.iter_subtree())
    for node in pattern.output_nodes():
        if node.node_id in optional_subtree_ids:
            raise ValueError(
                f"output node {node.display_tag!r} is optional — an output"
                " must always be bound"
            )


def anchored_embeddings(
    qnode: QueryNode,
    anchor: LabeledElement,
    labeled: LabeledDocument,
    term_index: TermIndex,
) -> list[dict[int, LabeledElement]]:
    """All embeddings of the subtree at ``qnode`` under ``anchor``.

    ``qnode.axis`` positions it relative to ``anchor`` (child or
    descendant); embeddings are produced in document order of the
    ``qnode`` binding.
    """

    def node_matches(node: QueryNode, element: LabeledElement) -> bool:
        if not node.accepts_tag(element.tag):
            return False
        if node.predicate is not None:
            return node.predicate.matches(element, term_index)
        return True

    def candidates(node: QueryNode, base: LabeledElement) -> list[LabeledElement]:
        if node.axis is Axis.CHILD:
            pool = [labeled.label_of(c) for c in base.element.child_elements()]
        else:
            pool = [labeled.label_of(d) for d in base.element.iter_descendants()]
        return [element for element in pool if node_matches(node, element)]

    def embed(node: QueryNode, element: LabeledElement):
        partial_lists = []
        for child in node.children:
            options = []
            for candidate in candidates(child, element):
                options.extend(embed(child, candidate))
            if not options:
                return []
            partial_lists.append(options)
        results = []
        for combo in product(*partial_lists):
            assignment = {node.node_id: element}
            for part in combo:
                assignment.update(part)
            results.append(assignment)
        return results

    embeddings: list[dict[int, LabeledElement]] = []
    for candidate in candidates(qnode, anchor):
        embeddings.extend(embed(qnode, candidate))
    return embeddings


def extend_with_optionals(
    pattern: TwigPattern,
    matches: list[Match],
    labeled: LabeledDocument,
    term_index: TermIndex,
) -> list[Match]:
    """Bind the pattern's optional branches onto skeleton ``matches``."""
    branches = pattern.optional_branches()
    if not branches:
        return matches
    extended: list[Match] = []
    for match in matches:
        assignments = dict(match.assignments)
        for branch in branches:
            anchor_id = branch.parent.node_id  # type: ignore[union-attr]
            anchor = assignments[anchor_id]
            for embedding in anchored_embeddings(
                branch, anchor, labeled, term_index
            ):
                candidate = Match({**assignments, **embedding})
                if satisfies_order(pattern, candidate):
                    assignments.update(embedding)
                    break
        extended.append(Match(assignments))
    return extended
