"""Exclusive Lowest Common Ancestor (ELCA) computation.

ELCA is the other classical keyword-search semantics (Guo et al., XRANK):
an element ``v`` is an ELCA if, after *excluding* the subtrees of
qualifying elements below it, ``v`` still witnesses every keyword — i.e.
each keyword has an occurrence under ``v`` that no qualifying proper
descendant of ``v`` claims.  Every SLCA is an ELCA; ELCA additionally
returns ancestors that contribute their own keyword evidence (a section
that mentions every keyword itself, even though one paragraph inside
already does too).

Computation uses a compact exact characterization: let ``q(o)`` be the
*lowest qualifying ancestor-or-self* of keyword occurrence ``o`` (the
qualifying set is the ancestor closure of the SLCAs).  ``v`` witnesses
term ``t`` exclusively iff some occurrence ``o`` of ``t`` has
``q(o) == v``.  Hence::

    ELCA(terms) = ∩_t { q(o) : o an occurrence of t }

one ancestor walk per occurrence, membership-checked against the
qualifying set.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.index.term_index import TermIndex
from repro.keyword.slca import find_slcas
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded


def find_elcas(
    labeled: LabeledDocument,
    term_index: TermIndex,
    terms: Sequence[str],
    deadline: Deadline | None = None,
) -> list[LabeledElement]:
    """The ELCA elements for ``terms``, in document order.

    Returns [] when any term is absent (conjunctive) or ``terms`` is
    empty.  Always a superset of the SLCAs for the same terms.  With a
    ``deadline`` that expires during the witness scan, the raised
    :class:`DeadlineExceeded` carries the SLCAs as its ``partial`` (every
    SLCA is an ELCA, so that partial is sound).
    """
    normalized = sorted({term.lower() for term in terms if term})
    if not normalized:
        return []
    slcas = find_slcas(labeled, term_index, normalized, deadline)
    if not slcas:
        return []

    # Qualifying set: ancestor-or-self closure of the SLCAs.
    qualifying: set[int] = set()
    for slca in slcas:
        current: LabeledElement | None = slca
        while current is not None and current.order not in qualifying:
            qualifying.add(current.order)
            current = current.parent

    def lowest_qualifying(element: LabeledElement) -> int:
        current: LabeledElement | None = element
        while current is not None:
            if current.order in qualifying:
                return current.order
            current = current.parent
        raise AssertionError("the root qualifies whenever SLCAs exist")

    witness_sets: list[set[int]] = []
    try:
        for term in normalized:
            witnesses = set()
            for posting in term_index.postings(term):
                if deadline is not None:
                    deadline.check("keyword.elca")
                witnesses.add(lowest_qualifying(labeled.elements[posting.order]))
            witness_sets.append(witnesses)
    except DeadlineExceeded as exc:
        if exc.partial is None:
            exc.partial = list(slcas)
        raise

    elca_orders = set.intersection(*witness_sets)
    return [labeled.elements[order] for order in sorted(elca_orders)]
