"""Schema-free keyword search: SLCA semantics with combined ranking."""

from repro.keyword.search import KeywordHit, KeywordResponse, keyword_search
from repro.keyword.elca import find_elcas
from repro.keyword.slca import find_slcas

__all__ = ["KeywordHit", "KeywordResponse", "find_elcas", "find_slcas", "keyword_search"]
