"""Ranked keyword search over SLCA results.

Wraps :func:`~repro.keyword.slca.find_slcas` with query tokenization and
the LotusX-style combined ranking: text relevance (idf-weighted,
saturation-damped term frequencies inside the SLCA's subtree) blended
with structural specificity (deeper, smaller answers first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.index.term_index import TermIndex
from repro.index.text import tokenize
from repro.keyword.elca import find_elcas
from repro.keyword.slca import find_slcas
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.ranking.tfidf import TF_SATURATION
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.resilience.faults import fault_point

#: Weight of the textual signal vs structural specificity.
TEXT_WEIGHT = 0.7


@dataclass(frozen=True, slots=True)
class KeywordHit:
    """One ranked SLCA answer."""

    element: LabeledElement
    score: float
    text_score: float
    specificity: float

    def as_dict(self) -> dict:
        from repro.engine.results import element_xpath, make_snippet

        return {
            "xpath": element_xpath(self.element),
            "tag": self.element.tag,
            "snippet": make_snippet(self.element),
            "score": round(self.score, 4),
            "text_score": round(self.text_score, 4),
            "specificity": round(self.specificity, 4),
        }


@dataclass(frozen=True, slots=True)
class KeywordResponse:
    """Result of :func:`keyword_search`."""

    terms: tuple[str, ...]
    hits: tuple[KeywordHit, ...]
    total_slcas: int
    semantics: str = "slca"
    #: True when a deadline expired mid-search and ``hits`` only covers
    #: the answers found before the budget ran out.
    truncated: bool = False
    #: Degradation tags (e.g. ``"shard-2-unavailable"``) when parts of a
    #: sharded corpus could not answer; empty for complete responses.
    degraded: tuple[str, ...] = ()

    def __iter__(self):
        return iter(self.hits)

    def __len__(self) -> int:
        return len(self.hits)

    def as_dict(self) -> dict:
        return {
            "terms": list(self.terms),
            "semantics": self.semantics,
            "total_slcas": self.total_slcas,
            "truncated": self.truncated,
            "degraded": list(self.degraded),
            "hits": [hit.as_dict() for hit in self.hits],
        }


def keyword_search(
    labeled: LabeledDocument,
    term_index: TermIndex,
    query: str,
    k: int = 10,
    semantics: str = "slca",
    deadline: Deadline | None = None,
) -> KeywordResponse:
    """Keyword search for ``query``, ranked, top ``k``.

    ``semantics`` selects the answer definition: ``"slca"`` (smallest
    containers only) or ``"elca"`` (also ancestors contributing their own
    keyword evidence).  Stopwords are dropped from the query unless that
    would empty it.

    With a ``deadline`` that expires during the answer scan, the hits
    derivable from the occurrences seen so far are ranked and returned
    with ``truncated=True`` instead of raising.
    """
    if semantics not in ("slca", "elca"):
        raise ValueError(f"unknown keyword semantics {semantics!r}")
    fault_point("keyword.search", deadline)
    terms = tuple(tokenize(query, drop_stopwords=True)) or tuple(tokenize(query))
    if not terms:
        return KeywordResponse((), (), 0, semantics)
    finder = find_slcas if semantics == "slca" else find_elcas
    truncated = False
    try:
        slcas = finder(labeled, term_index, terms, deadline)
    except DeadlineExceeded as exc:
        slcas = exc.partial or []
        truncated = True
    max_depth = max((element.level for element in labeled.elements), default=0)
    hits = [
        _score(element, terms, term_index, max_depth) for element in slcas
    ]
    hits.sort(key=lambda hit: (-hit.score, hit.element.order))
    return KeywordResponse(
        terms, tuple(hits[:k]), len(slcas), semantics, truncated
    )


def _score(
    element: LabeledElement,
    terms: tuple[str, ...],
    term_index: TermIndex,
    max_depth: int,
) -> KeywordHit:
    weighted = 0.0
    total_idf = 0.0
    for term in set(terms):
        idf = term_index.idf(term)
        tf = term_index.subtree_term_frequency(element, term)
        total_idf += idf
        weighted += idf * (tf / (tf + TF_SATURATION))
    text_score = weighted / total_idf if total_idf else 0.0

    # Specificity: deeper and smaller answers are more focused.
    depth_ratio = element.level / max_depth if max_depth else 0.0
    subtree_size = (element.region.end - element.region.start + 1) // 2
    size_factor = 1.0 / (1.0 + math.log1p(subtree_size - 1))
    specificity = 0.5 * depth_ratio + 0.5 * size_factor

    score = TEXT_WEIGHT * text_score + (1.0 - TEXT_WEIGHT) * specificity
    return KeywordHit(element, score, text_score, specificity)
