"""Smallest Lowest Common Ancestor (SLCA) computation.

Keyword search over XML returns the *smallest* elements whose subtree
contains every query term: elements that qualify while no proper
descendant qualifies (Xu & Papakonstantinou, SIGMOD 2005).  This is the
schema-free complement to twig search — the other way LotusX-era systems
served users who knew nothing about the document.

Algorithm (exact, label-based):

1. take the query term with the fewest postings (the *rarest* term);
2. for each of its occurrences, walk up the ancestor chain to the lowest
   element whose subtree contains all the *other* terms too — one
   O(depth · terms · log n) probe per occurrence via the term index's
   preorder-range containment check;
3. every SLCA is discovered this way (it must contain a rarest-term
   occurrence, and it is the lowest qualifying ancestor of any occurrence
   inside it), so the SLCA set is the candidates minus those with another
   candidate strictly below them.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument, LabeledElement
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded


def find_slcas(
    labeled: LabeledDocument,
    term_index: TermIndex,
    terms: Sequence[str],
    deadline: Deadline | None = None,
) -> list[LabeledElement]:
    """The SLCA elements for ``terms``, in document order.

    Returns [] when any term has no occurrence at all (conjunctive
    semantics) or when ``terms`` is empty.  With a ``deadline``, the
    occurrence scan checks it cooperatively; on expiry the raised
    :class:`DeadlineExceeded` carries the SLCAs derivable from the
    occurrences scanned so far as its ``partial``.
    """
    normalized = [term.lower() for term in terms if term]
    if not normalized:
        return []
    postings_per_term = {
        term: term_index.postings(term) for term in set(normalized)
    }
    if any(not postings for postings in postings_per_term.values()):
        return []

    rarest = min(postings_per_term, key=lambda term: len(postings_per_term[term]))
    others = [term for term in postings_per_term if term != rarest]

    candidates: dict[int, LabeledElement] = {}
    try:
        for posting in postings_per_term[rarest]:
            if deadline is not None:
                deadline.check("keyword.slca")
            element = labeled.elements[posting.order]
            anchor = _lowest_qualifying_ancestor(element, others, term_index)
            if anchor is not None:
                candidates[anchor.order] = anchor
    except DeadlineExceeded as exc:
        if exc.partial is None:
            exc.partial = _remove_non_minimal(list(candidates.values()))
        raise

    return _remove_non_minimal(list(candidates.values()))


def _lowest_qualifying_ancestor(
    element: LabeledElement,
    other_terms: list[str],
    term_index: TermIndex,
) -> LabeledElement | None:
    """The lowest ancestor-or-self of ``element`` whose subtree contains
    every other term (``element`` itself already contains the rarest)."""
    current: LabeledElement | None = element
    while current is not None:
        if term_index.subtree_contains_all(current, other_terms):
            return current
        current = current.parent
    return None


def _remove_non_minimal(
    candidates: list[LabeledElement],
) -> list[LabeledElement]:
    """Keep candidates with no other candidate strictly below them.

    One pass over the document-ordered candidates: an element is an
    ancestor of the next candidate iff it contains it, and ancestor
    relations among qualifying elements are exactly the non-minimal ones.
    """
    ordered = sorted(candidates, key=lambda e: e.region)
    keep: list[LabeledElement] = []
    for candidate in ordered:
        while keep and keep[-1].region.is_ancestor_of(candidate.region):
            keep.pop()
        keep.append(candidate)
    return keep
