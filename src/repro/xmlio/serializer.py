"""Serialize tree nodes back to XML text."""

from __future__ import annotations

import io

from repro.xmlio.chars import is_valid_name
from repro.xmlio.errors import SerializationError
from repro.xmlio.escape import escape_attribute, escape_text
from repro.xmlio.tree import Document, Element, Node, Text


def serialize(
    node: Document | Element,
    indent: str | None = None,
    xml_declaration: bool = False,
) -> str:
    """Render ``node`` to XML text.

    Parameters
    ----------
    node:
        A :class:`Document` or :class:`Element`.
    indent:
        If given (e.g. ``"  "``), pretty-print with that indentation unit.
        Pretty-printing only inserts whitespace around *element-only*
        content; mixed content is left byte-exact so round-trips stay
        lossless for text.
    xml_declaration:
        Emit ``<?xml version="1.0" encoding="utf-8"?>`` first.
    """
    out = io.StringIO()
    if xml_declaration:
        out.write('<?xml version="1.0" encoding="utf-8"?>')
        if indent is not None:
            out.write("\n")
    root = node.root if isinstance(node, Document) else node
    _write_element(out, root, indent, depth=0)
    if indent is not None:
        out.write("\n")
    return out.getvalue()


def _write_element(
    out: io.StringIO, element: Element, indent: str | None, depth: int
) -> None:
    if not is_valid_name(element.tag):
        raise SerializationError(f"invalid tag name {element.tag!r}")
    out.write(f"<{element.tag}")
    for name, value in element.attributes.items():
        if not is_valid_name(name):
            raise SerializationError(f"invalid attribute name {name!r}")
        out.write(f' {name}="{escape_attribute(value)}"')
    if not element.children:
        out.write("/>")
        return
    out.write(">")
    pretty = indent is not None and _is_element_only(element)
    for child in element.children:
        if pretty:
            out.write("\n" + indent * (depth + 1))  # type: ignore[operator]
        if isinstance(child, Text):
            out.write(escape_text(child.value))
        elif isinstance(child, Element):
            _write_element(out, child, indent if pretty else None, depth + 1)
        else:  # pragma: no cover - Node has no other subclasses
            raise SerializationError(f"cannot serialize node {child!r}")
    if pretty:
        out.write("\n" + indent * depth)  # type: ignore[operator]
    out.write(f"</{element.tag}>")


def _is_element_only(element: Element) -> bool:
    """True if the element's children are all elements (safe to indent)."""
    return all(isinstance(child, Element) for child in element.children)


def node_to_string(node: Node) -> str:
    """Serialize any tree node, including bare text nodes."""
    if isinstance(node, Text):
        return escape_text(node.value)
    if isinstance(node, Element):
        return serialize(node)
    raise SerializationError(f"cannot serialize node {node!r}")
