"""XML substrate: tokenizer, pull parser, tree model, serializer.

Written from scratch (no stdlib ``xml`` use) so the labeling and indexing
passes can hook directly into the event stream.

Typical use::

    from repro.xmlio import parse_string, serialize

    doc = parse_string("<a><b>hi</b></a>")
    print(doc.root.find("b").text)       # "hi"
    print(serialize(doc))                 # "<a><b>hi</b></a>"
"""

from repro.xmlio.builder import TreeBuilder, parse_file, parse_string
from repro.xmlio.errors import (
    SerializationError,
    XMLError,
    XMLResourceLimitError,
    XMLSyntaxError,
    XMLWellFormednessError,
)
from repro.xmlio.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlio.parser import PullParser, iter_events
from repro.xmlio.serializer import node_to_string, serialize
from repro.xmlio.tokenizer import Tokenizer
from repro.xmlio.transform import (
    attribute_tag,
    expand_attributes,
    is_attribute_tag,
)
from repro.xmlio.tree import Document, Element, Node, Text

__all__ = [
    "Characters",
    "Comment",
    "Document",
    "Element",
    "EndDocument",
    "EndElement",
    "Event",
    "Node",
    "ProcessingInstruction",
    "PullParser",
    "SerializationError",
    "StartDocument",
    "StartElement",
    "Text",
    "Tokenizer",
    "TreeBuilder",
    "XMLError",
    "XMLResourceLimitError",
    "XMLSyntaxError",
    "XMLWellFormednessError",
    "attribute_tag",
    "expand_attributes",
    "is_attribute_tag",
    "iter_events",
    "node_to_string",
    "parse_file",
    "parse_string",
    "serialize",
]
