"""Pull parser: a well-formedness-checking wrapper over the tokenizer.

:class:`PullParser` consumes the raw token stream and enforces the document
grammar — balanced tags, exactly one root element, no character data outside
the root — emitting the same event objects plus a trailing
:class:`~repro.xmlio.events.EndDocument`.

This is the layer every higher component consumes: the tree builder, the
labeling pass and the index builders all iterate a ``PullParser``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.xmlio.errors import XMLWellFormednessError
from repro.xmlio.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlio.tokenizer import Tokenizer


class PullParser:
    """Iterate well-formedness-checked parse events for an XML string."""

    def __init__(self, text: str) -> None:
        self._tokens: Iterable[Event] = Tokenizer(text)

    def __iter__(self) -> Iterator[Event]:
        return self.events()

    def events(self) -> Iterator[Event]:
        """Yield checked events, ending with :class:`EndDocument`.

        Raises
        ------
        XMLWellFormednessError
            On mismatched tags, multiple roots, text outside the root, or a
            missing root element.
        """
        open_tags: list[StartElement] = []
        saw_root = False
        last_line, last_column = 1, 1
        for event in self._tokens:
            last_line, last_column = event.line, event.column
            if isinstance(event, StartElement):
                if not open_tags and saw_root:
                    raise XMLWellFormednessError(
                        f"multiple root elements: second root <{event.tag}>",
                        event.line,
                        event.column,
                    )
                saw_root = True
                open_tags.append(event)
            elif isinstance(event, EndElement):
                if not open_tags:
                    raise XMLWellFormednessError(
                        f"closing tag </{event.tag}> with no open element",
                        event.line,
                        event.column,
                    )
                opener = open_tags.pop()
                if opener.tag != event.tag:
                    raise XMLWellFormednessError(
                        f"mismatched closing tag </{event.tag}>,"
                        f" expected </{opener.tag}>"
                        f" (opened at line {opener.line})",
                        event.line,
                        event.column,
                    )
            elif isinstance(event, Characters):
                if not open_tags and event.text.strip():
                    raise XMLWellFormednessError(
                        "character data outside the root element",
                        event.line,
                        event.column,
                    )
            elif isinstance(event, (Comment, ProcessingInstruction, StartDocument)):
                pass
            yield event
        if open_tags:
            opener = open_tags[-1]
            raise XMLWellFormednessError(
                f"unclosed element <{opener.tag}>", opener.line, opener.column
            )
        if not saw_root:
            raise XMLWellFormednessError(
                "document has no root element", last_line, last_column
            )
        yield EndDocument(last_line, last_column)


def iter_events(text: str) -> Iterator[Event]:
    """Convenience: iterate checked parse events for ``text``."""
    return PullParser(text).events()
