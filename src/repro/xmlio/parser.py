"""Pull parser: a well-formedness-checking wrapper over the tokenizer.

:class:`PullParser` consumes the raw token stream and enforces the document
grammar — balanced tags, exactly one root element, no character data outside
the root — emitting the same event objects plus a trailing
:class:`~repro.xmlio.events.EndDocument`.

This is the layer every higher component consumes: the tree builder, the
labeling pass and the index builders all iterate a ``PullParser``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.xmlio.errors import XMLResourceLimitError, XMLWellFormednessError
from repro.xmlio.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlio.tokenizer import Tokenizer

#: Default ceiling on element nesting depth.  Deep enough for any sane
#: document, shallow enough that recursive tree algorithms downstream
#: never approach the interpreter's recursion limit.
DEFAULT_MAX_DEPTH = 512

#: Default ceiling on input size in characters (64 MiB of text).
DEFAULT_MAX_SIZE = 64 << 20


class PullParser:
    """Iterate well-formedness-checked parse events for an XML string.

    ``max_depth`` and ``max_size`` bound the resources a hostile or
    degenerate document can claim (pass ``None`` to disable either);
    violations raise :class:`XMLResourceLimitError` before the document
    is materialized into a tree.
    """

    def __init__(
        self,
        text: str,
        max_depth: int | None = DEFAULT_MAX_DEPTH,
        max_size: int | None = DEFAULT_MAX_SIZE,
    ) -> None:
        if max_size is not None and len(text) > max_size:
            raise XMLResourceLimitError(
                f"document of {len(text)} characters exceeds the"
                f" {max_size}-character limit",
                limit=max_size,
                actual=len(text),
            )
        self._max_depth = max_depth
        self._tokens: Iterable[Event] = Tokenizer(text)

    def __iter__(self) -> Iterator[Event]:
        return self.events()

    def events(self) -> Iterator[Event]:
        """Yield checked events, ending with :class:`EndDocument`.

        Raises
        ------
        XMLWellFormednessError
            On mismatched tags, multiple roots, text outside the root, or a
            missing root element.
        """
        open_tags: list[StartElement] = []
        saw_root = False
        last_line, last_column = 1, 1
        for event in self._tokens:
            last_line, last_column = event.line, event.column
            if isinstance(event, StartElement):
                if not open_tags and saw_root:
                    raise XMLWellFormednessError(
                        f"multiple root elements: second root <{event.tag}>",
                        event.line,
                        event.column,
                    )
                saw_root = True
                open_tags.append(event)
                if (
                    self._max_depth is not None
                    and len(open_tags) > self._max_depth
                ):
                    raise XMLResourceLimitError(
                        f"element <{event.tag}> nests deeper than the"
                        f" {self._max_depth}-level limit"
                        f" (line {event.line}, column {event.column})",
                        limit=self._max_depth,
                        actual=len(open_tags),
                    )
            elif isinstance(event, EndElement):
                if not open_tags:
                    raise XMLWellFormednessError(
                        f"closing tag </{event.tag}> with no open element",
                        event.line,
                        event.column,
                    )
                opener = open_tags.pop()
                if opener.tag != event.tag:
                    raise XMLWellFormednessError(
                        f"mismatched closing tag </{event.tag}>,"
                        f" expected </{opener.tag}>"
                        f" (opened at line {opener.line})",
                        event.line,
                        event.column,
                    )
            elif isinstance(event, Characters):
                if not open_tags and event.text.strip():
                    raise XMLWellFormednessError(
                        "character data outside the root element",
                        event.line,
                        event.column,
                    )
            elif isinstance(event, (Comment, ProcessingInstruction, StartDocument)):
                pass
            yield event
        if open_tags:
            opener = open_tags[-1]
            raise XMLWellFormednessError(
                f"unclosed element <{opener.tag}>", opener.line, opener.column
            )
        if not saw_root:
            raise XMLWellFormednessError(
                "document has no root element", last_line, last_column
            )
        yield EndDocument(last_line, last_column)


def iter_events(
    text: str,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
    max_size: int | None = DEFAULT_MAX_SIZE,
) -> Iterator[Event]:
    """Convenience: iterate checked parse events for ``text``."""
    return PullParser(text, max_depth, max_size).events()
