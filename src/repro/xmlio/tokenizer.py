"""Streaming XML tokenizer.

Scans XML text into the event objects defined in :mod:`repro.xmlio.events`.
The tokenizer is deliberately a *lexer only*: it checks local syntax (tag
shapes, attribute quoting, entity references) and leaves well-formedness
(tag balance, single root) to :class:`repro.xmlio.parser.PullParser`.

Supported constructs: the XML declaration, elements with attributes,
self-closing tags, character data with entity and character references,
CDATA sections, comments, processing instructions, and an (ignored) DOCTYPE
declaration with an optional internal subset.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.xmlio import chars
from repro.xmlio.errors import XMLSyntaxError
from repro.xmlio.escape import resolve_entity
from repro.xmlio.events import (
    Characters,
    Comment,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)


class Tokenizer:
    """Turn an XML string into a stream of :class:`~repro.xmlio.events.Event`.

    Usage::

        for event in Tokenizer(text):
            ...

    The tokenizer tracks 1-based line/column positions for error messages and
    stamps each event with the position where the construct began.
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Event]:
        return self.tokens()

    def tokens(self) -> Iterator[Event]:
        """Yield events until the input is exhausted."""
        yield self._scan_prolog()
        while self._pos < len(self._text):
            if self._peek() == "<":
                event = self._scan_markup()
                if event is not None:
                    yield event
                    if isinstance(event, StartElement) and self._self_closed:
                        yield EndElement(event.line, event.column, event.tag)
            else:
                event = self._scan_character_data()
                if event is not None:
                    yield event

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._text):
            return ""
        return self._text[index]

    def _advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, maintaining line/column."""
        consumed = self._text[self._pos : self._pos + count]
        for ch in consumed:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += len(consumed)
        return consumed

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self._line, self._column)

    def _expect(self, literal: str) -> None:
        if not self._text.startswith(literal, self._pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_whitespace(self) -> int:
        start = self._pos
        while self._pos < len(self._text) and chars.is_xml_whitespace(self._peek()):
            self._advance()
        return self._pos - start

    def _scan_name(self) -> str:
        start = self._pos
        if not self._peek() or not chars.is_name_start_char(self._peek()):
            raise self._error(f"expected a name, found {self._peek()!r}")
        self._advance()
        while self._peek() and chars.is_name_char(self._peek()):
            self._advance()
        return self._text[start : self._pos]

    # ------------------------------------------------------------------
    # Prolog
    # ------------------------------------------------------------------

    def _scan_prolog(self) -> StartDocument:
        """Consume the optional XML declaration and return StartDocument."""
        line, column = self._line, self._column
        if self._text.startswith("<?xml", self._pos) and chars.is_xml_whitespace(
            self._peek(5)
        ):
            return self._scan_xml_declaration()
        return StartDocument(line, column)

    def _scan_xml_declaration(self) -> StartDocument:
        line, column = self._line, self._column
        self._expect("<?xml")
        attrs = dict(self._scan_attributes(until="?"))
        self._expect("?>")
        version = attrs.get("version", "1.0")
        encoding = attrs.get("encoding")
        standalone: bool | None = None
        if "standalone" in attrs:
            standalone = attrs["standalone"] == "yes"
        return StartDocument(line, column, version, encoding, standalone)

    # ------------------------------------------------------------------
    # Markup dispatch
    # ------------------------------------------------------------------

    def _scan_markup(self) -> Event | None:
        self._self_closed = False
        if self._text.startswith("<!--", self._pos):
            return self._scan_comment()
        if self._text.startswith("<![CDATA[", self._pos):
            return self._scan_cdata()
        if self._text.startswith("<!DOCTYPE", self._pos):
            self._scan_doctype()
            return None
        if self._text.startswith("<?", self._pos):
            return self._scan_processing_instruction()
        if self._text.startswith("</", self._pos):
            return self._scan_end_tag()
        return self._scan_start_tag()

    def _scan_comment(self) -> Comment:
        line, column = self._line, self._column
        self._expect("<!--")
        end = self._text.find("-->", self._pos)
        if end == -1:
            raise self._error("unterminated comment")
        body = self._text[self._pos : end]
        if "--" in body:
            raise self._error("'--' is not allowed inside a comment")
        self._advance(end - self._pos)
        self._expect("-->")
        return Comment(line, column, body)

    def _scan_cdata(self) -> Characters:
        line, column = self._line, self._column
        self._expect("<![CDATA[")
        end = self._text.find("]]>", self._pos)
        if end == -1:
            raise self._error("unterminated CDATA section")
        body = self._text[self._pos : end]
        self._advance(end - self._pos)
        self._expect("]]>")
        return Characters(line, column, body)

    def _scan_doctype(self) -> None:
        """Consume a DOCTYPE declaration, including an internal subset."""
        self._expect("<!DOCTYPE")
        depth = 0
        while self._pos < len(self._text):
            ch = self._peek()
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self._advance()
                return
            self._advance()
        raise self._error("unterminated DOCTYPE declaration")

    def _scan_processing_instruction(self) -> ProcessingInstruction:
        line, column = self._line, self._column
        self._expect("<?")
        target = self._scan_name()
        if target.lower() == "xml":
            raise self._error("XML declaration is only allowed at document start")
        self._skip_whitespace()
        end = self._text.find("?>", self._pos)
        if end == -1:
            raise self._error("unterminated processing instruction")
        data = self._text[self._pos : end]
        self._advance(end - self._pos)
        self._expect("?>")
        return ProcessingInstruction(line, column, target, data)

    # ------------------------------------------------------------------
    # Tags
    # ------------------------------------------------------------------

    def _scan_start_tag(self) -> StartElement:
        line, column = self._line, self._column
        self._expect("<")
        tag = self._scan_name()
        attributes = self._scan_attributes(until="/")
        if self._peek() == "/":
            self._advance()
            self._self_closed = True
        self._expect(">")
        return StartElement(line, column, tag, tuple(attributes))

    def _scan_end_tag(self) -> EndElement:
        line, column = self._line, self._column
        self._expect("</")
        tag = self._scan_name()
        self._skip_whitespace()
        self._expect(">")
        return EndElement(line, column, tag)

    def _scan_attributes(self, until: str) -> list[tuple[str, str]]:
        """Scan ``name="value"`` pairs until ``>`` or the ``until`` character.

        Duplicate attribute names are a well-formedness violation and are
        rejected here.
        """
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            skipped = self._skip_whitespace()
            ch = self._peek()
            if not ch:
                raise self._error("unterminated tag")
            if ch == ">" or ch == until:
                return attributes
            if attributes and not skipped:
                raise self._error("attributes must be separated by whitespace")
            name = self._scan_name()
            if name in seen:
                raise self._error(f"duplicate attribute {name!r}")
            seen.add(name)
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            attributes.append((name, self._scan_attribute_value()))

    def _scan_attribute_value(self) -> str:
        quote = self._peek()
        if quote not in ("'", '"'):
            raise self._error("attribute value must be quoted")
        self._advance()
        parts: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated attribute value")
            if ch == quote:
                self._advance()
                return "".join(parts)
            if ch == "<":
                raise self._error("'<' is not allowed inside an attribute value")
            if ch == "&":
                parts.append(self._scan_entity())
            else:
                parts.append(self._advance())

    # ------------------------------------------------------------------
    # Character data
    # ------------------------------------------------------------------

    def _scan_character_data(self) -> Characters | None:
        line, column = self._line, self._column
        parts: list[str] = []
        while self._pos < len(self._text) and self._peek() != "<":
            ch = self._peek()
            if ch == "&":
                parts.append(self._scan_entity())
            else:
                if self._text.startswith("]]>", self._pos):
                    raise self._error("']]>' is not allowed in character data")
                parts.append(self._advance())
        text = "".join(parts)
        if not text:
            return None
        return Characters(line, column, text)

    def _scan_entity(self) -> str:
        line, column = self._line, self._column
        self._expect("&")
        end = self._text.find(";", self._pos)
        if end == -1 or end - self._pos > 32:
            raise XMLSyntaxError("unterminated entity reference", line, column)
        body = self._text[self._pos : end]
        self._advance(end - self._pos + 1)
        return resolve_entity(body, line, column)
