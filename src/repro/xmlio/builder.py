"""Build :class:`~repro.xmlio.tree.Document` trees from parse events."""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.xmlio.errors import XMLWellFormednessError
from repro.xmlio.events import (
    Characters,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)
from repro.xmlio.parser import DEFAULT_MAX_DEPTH, DEFAULT_MAX_SIZE, PullParser
from repro.xmlio.tree import Document, Element


class TreeBuilder:
    """Accumulate parse events into a document tree.

    Feed events via :meth:`feed` (or construct with an iterable) and call
    :meth:`finish` to obtain the :class:`Document`.
    """

    def __init__(self, source_name: str = "<string>") -> None:
        self._source_name = source_name
        self._root: Element | None = None
        self._stack: list[Element] = []
        self._version = "1.0"
        self._encoding: str | None = None

    def feed(self, event: Event) -> None:
        """Incorporate one parse event."""
        if isinstance(event, StartDocument):
            self._version = event.version
            self._encoding = event.encoding
        elif isinstance(event, StartElement):
            element = Element(
                event.tag, dict(event.attributes), event.line, event.column
            )
            if self._stack:
                self._stack[-1].append(element)
            elif self._root is None:
                self._root = element
            else:
                raise XMLWellFormednessError(
                    "multiple root elements", event.line, event.column
                )
            self._stack.append(element)
        elif isinstance(event, EndElement):
            if not self._stack:
                raise XMLWellFormednessError(
                    "unbalanced end tag", event.line, event.column
                )
            self._stack.pop()
        elif isinstance(event, Characters):
            if self._stack:
                self._stack[-1].append_text(event.text)
        # Comments, PIs, StartDocument/EndDocument carry no tree content.

    def feed_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.feed(event)

    def finish(self) -> Document:
        """Return the built document.

        Raises
        ------
        XMLWellFormednessError
            If no root element was seen or elements remain open.
        """
        if self._root is None:
            raise XMLWellFormednessError("document has no root element")
        if self._stack:
            raise XMLWellFormednessError(f"unclosed element <{self._stack[-1].tag}>")
        return Document(self._root, self._version, self._encoding, self._source_name)


def parse_string(
    text: str,
    source_name: str = "<string>",
    max_depth: int | None = DEFAULT_MAX_DEPTH,
    max_size: int | None = DEFAULT_MAX_SIZE,
) -> Document:
    """Parse XML ``text`` into a :class:`Document`.

    ``max_depth``/``max_size`` bound nesting depth and input size
    (``None`` disables either); violations raise
    :class:`~repro.xmlio.errors.XMLResourceLimitError`.
    """
    builder = TreeBuilder(source_name)
    builder.feed_all(PullParser(text, max_depth, max_size))
    return builder.finish()


def parse_file(
    path: str | os.PathLike[str],
    encoding: str | None = None,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
    max_size: int | None = DEFAULT_MAX_SIZE,
) -> Document:
    """Parse the XML file at ``path`` into a :class:`Document`.

    With ``encoding=None`` (the default) the encoding is taken from the
    file's XML declaration when present (a BOM also wins), falling back
    to UTF-8 — so latin-1 exports that declare themselves parse without
    any caller configuration.  ``max_depth``/``max_size`` as in
    :func:`parse_string`; the size check runs on the raw bytes before
    decoding, so an oversized file is rejected without the decode cost.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    if max_size is not None and len(raw) > max_size:
        from repro.xmlio.errors import XMLResourceLimitError

        raise XMLResourceLimitError(
            f"file {os.fspath(path)!r} of {len(raw)} bytes exceeds the"
            f" {max_size}-byte limit",
            limit=max_size,
            actual=len(raw),
        )
    if encoding is None:
        encoding = _sniff_encoding(raw)
    text = raw.decode(encoding)
    if text.startswith("﻿"):
        text = text[1:]
    return parse_string(
        text, source_name=os.fspath(path), max_depth=max_depth, max_size=max_size
    )


def _sniff_encoding(raw: bytes) -> str:
    """Encoding from BOM or the XML declaration's ``encoding=`` pseudo-
    attribute; UTF-8 otherwise."""
    if raw.startswith(b"\xff\xfe"):
        return "utf-16-le"
    if raw.startswith(b"\xfe\xff"):
        return "utf-16-be"
    head = raw[:200]
    if head.startswith(b"<?xml"):
        end = head.find(b"?>")
        declaration = head[: end if end != -1 else len(head)]
        for quote in (b'"', b"'"):
            marker = b"encoding=" + quote
            start = declaration.find(marker)
            if start != -1:
                start += len(marker)
                stop = declaration.find(quote, start)
                if stop != -1:
                    return declaration[start:stop].decode("ascii", "replace")
    return "utf-8"
