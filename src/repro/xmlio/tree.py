"""In-memory XML tree model.

The model keeps *mixed content* faithfully: an :class:`Element` owns an
ordered list of children, each either another ``Element`` or a :class:`Text`
node.  Convenience accessors (``text``, ``itertext``, ``find`` and friends)
cover the common search-system access patterns.

Every node knows its parent and its ordinal position among its siblings,
which the labeling pass and the order-sensitive twig algorithms rely on.
"""

from __future__ import annotations

from collections.abc import Iterator


class Node:
    """Base class for tree nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Element | None = None


class Text(Node):
    """A run of character data inside an element."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"


class Element(Node):
    """An XML element with attributes and ordered mixed-content children."""

    __slots__ = ("tag", "attributes", "children", "line", "column")

    def __init__(
        self,
        tag: str,
        attributes: dict[str, str] | None = None,
        line: int = 0,
        column: int = 0,
    ) -> None:
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Node] = []
        self.line = line
        self.column = column

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, child: Node) -> Node:
        """Append ``child`` (adopting it) and return it."""
        if child.parent is not None:
            raise ValueError("node already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, value: str) -> Text:
        """Append character data, merging with a trailing text node."""
        if self.children and isinstance(self.children[-1], Text):
            last = self.children[-1]
            last.value += value
            return last
        node = Text(value)
        return self.append(node)  # type: ignore[return-value]

    def make_child(self, tag: str, attributes: dict[str, str] | None = None) -> Element:
        """Create, append and return a new child element."""
        child = Element(tag, attributes)
        self.append(child)
        return child

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def child_elements(self) -> list[Element]:
        """Direct child elements, in document order."""
        return [node for node in self.children if isinstance(node, Element)]

    def iter(self) -> Iterator[Element]:
        """Iterate this element and all descendant elements, preorder."""
        stack: list[Element] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.child_elements()))

    def iter_descendants(self) -> Iterator[Element]:
        """Iterate descendant elements (excluding self), preorder."""
        iterator = self.iter()
        next(iterator)
        return iterator

    def itertext(self) -> Iterator[str]:
        """Iterate all text runs under this element, in document order."""
        for child in self.children:
            if isinstance(child, Text):
                yield child.value
            elif isinstance(child, Element):
                yield from child.itertext()

    @property
    def text(self) -> str:
        """All character data under this element, concatenated."""
        return "".join(self.itertext())

    @property
    def direct_text(self) -> str:
        """Character data that is a *direct* child of this element."""
        return "".join(
            child.value for child in self.children if isinstance(child, Text)
        )

    def find(self, tag: str) -> Element | None:
        """First direct child element with ``tag``, or None."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list[Element]:
        """All direct child elements with ``tag``."""
        return [c for c in self.child_elements() if c.tag == tag]

    def ancestors(self) -> Iterator[Element]:
        """Iterate ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path(self) -> tuple[str, ...]:
        """Root-to-node tag path, e.g. ``('dblp', 'article', 'title')``."""
        tags = [self.tag]
        tags.extend(ancestor.tag for ancestor in self.ancestors())
        return tuple(reversed(tags))

    def sibling_index(self) -> int:
        """0-based position among the parent's *element* children."""
        if self.parent is None:
            return 0
        for index, sibling in enumerate(self.parent.child_elements()):
            if sibling is self:
                return index
        raise RuntimeError("element not found among its parent's children")

    def __repr__(self) -> str:
        return f"Element({self.tag!r}, children={len(self.children)})"


class Document:
    """A parsed XML document: the root element plus prolog metadata."""

    __slots__ = ("root", "version", "encoding", "source_name")

    def __init__(
        self,
        root: Element,
        version: str = "1.0",
        encoding: str | None = None,
        source_name: str = "<string>",
    ) -> None:
        self.root = root
        self.version = version
        self.encoding = encoding
        self.source_name = source_name

    def iter(self) -> Iterator[Element]:
        """Iterate every element in the document, preorder."""
        return self.root.iter()

    def count_elements(self) -> int:
        """Total number of elements in the document."""
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:
        return f"Document(root={self.root.tag!r}, source={self.source_name!r})"
