"""Parse events emitted by the pull parser.

The event stream is the narrow waist of the XML substrate: the tree builder,
the labeling pass, and the index builders all consume these events, so a
document only has to be scanned once even when several structures are built
from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for parse events; carries the source position."""

    line: int
    column: int


@dataclass(frozen=True, slots=True)
class StartDocument(Event):
    """Start of the document; carries the XML declaration if present."""

    version: str = "1.0"
    encoding: str | None = None
    standalone: bool | None = None


@dataclass(frozen=True, slots=True)
class EndDocument(Event):
    """End of the document."""


@dataclass(frozen=True, slots=True)
class StartElement(Event):
    """An opening (or self-closing) tag.

    ``attributes`` preserves document order.  A self-closing tag emits a
    ``StartElement`` immediately followed by an ``EndElement``.
    """

    tag: str = ""
    attributes: tuple[tuple[str, str], ...] = field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class EndElement(Event):
    """A closing tag (or the synthetic close of a self-closing tag)."""

    tag: str = ""


@dataclass(frozen=True, slots=True)
class Characters(Event):
    """A run of character data (entities already resolved, CDATA included)."""

    text: str = ""


@dataclass(frozen=True, slots=True)
class Comment(Event):
    """An XML comment (``<!-- ... -->``)."""

    text: str = ""


@dataclass(frozen=True, slots=True)
class ProcessingInstruction(Event):
    """A processing instruction (``<?target data?>``)."""

    target: str = ""
    data: str = ""
