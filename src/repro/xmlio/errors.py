"""Error types raised by the XML substrate.

Every syntax problem detected while tokenizing or parsing raises
:class:`XMLSyntaxError`, which carries the 1-based line and column of the
offending character so callers can point users at the exact spot in their
input.
"""

from __future__ import annotations


class XMLError(Exception):
    """Base class for all errors raised by :mod:`repro.xmlio`."""


class XMLSyntaxError(XMLError):
    """Malformed XML input.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based position of the offending character in the input text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        if line:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)


class XMLWellFormednessError(XMLSyntaxError):
    """Structurally invalid XML (mismatched tags, multiple roots, ...)."""


class SerializationError(XMLError):
    """A tree cannot be rendered back to XML text (e.g. invalid tag name)."""


class XMLResourceLimitError(XMLError):
    """A document exceeded a configured resource limit.

    Raised for inputs that are syntactically fine but operationally
    dangerous: nesting deeper than ``max_depth`` (a recursion/stack
    hazard for tree algorithms) or documents larger than ``max_size``.

    Parameters
    ----------
    message:
        Human-readable description of the violated limit.
    limit:
        The configured ceiling.
    actual:
        The observed value that exceeded it (when known).
    """

    def __init__(self, message: str, limit: int = 0, actual: int = 0) -> None:
        self.limit = limit
        self.actual = actual
        super().__init__(message)
