"""Character classification for XML 1.0 names and text.

Implements the pragmatic subset of the XML 1.0 (Fifth Edition) character
productions that real-world documents use: ASCII letters, digits, ``_``,
``-``, ``.``, ``:`` and the common Unicode letter ranges. The goal is to
accept every document our dataset generators and typical DBLP/XMark corpora
produce, and to reject obviously broken names with a precise error instead
of silently mis-parsing.
"""

from __future__ import annotations

# Characters (besides letters) allowed to start an XML name.
_NAME_START_EXTRA = {"_", ":"}
# Characters (besides letters/digits) allowed inside an XML name.
_NAME_EXTRA = {"_", ":", "-", "."}

# Unicode ranges from the NameStartChar production that cover practically all
# natural-language tag names.  Each entry is an inclusive (lo, hi) pair.
_NAME_START_RANGES = (
    (0xC0, 0xD6),
    (0xD8, 0xF6),
    (0xF8, 0x2FF),
    (0x370, 0x37D),
    (0x37F, 0x1FFF),
    (0x200C, 0x200D),
    (0x2070, 0x218F),
    (0x2C00, 0x2FEF),
    (0x3001, 0xD7FF),
    (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD),
)

_NAME_EXTRA_RANGES = (
    (0xB7, 0xB7),
    (0x300, 0x36F),
    (0x203F, 0x2040),
)


def _in_ranges(codepoint: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    return any(lo <= codepoint <= hi for lo, hi in ranges)


def is_name_start_char(ch: str) -> bool:
    """Return True if ``ch`` may begin an XML name (tag or attribute)."""
    if ch.isascii():
        return ch.isalpha() or ch in _NAME_START_EXTRA
    return _in_ranges(ord(ch), _NAME_START_RANGES)


def is_name_char(ch: str) -> bool:
    """Return True if ``ch`` may appear inside an XML name."""
    if ch.isascii():
        return ch.isalnum() or ch in _NAME_EXTRA
    return is_name_start_char(ch) or _in_ranges(ord(ch), _NAME_EXTRA_RANGES)


def is_valid_name(name: str) -> bool:
    """Return True if ``name`` is a well-formed XML name."""
    if not name:
        return False
    if not is_name_start_char(name[0]):
        return False
    return all(is_name_char(ch) for ch in name[1:])


def is_xml_whitespace(ch: str) -> bool:
    """Return True for the four XML whitespace characters."""
    return ch in " \t\r\n"


def is_valid_char(ch: str) -> bool:
    """Return True if ``ch`` is a legal XML 1.0 document character."""
    cp = ord(ch)
    return (
        cp in (0x9, 0xA, 0xD)
        or 0x20 <= cp <= 0xD7FF
        or 0xE000 <= cp <= 0xFFFD
        or 0x10000 <= cp <= 0x10FFFF
    )
