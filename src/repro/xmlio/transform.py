"""Document transforms applied before indexing.

:func:`expand_attributes` is the classic trick that makes attributes
first-class citizens of twig matching: each attribute ``name="value"``
becomes a synthetic child element ``<@name>value</@name>`` placed before
the element's real children.  Every downstream component — labeling,
DataGuide, term index, completion, all matching algorithms — then handles
attributes with zero special cases: ``//item[./@id="item5"]`` is just a
twig.

The expanded tree is a *shadow copy* used for indexing; the caller's
original document is never mutated (``@name`` is not a serializable XML
tag, and the original must stay serializable).
"""

from __future__ import annotations

from repro.xmlio.tree import Document, Element, Node, Text

#: Prefix marking synthetic attribute elements.
ATTRIBUTE_PREFIX = "@"


def attribute_tag(name: str) -> str:
    """The synthetic tag for attribute ``name``."""
    return ATTRIBUTE_PREFIX + name


def is_attribute_tag(tag: str) -> bool:
    return tag.startswith(ATTRIBUTE_PREFIX)


def expand_attributes(document: Document) -> Document:
    """A deep copy of ``document`` with attributes materialized as
    ``@name`` child elements (attributes keep living in ``attributes``
    too, so provenance is preserved)."""

    def clone(element: Element) -> Element:
        copy = Element(
            element.tag, dict(element.attributes), element.line, element.column
        )
        for name, value in element.attributes.items():
            synthetic = copy.make_child(attribute_tag(name))
            if value:
                synthetic.append_text(value)
        for child in element.children:
            copy.append(_clone_node(child, clone))
        return copy

    return Document(
        clone(document.root),
        document.version,
        document.encoding,
        document.source_name,
    )


def _clone_node(node: Node, clone_element) -> Node:
    if isinstance(node, Text):
        return Text(node.value)
    if isinstance(node, Element):
        return clone_element(node)
    raise TypeError(f"unexpected node type: {node!r}")
