"""Entity escaping and resolution for XML text and attribute values."""

from __future__ import annotations

from repro.xmlio.errors import XMLSyntaxError

#: The five predefined XML entities.
PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape ``value`` for use as XML character data."""
    if not any(ch in value for ch in "&<>"):
        return value
    return "".join(_TEXT_ESCAPES.get(ch, ch) for ch in value)


def escape_attribute(value: str) -> str:
    """Escape ``value`` for use inside a double-quoted attribute."""
    if not any(ch in value for ch in '&<>"'):
        return value
    return "".join(_ATTR_ESCAPES.get(ch, ch) for ch in value)


def resolve_entity(body: str, line: int = 0, column: int = 0) -> str:
    """Resolve the body of an entity reference (text between ``&`` and ``;``).

    Supports the five predefined entities plus decimal (``#65``) and
    hexadecimal (``#x41``) character references.

    Raises
    ------
    XMLSyntaxError
        If the entity is unknown or the character reference is malformed.
    """
    if not body:
        raise XMLSyntaxError("empty entity reference", line, column)
    if body[0] == "#":
        return _resolve_char_reference(body[1:], line, column)
    if body in PREDEFINED_ENTITIES:
        return PREDEFINED_ENTITIES[body]
    raise XMLSyntaxError(f"unknown entity &{body};", line, column)


def _resolve_char_reference(digits: str, line: int, column: int) -> str:
    base = 10
    if digits[:1] in ("x", "X"):
        base = 16
        digits = digits[1:]
    try:
        codepoint = int(digits, base)
    except ValueError:
        raise XMLSyntaxError(
            f"malformed character reference &#{digits};", line, column
        ) from None
    try:
        return chr(codepoint)
    except (ValueError, OverflowError):
        raise XMLSyntaxError(
            f"character reference out of range: {codepoint}", line, column
        ) from None


def unescape(text: str) -> str:
    """Resolve all entity references in ``text``.

    Convenience for tests and small strings; the tokenizer resolves entities
    inline during scanning instead of calling this.
    """
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference")
        out.append(resolve_entity(text[i + 1 : end]))
        i = end + 1
    return "".join(out)
