"""Server-side admission control: a bounded concurrency gate.

At most ``capacity`` requests execute at once; up to ``max_queue`` more
may wait ``queue_timeout_s`` for a slot.  Anything beyond that is shed
immediately with :class:`~repro.resilience.errors.Overloaded` — the
server maps it to HTTP 429 + ``Retry-After`` — instead of stacking
threads until the process keels over.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.resilience.errors import Overloaded


class AdmissionGate:
    """A concurrency limiter with a small bounded wait queue."""

    def __init__(
        self,
        capacity: int = 8,
        max_queue: int = 16,
        queue_timeout_s: float = 0.5,
        retry_after_s: float = 1.0,
        clock=time.monotonic,
        site: str = "server.admission",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.capacity = capacity
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        #: Where this gate sits (``Overloaded.site`` in 429 bodies and
        #: the ``site`` field of :meth:`snapshot`) — per-tenant slice
        #: gates use ``tenant.<name>.admission`` so shed requests are
        #: attributable to the tenant that exhausted its quota.
        self.site = site
        self._clock = clock
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        #: Requests shed so far (monitoring).
        self.shed = 0

    # ------------------------------------------------------------------

    def acquire(self) -> None:
        """Take a slot, waiting briefly in the bounded queue.

        Raises
        ------
        Overloaded
            When the queue is full, or no slot freed up within
            ``queue_timeout_s``.
        """
        with self._cond:
            if self._active < self.capacity:
                self._active += 1
                return
            if self._waiting >= self.max_queue:
                self.shed += 1
                raise Overloaded(
                    "admission queue full",
                    retry_after=self.retry_after_s,
                    site=self.site,
                )
            self._waiting += 1
            give_up_at = self._clock() + self.queue_timeout_s
            try:
                while self._active >= self.capacity:
                    remaining = give_up_at - self._clock()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if self._active >= self.capacity:
                            self.shed += 1
                            raise Overloaded(
                                "timed out waiting for a server slot",
                                retry_after=self.retry_after_s,
                                site=self.site,
                            )
                self._active += 1
            finally:
                self._waiting -= 1

    def release(self) -> None:
        """Give the slot back and wake one waiter."""
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._active -= 1
            self._cond.notify()

    @contextmanager
    def slot(self):
        """``with gate.slot():`` — acquire around a request."""
        self.acquire()
        try:
            yield self
        finally:
            self.release()

    def resize(self, capacity: int, max_queue: int | None = None) -> None:
        """Change the gate's limits in place, keeping its counters.

        Used by the tenant registry: when tenants are added, every
        default-quota slice shrinks so the slices still partition the
        global capacity.  Requests already holding slots keep them —
        shrinking only affects future admissions — and any waiters that
        a capacity *increase* could now admit are woken.
        """
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        with self._cond:
            self.capacity = capacity
            if max_queue is not None:
                self.max_queue = max_queue
            self._cond.notify_all()

    def snapshot(self) -> dict:
        """Current gate state (monitoring / tests)."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "active": self._active,
                "waiting": self._waiting,
                "max_queue": self.max_queue,
                "shed": self.shed,
                # Mirrors the ``retry_after_s``/``site`` fields of the 429
                # body (resilience.errors.Overloaded) so monitoring and
                # error payloads agree on names and units.
                "retry_after_s": self.retry_after_s,
                "site": self.site,
            }


class ConnectionGate:
    """Admission control one layer down: concurrent *connections*.

    The event-driven transport holds a connection open across many
    requests (keep-alive), so the request gate alone no longer bounds
    resource use — a crowd of idle sockets is its own overload shape.
    This gate counts live connections; once ``capacity`` are open,
    further accepts are turned away immediately (the server answers 429
    + ``Retry-After`` and closes).  Unlike :class:`AdmissionGate` there
    is no wait queue: a connection is either accepted or refused, and
    refusal is cheap enough to do at accept time on the loop thread.
    """

    def __init__(self, capacity: int = 256, retry_after_s: float = 1.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._active = 0
        #: Connections refused at the cap (monitoring).
        self.refused = 0
        #: Connections dropped by the idle/slow-loris timeout.
        self.idle_dropped = 0

    def try_acquire(self) -> bool:
        """Claim a connection slot; False (and counted) at capacity."""
        with self._lock:
            if self._active >= self.capacity:
                self.refused += 1
                return False
            self._active += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._active <= 0:
                raise RuntimeError("release() without a matching try_acquire()")
            self._active -= 1

    def count_idle_drop(self) -> None:
        """Record a connection dropped by the idle timeout."""
        with self._lock:
            self.idle_dropped += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "active": self._active,
                "refused": self.refused,
                "idle_dropped": self.idle_dropped,
                "retry_after_s": self.retry_after_s,
                "site": "server.connections",
            }
