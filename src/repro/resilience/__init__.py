"""Resilience layer: deadlines, admission control, fault injection.

An interactive engine is only as good as its worst request: LotusX
promises on-the-fly completion and bounded search latency, so every
request carries a :class:`Deadline` (wall clock + step budget) that the
twig joins, keyword scans, and completion enumerations check
cooperatively.  When the budget runs out, layers degrade gracefully —
``search()`` returns the partial top-k with ``truncated=True``, the
server sheds excess load through an :class:`AdmissionGate` with HTTP
429/``Retry-After`` — instead of pinning threads.

:mod:`repro.resilience.faults` provides the deterministic fault-injection
harness the resilience test-suite drives all of this with.
"""

from repro.resilience.admission import AdmissionGate, ConnectionGate
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import CLOCK_CHECK_INTERVAL, Deadline
from repro.resilience.errors import (
    DeadlineExceeded,
    Overloaded,
    PayloadTooLarge,
    ResilienceError,
    ShardsUnavailable,
)
from repro.resilience.faults import Fault, clear, fault_point, inject, injected
from repro.resilience.retry import RetryPolicy

__all__ = [
    "AdmissionGate",
    "CLOCK_CHECK_INTERVAL",
    "CircuitBreaker",
    "ConnectionGate",
    "Deadline",
    "DeadlineExceeded",
    "Fault",
    "Overloaded",
    "PayloadTooLarge",
    "ResilienceError",
    "RetryPolicy",
    "ShardsUnavailable",
    "clear",
    "fault_point",
    "inject",
    "injected",
]
