"""The structured error taxonomy of the resilience layer.

Every error the request path can shed carries a stable machine-readable
``code`` (what JSON clients switch on) and a default ``http_status`` (what
the stdlib server maps it to).  Engine code raises these; the server
translates them; clients never see a raw traceback.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for resource-control errors.

    ``code`` is the stable JSON error code, ``http_status`` the HTTP
    status the server maps the error to.
    """

    code = "internal"
    http_status = 500

    def payload(self) -> dict:
        """The JSON body a server should return for this error."""
        return {"error": str(self), "code": self.code}


class DeadlineExceeded(ResilienceError):
    """A request ran past its wall-clock deadline or step budget.

    ``site`` names the cooperative checkpoint that tripped; ``partial``
    optionally carries whatever well-formed partial result the raising
    layer could salvage (e.g. the matches gathered before the trip), so
    callers can degrade gracefully instead of discarding paid-for work.
    """

    code = "deadline_exceeded"
    http_status = 503

    def __init__(
        self,
        message: str = "deadline exceeded",
        site: str = "",
        elapsed_ms: float | None = None,
        steps: int | None = None,
        partial: list | None = None,
    ) -> None:
        self.site = site
        self.elapsed_ms = elapsed_ms
        self.steps = steps
        self.partial = partial
        detail = message
        if site:
            detail += f" at {site!r}"
        if elapsed_ms is not None:
            detail += f" after {elapsed_ms:.1f} ms"
        super().__init__(detail)


class Overloaded(ResilienceError):
    """Admission control shed this request (queue full or wait timed out).

    ``retry_after`` is the suggested client back-off in seconds (served
    as the ``Retry-After`` header).
    """

    code = "overloaded"
    http_status = 429

    def __init__(
        self, message: str = "server overloaded, retry later", retry_after: float = 1.0
    ) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class PayloadTooLarge(ResilienceError):
    """A request body exceeded the configured size limit."""

    code = "payload_too_large"
    http_status = 413

    def __init__(self, message: str = "request body too large", limit: int = 0) -> None:
        self.limit = limit
        super().__init__(message)
