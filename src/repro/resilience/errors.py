"""The structured error taxonomy of the resilience layer.

Every error the request path can shed carries a stable machine-readable
``code`` (what JSON clients switch on) and a default ``http_status`` (what
the stdlib server maps it to).  Engine code raises these; the server
translates them; clients never see a raw traceback.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for resource-control errors.

    ``code`` is the stable JSON error code, ``http_status`` the HTTP
    status the server maps the error to.  Every subclass carries a
    ``site`` (which checkpoint / subsystem originated the error; may be
    empty) that :meth:`payload` surfaces, so error bodies and the
    ``/api/stats`` counters name failure locations the same way.
    """

    code = "internal"
    http_status = 500
    site: str = ""

    def payload(self) -> dict:
        """The JSON body a server should return for this error."""
        body = {"error": str(self), "code": self.code}
        if self.site:
            body["site"] = self.site
        return body


class DeadlineExceeded(ResilienceError):
    """A request ran past its wall-clock deadline or step budget.

    ``site`` names the cooperative checkpoint that tripped; ``partial``
    optionally carries whatever well-formed partial result the raising
    layer could salvage (e.g. the matches gathered before the trip), so
    callers can degrade gracefully instead of discarding paid-for work.
    """

    code = "deadline_exceeded"
    http_status = 503

    def __init__(
        self,
        message: str = "deadline exceeded",
        site: str = "",
        elapsed_ms: float | None = None,
        steps: int | None = None,
        partial: list | None = None,
        remaining_ms: float | None = None,
    ) -> None:
        self.site = site
        self.elapsed_ms = elapsed_ms
        self.steps = steps
        self.partial = partial
        self.remaining_ms = remaining_ms
        detail = message
        if site:
            detail += f" at {site!r}"
        if elapsed_ms is not None:
            detail += f" after {elapsed_ms:.1f} ms"
        super().__init__(detail)

    def payload(self) -> dict:
        body = super().payload()
        if self.elapsed_ms is not None:
            body["elapsed_ms"] = round(self.elapsed_ms, 3)
        if self.steps is not None:
            body["steps"] = self.steps
        body["remaining_ms"] = (
            round(self.remaining_ms, 3) if self.remaining_ms is not None else 0.0
        )
        return body


class Overloaded(ResilienceError):
    """Admission control shed this request (queue full or wait timed out).

    ``retry_after`` is the suggested client back-off in seconds (served
    as the ``Retry-After`` header).
    """

    code = "overloaded"
    http_status = 429

    def __init__(
        self,
        message: str = "server overloaded, retry later",
        retry_after: float = 1.0,
        site: str = "server.admission",
    ) -> None:
        self.retry_after = retry_after
        self.site = site
        super().__init__(message)

    def payload(self) -> dict:
        body = super().payload()
        body["retry_after_s"] = self.retry_after
        return body


class ShardsUnavailable(ResilienceError):
    """Part of the serving fleet could not answer at all.

    Raised by the sharded scatter-gather when every replica of at least
    one dispatched shard group failed (crashed, tripped its breaker, or
    was rejected as dead).  ``down`` lists the affected shard indices and
    ``partial`` carries the merged answers from the shards that *did*
    respond, so callers with degradation semantics (``search``,
    ``keyword_search``) can salvage a ``degraded`` response instead of
    failing the whole request.
    """

    code = "shards_unavailable"
    http_status = 503

    def __init__(
        self,
        message: str = "one or more shard groups are unavailable",
        down: tuple[int, ...] | list[int] = (),
        partial: list | None = None,
        site: str = "fleet.scatter",
    ) -> None:
        self.down = tuple(down)
        self.partial = partial
        self.site = site
        detail = message
        if self.down:
            detail += f" (shards {list(self.down)})"
        super().__init__(detail)

    def payload(self) -> dict:
        body = super().payload()
        body["down_shards"] = list(self.down)
        return body


class PayloadTooLarge(ResilienceError):
    """A request body exceeded the configured size limit."""

    code = "payload_too_large"
    http_status = 413

    def __init__(self, message: str = "request body too large", limit: int = 0) -> None:
        self.limit = limit
        super().__init__(message)
