"""Bounded retries with exponential backoff, jitter, and deadline budgets.

A :class:`RetryPolicy` is a small immutable value describing *how* to
retry; the caller owns the loop.  Two properties keep retries safe under
load:

* **Jittered exponential backoff** — delay ``base_delay_s *
  multiplier**(attempt-1)``, capped at ``max_delay_s``, then scaled by a
  random factor in ``[1 - jitter, 1]`` so synchronized clients don't
  retry in lockstep.  The random source is injectable (tests pass a
  seeded ``random.Random``).
* **Deadline budgeting** — :meth:`budgeted_delay_s` refuses to schedule a
  retry the caller's :class:`~repro.resilience.deadline.Deadline` cannot
  afford: the returned delay never eats more than half the remaining
  wall budget (the retried attempt itself still needs time to run), and
  ``None`` means "stop retrying, the budget is gone".  Retries therefore
  never blow the request's wall clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Below this much remaining wall budget (seconds) retrying is pointless:
#: the retried attempt could not finish anyway.
MIN_RETRY_BUDGET_S = 0.002


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry one logical call.

    ``max_attempts`` counts every attempt including the first; a policy
    with ``max_attempts=1`` never retries.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # ------------------------------------------------------------------

    def delay_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt must be at least 1")
        raw = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if self.jitter and raw > 0:
            uniform = (rng or random).random()
            raw *= 1.0 - self.jitter + uniform * self.jitter
        return raw

    def budgeted_delay_s(
        self, attempt: int, deadline=None, rng: random.Random | None = None
    ) -> float | None:
        """The backoff to sleep before retry ``attempt``, clipped to the
        deadline's remaining budget — or ``None`` when no retry fits.

        With no deadline (or an unlimited one) the plain jittered delay
        comes back.  With a wall deadline, the delay is capped at half
        the remaining budget, and once the residue drops under
        :data:`MIN_RETRY_BUDGET_S` (or the deadline has already expired)
        the answer is ``None``: give up instead of burning the caller's
        last milliseconds on a doomed attempt.
        """
        if attempt >= self.max_attempts:
            return None
        delay = self.delay_s(attempt, rng)
        if deadline is None:
            return delay
        if deadline.expired():
            return None
        remaining = deadline.remaining()
        if remaining is None:
            return delay
        if remaining <= MIN_RETRY_BUDGET_S:
            return None
        return min(delay, remaining / 2.0)
