"""Per-dependency circuit breaking: closed → open → half-open.

A :class:`CircuitBreaker` guards one downstream dependency (in LotusX: one
shard replica).  Callers ask :meth:`CircuitBreaker.allow` before each call
and report the outcome with :meth:`record_success` /
:meth:`record_failure`; the breaker tracks a sliding window of recent
outcomes and

* **trips open** when the window's failure rate crosses
  ``failure_threshold`` (once at least ``min_calls`` outcomes are in the
  window), so a dead replica is *skipped* instead of timed out again and
  again;
* **rejects instantly** while open, until ``cooldown_s`` has passed;
* then moves to **half-open** and admits at most ``half_open_probes``
  concurrent probe calls: one success closes the breaker (and clears the
  window), one failure re-opens it and restarts the cooldown.

The clock is injectable so tests never sleep through a cooldown.  All
methods are thread-safe; the breaker is shared by every thread routing to
the same replica.
"""

from __future__ import annotations

import threading
import time
from collections import deque

#: Breaker states (plain strings: they go straight into ``/api/stats``).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A failure-rate circuit breaker over a sliding outcome window."""

    def __init__(
        self,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_calls < 1:
            raise ValueError("min_calls must be at least 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        #: Times the breaker tripped open (monitoring).
        self.opened = 0
        #: Calls rejected while open / probe-saturated (monitoring).
        self.rejected = 0

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half_open`` when the
        cooldown has elapsed (observing the state is side-effect-free for
        the outcome window, but does perform the timed transition)."""
        with self._lock:
            self._advance()
            return self._state

    def allow(self) -> bool:
        """May the caller issue a request through this breaker now?

        While half-open, a ``True`` answer *reserves* one of the probe
        slots: the caller must follow up with ``record_success`` or
        ``record_failure`` to release it.
        """
        with self._lock:
            self._advance()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                self.rejected += 1
                return False
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejected += 1
            return False

    def record_success(self) -> None:
        """Report one successful call through the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                # A healthy probe closes the breaker; start from a clean
                # window so one stale failure can't immediately re-trip.
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._state = CLOSED
                self._opened_at = None
                self._outcomes.clear()
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """Report one failed call through the breaker."""
        with self._lock:
            self._outcomes.append(False)
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._trip()
                return
            if self._state != CLOSED:
                return
            if len(self._outcomes) < self.min_calls:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._trip()

    def abandon(self) -> None:
        """Release an :meth:`allow` reservation without an outcome.

        Used when a call admitted through the breaker was cut short by
        the *caller's* own deadline — that says nothing about the
        replica's health, so neither success nor failure is recorded,
        but a reserved half-open probe slot must not leak.
        """
        with self._lock:
            if self._state == HALF_OPEN and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    # ------------------------------------------------------------------

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self.opened += 1

    def _advance(self) -> None:
        """Open → half-open once the cooldown has elapsed (lock held)."""
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
                self._probes_in_flight = 0

    def snapshot(self) -> dict:
        """Current breaker state and counters (monitoring)."""
        with self._lock:
            self._advance()
            outcomes = list(self._outcomes)
            failures = sum(1 for ok in outcomes if not ok)
            return {
                "state": self._state,
                "window": len(outcomes),
                "failures": failures,
                "opened": self.opened,
                "rejected": self.rejected,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, opened={self.opened})"
