"""Deterministic fault injection at named engine sites.

The engine calls :func:`fire` (directly or through
:meth:`repro.resilience.deadline.Deadline.check`) at *named sites* —
``"twig.twig_stack"``, ``"keyword.slca"``, ``"server.request"`` … — and
this module decides whether a registered fault strikes there.  Faults can

* inject **latency** (``latency_s``: a real ``time.sleep``),
* raise an **exception** (``error``: an instance or a class),
* **exhaust the deadline** (``exhaust_deadline``: the site's
  :class:`~repro.resilience.deadline.Deadline` trips on its next check,
  which simulates budget exhaustion without any real waiting — the trick
  the tier-1 resilience tests use to stay fast).

``times``/``skip`` make firing deterministic ("strike the third hit
only"), and sites match exactly or by ``fnmatch`` wildcard
(``"twig.*"``).  When nothing is registered, :func:`fire` is a single
global-flag test — cheap enough to leave in hot loops.
"""

from __future__ import annotations

import fnmatch
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: Fast-path flag: True iff at least one fault is registered.  Read
#: without the lock (benign race: worst case one extra locked check).
_ACTIVE = False

_LOCK = threading.Lock()


@dataclass
class Fault:
    """One registered fault.

    ``site`` is an exact site name or an ``fnmatch`` pattern.  Hits are
    counted per fault: the first ``skip`` hits pass through untouched,
    then the fault strikes at most ``times`` times (``None`` = always).
    ``exit_code`` hard-kills the *process* hosting the site with
    ``os._exit`` — the only way to simulate a killed pool worker
    deterministically; never use it at a site the parent process fires.
    """

    site: str
    latency_s: float = 0.0
    error: BaseException | type[BaseException] | None = None
    exhaust_deadline: bool = False
    exit_code: int | None = None
    times: int | None = None
    skip: int = 0
    #: Bookkeeping, mutated under the registry lock.
    hits: int = 0
    fired: int = 0

    def matches(self, site: str) -> bool:
        return self.site == site or fnmatch.fnmatch(site, self.site)


_FAULTS: list[Fault] = []


def install(fault: Fault) -> Fault:
    """Register ``fault`` and return it (for later :func:`remove`)."""
    global _ACTIVE
    with _LOCK:
        _FAULTS.append(fault)
        _ACTIVE = True
    return fault


def inject(site: str, **kwargs) -> Fault:
    """Shorthand: build and install a :class:`Fault` for ``site``."""
    return install(Fault(site, **kwargs))


def remove(fault: Fault) -> None:
    """Unregister ``fault`` (no-op if already gone)."""
    global _ACTIVE
    with _LOCK:
        if fault in _FAULTS:
            _FAULTS.remove(fault)
        _ACTIVE = bool(_FAULTS)


def clear() -> None:
    """Unregister every fault."""
    global _ACTIVE
    with _LOCK:
        _FAULTS.clear()
        _ACTIVE = False


def active() -> bool:
    """True iff any fault is registered (the hot-loop fast path)."""
    return _ACTIVE


@contextmanager
def injected(site: str, **kwargs):
    """Context manager: the fault exists only inside the ``with`` block."""
    fault = inject(site, **kwargs)
    try:
        yield fault
    finally:
        remove(fault)


def fire(site: str, deadline=None) -> None:
    """Run every matching registered fault at ``site``.

    ``deadline`` (when the site has one) is what ``exhaust_deadline``
    faults act on.  Latency is injected before errors so a fault can
    model "slow, then dead".
    """
    if not _ACTIVE:
        return
    struck: list[Fault] = []
    with _LOCK:
        for fault in _FAULTS:
            if not fault.matches(site):
                continue
            fault.hits += 1
            if fault.hits <= fault.skip:
                continue
            if fault.times is not None and fault.fired >= fault.times:
                continue
            fault.fired += 1
            struck.append(fault)
    for fault in struck:
        if fault.latency_s > 0:
            time.sleep(fault.latency_s)
        if fault.exhaust_deadline and deadline is not None:
            deadline.exhaust()
        if fault.exit_code is not None:
            os._exit(fault.exit_code)
        if fault.error is not None:
            error = fault.error
            raise error() if isinstance(error, type) else error


#: Alias for call sites that read better as "this is a fault point".
fault_point = fire


# ----------------------------------------------------------------------
# Declarative fault specs (CLI / CI hook)
# ----------------------------------------------------------------------

#: Environment variable holding a fault spec applied at server start.
FAULT_SPEC_ENV = "LOTUSX_FAULT_SPEC"


def parse_spec(spec: str) -> list[Fault]:
    """Parse a declarative fault spec into (uninstalled) :class:`Fault`\\ s.

    Grammar: faults separated by ``;``, each ``site:opt=value,opt=value``
    with options ``error`` (message; raises ``RuntimeError``), ``latency``
    (seconds), ``exhaust`` (``1``/``true``), ``exit`` (process exit
    code), ``times`` and ``skip`` (ints).  Example::

        fleet.replica.0.1:error=crash;fleet.replica.1.*:latency=0.05,times=3

    This is the CI / operator surface for deterministic fault drills —
    ``LOTUSX_FAULT_SPEC`` feeds :func:`install_from_env`.
    """
    faults = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        site, _, options = part.partition(":")
        site = site.strip()
        if not site:
            raise ValueError(f"fault spec entry without a site: {part!r}")
        kwargs: dict = {}
        for option in filter(None, (o.strip() for o in options.split(","))):
            key, _, value = option.partition("=")
            key, value = key.strip(), value.strip()
            if key == "error":
                kwargs["error"] = RuntimeError(value or "injected fault")
            elif key == "latency":
                kwargs["latency_s"] = float(value)
            elif key == "exhaust":
                kwargs["exhaust_deadline"] = value.lower() in ("", "1", "true")
            elif key == "exit":
                kwargs["exit_code"] = int(value)
            elif key in ("times", "skip"):
                kwargs[key] = int(value)
            else:
                raise ValueError(f"unknown fault option {key!r} in {part!r}")
        faults.append(Fault(site, **kwargs))
    return faults


def install_spec(spec: str) -> list[Fault]:
    """Parse ``spec`` and install every fault; returns them."""
    return [install(fault) for fault in parse_spec(spec)]


def install_from_env(variable: str = FAULT_SPEC_ENV) -> list[Fault]:
    """Install the faults declared in ``variable`` (no-op when unset).

    Called by ``lotusx serve`` and the fault-matrix CI job so a whole
    serving process can be started with deterministic injected faults.
    """
    spec = os.environ.get(variable, "")
    return install_spec(spec) if spec else []
