"""Per-request deadlines and step budgets, checked cooperatively.

A :class:`Deadline` combines a wall-clock deadline with an optional step
budget.  Engine loops call :meth:`Deadline.check` at iteration
boundaries; once either limit is exceeded the check raises
:class:`~repro.resilience.errors.DeadlineExceeded` and the request
unwinds to the nearest graceful-degradation point (``search()`` returns
the partial top-k, the server returns a typed error).

The wall clock is only consulted every :data:`CLOCK_CHECK_INTERVAL`
steps, so a check in a tight join loop costs a couple of integer
operations — cheap enough to sprinkle everywhere that matters.  Every
check is also a fault-injection point (see
:mod:`repro.resilience.faults`), which is how the resilience tests
deterministically trip timeouts without real waiting.
"""

from __future__ import annotations

import time

from repro.resilience import faults as _faults
from repro.resilience.errors import DeadlineExceeded

#: Steps between wall-clock consultations in :meth:`Deadline.check`.
CLOCK_CHECK_INTERVAL = 64


class Deadline:
    """Wall-clock deadline + step budget for one request.

    ``timeout_s=None`` means no wall-clock limit; ``max_steps=None``
    means no step budget.  With neither, checks never trip (but remain
    fault-injection points).  ``clock`` is injectable for tests.
    """

    __slots__ = (
        "clock",
        "expires_at",
        "max_steps",
        "started_at",
        "steps",
        "timeout_s",
        "tripped",
        "_countdown",
        "_forced",
    )

    def __init__(
        self,
        timeout_s: float | None = None,
        max_steps: int | None = None,
        clock=time.monotonic,
    ) -> None:
        self.clock = clock
        self.timeout_s = timeout_s
        self.started_at = clock()
        self.expires_at = None if timeout_s is None else self.started_at + timeout_s
        self.max_steps = max_steps
        self.steps = 0
        self.tripped = False
        # First check consults the clock immediately, then every interval.
        self._countdown = 1
        self._forced = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def after_ms(cls, timeout_ms: float, **kwargs) -> Deadline:
        """A deadline ``timeout_ms`` milliseconds from now."""
        return cls(timeout_s=timeout_ms / 1000.0, **kwargs)

    @classmethod
    def none(cls) -> Deadline:
        """An unlimited deadline (never trips on its own)."""
        return cls()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self.clock() - self.started_at

    def remaining(self) -> float | None:
        """Seconds left before the wall deadline; None when unlimited."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self.clock())

    def expired(self) -> bool:
        """True once any limit has been crossed (no raise)."""
        if self._forced or self.tripped:
            return True
        if self.max_steps is not None and self.steps > self.max_steps:
            return True
        return self.expires_at is not None and self.clock() >= self.expires_at

    def near(self, fraction: float = 0.25) -> bool:
        """True when less than ``fraction`` of the wall budget remains
        (or the deadline already expired) — the signal optional work like
        rewrite exploration uses to stand down early."""
        if self._forced or self.tripped:
            return True
        if self.max_steps is not None and self.steps > self.max_steps:
            return True
        if self.timeout_s is None:
            return False
        remaining = self.remaining()
        return remaining is not None and remaining < self.timeout_s * fraction

    # ------------------------------------------------------------------
    # The cooperative checkpoint
    # ------------------------------------------------------------------

    def check(self, site: str = "", cost: int = 1) -> None:
        """Charge ``cost`` steps and raise :class:`DeadlineExceeded` if a
        limit has been crossed.  Called at iteration boundaries; also a
        fault-injection point named ``site``."""
        if _faults.active():
            _faults.fire(site, self)
        self.steps += cost
        if self._forced or (
            self.max_steps is not None and self.steps > self.max_steps
        ):
            self._trip(site)
        if self.expires_at is not None:
            self._countdown -= cost
            if self._countdown <= 0:
                self._countdown = CLOCK_CHECK_INTERVAL
                if self.clock() >= self.expires_at:
                    self._trip(site)

    def exhaust(self) -> None:
        """Force expiry: the next :meth:`check` raises.  Used by the
        fault harness to simulate budget exhaustion deterministically."""
        self._forced = True

    def _trip(self, site: str) -> None:
        self.tripped = True
        remaining = self.remaining()
        raise DeadlineExceeded(
            site=site,
            elapsed_ms=self.elapsed() * 1000.0,
            steps=self.steps,
            remaining_ms=None if remaining is None else remaining * 1000.0,
        )

    def __repr__(self) -> str:
        limits = []
        if self.timeout_s is not None:
            limits.append(f"timeout={self.timeout_s * 1000:.0f}ms")
        if self.max_steps is not None:
            limits.append(f"max_steps={self.max_steps}")
        state = "tripped" if self.tripped else f"steps={self.steps}"
        return f"Deadline({', '.join(limits) or 'unlimited'}, {state})"
