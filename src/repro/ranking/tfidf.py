"""Textual scoring of twig matches (tf-idf over predicate terms).

Each predicate node contributes its terms; a term's contribution is its
idf weight times a saturating term-frequency factor measured in the
subtree of the element the predicate node matched.  The final text score
is idf-normalized into [0, 1] so it composes cleanly with the structural
score.
"""

from __future__ import annotations

from repro.index.term_index import TermIndex
from repro.twig.match import Match
from repro.twig.pattern import TwigPattern

#: Term-frequency saturation constant (BM25-style: tf / (tf + K)).
TF_SATURATION = 1.0


def text_score(pattern: TwigPattern, match: Match, term_index: TermIndex) -> float:
    """Text relevance of ``match`` in [0, 1]; 0.0 if the pattern carries
    no search terms."""
    weighted = 0.0
    total_idf = 0.0
    for node, predicate in pattern.predicates():
        element = match.assignments.get(node.node_id)
        if element is None:
            continue  # unbound optional branch contributes nothing
        for term in predicate.terms():
            idf = term_index.idf(term)
            tf = term_index.subtree_term_frequency(element, term)
            total_idf += idf
            weighted += idf * (tf / (tf + TF_SATURATION))
    if total_idf == 0.0:
        return 0.0
    return weighted / total_idf
