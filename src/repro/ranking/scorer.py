"""The LotusX combined ranking strategy.

``score = w_struct · structural + w_text · textual``, degraded by the
rewrite penalty when the match came from a rewritten query
(``/(1 + penalty)``).  When a pattern carries no search terms the textual
weight is folded into the structural side so exact structural queries
still rank on a full-strength scale.

The baselines for experiment E7 are the same scorer with degenerate
weights: ``text_only()`` and ``structure_only()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.term_index import TermIndex
from repro.ranking.structural import structural_score
from repro.ranking.tfidf import text_score
from repro.twig.match import Match
from repro.twig.pattern import TwigPattern


@dataclass(frozen=True, slots=True)
class MatchScore:
    """Score breakdown for one match."""

    structural: float
    textual: float
    rewrite_penalty: float
    combined: float

    def as_dict(self) -> dict[str, float]:
        return {
            "structural": round(self.structural, 4),
            "textual": round(self.textual, 4),
            "rewrite_penalty": self.rewrite_penalty,
            "combined": round(self.combined, 4),
        }


class LotusXScorer:
    """Combined structural + textual scorer with configurable weights."""

    def __init__(self, structure_weight: float = 0.5, text_weight: float = 0.5) -> None:
        total = structure_weight + text_weight
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self.structure_weight = structure_weight / total
        self.text_weight = text_weight / total

    @classmethod
    def text_only(cls) -> LotusXScorer:
        return cls(structure_weight=0.0, text_weight=1.0)

    @classmethod
    def structure_only(cls) -> LotusXScorer:
        return cls(structure_weight=1.0, text_weight=0.0)

    def score_match(
        self,
        pattern: TwigPattern,
        match: Match,
        term_index: TermIndex,
        rewrite_penalty: float = 0.0,
    ) -> MatchScore:
        structural = structural_score(pattern, match)
        textual = text_score(pattern, match, term_index)
        if pattern.all_terms():
            combined = (
                self.structure_weight * structural + self.text_weight * textual
            )
        else:
            # No search terms: the textual signal is vacuous, rank on
            # structure alone at full strength.
            combined = structural
        combined /= 1.0 + rewrite_penalty
        return MatchScore(structural, textual, rewrite_penalty, combined)

    def rank(
        self,
        pattern: TwigPattern,
        matches: list[Match],
        term_index: TermIndex,
        rewrite_penalty: float = 0.0,
    ) -> list[tuple[Match, MatchScore]]:
        """Matches with scores, best first (ties broken by document order)."""
        scored = [
            (match, self.score_match(pattern, match, term_index, rewrite_penalty))
            for match in matches
        ]
        scored.sort(key=lambda pair: (-pair[1].combined, pair[0].order_key()))
        return scored
