"""Structural scoring of twig matches.

Two signals, both position-derived:

* **edge tightness** — an ancestor-descendant edge satisfied at distance 1
  (an actual parent-child pair) is a tighter, more specific answer than
  one bridged through five levels; tightness of an edge is ``1/distance``
  and the pattern's tightness is the average over its edges.
* **compactness** — among matches with equal tightness, the one whose
  bound elements sit in a smaller subtree is the more focused answer;
  compactness shrinks logarithmically with the match's element span.

Both are in (0, 1]; the combined structural score is their weighted mix.
"""

from __future__ import annotations

import math

from repro.twig.match import Match
from repro.twig.pattern import TwigPattern

#: Mixing weight of tightness vs compactness inside the structural score.
TIGHTNESS_WEIGHT = 0.7


def edge_tightness(pattern: TwigPattern, match: Match) -> float:
    """Average ``1/level-distance`` over the pattern's edges (1.0 for a
    single-node pattern)."""
    distances: list[int] = []
    for node in pattern.nodes():
        if node.parent is None:
            continue
        parent_element = match.assignments.get(node.parent.node_id)
        child_element = match.assignments.get(node.node_id)
        if parent_element is None or child_element is None:
            continue  # unbound optional branch
        distances.append(child_element.level - parent_element.level)
    if not distances:
        return 1.0
    return sum(1.0 / distance for distance in distances) / len(distances)


#: Structural-score bonus for each bound optional branch (fraction).
OPTIONAL_BONUS = 0.05


def compactness(pattern: TwigPattern, match: Match) -> float:
    """``1 / (1 + log(span))`` where span is the region width of the match
    relative to the pattern size (1.0 = the match is exactly as big as the
    pattern requires).

    Only *required* nodes contribute to the span: binding an optional
    branch must never make a match look less compact than the same match
    without it.
    """
    required_ids = {
        node.node_id for node in pattern.required_skeleton().nodes()
    }
    elements = [
        element
        for node_id, element in match.assignments.items()
        if node_id in required_ids
    ] or list(match.assignments.values())
    starts = [element.region.start for element in elements]
    ends = [element.region.end for element in elements]
    span_elements = (max(ends) - min(starts) + 1) // 2
    excess = max(1.0, span_elements / max(1, len(required_ids)))
    return 1.0 / (1.0 + math.log(excess))


def optional_coverage(pattern: TwigPattern, match: Match) -> float:
    """Fraction of the pattern's optional branches the match bound
    (1.0 when the pattern has none)."""
    branches = pattern.optional_branches()
    if not branches:
        return 1.0
    bound = sum(
        1 for branch in branches if branch.node_id in match.assignments
    )
    return bound / len(branches)


def structural_score(pattern: TwigPattern, match: Match) -> float:
    """Combined structural score in (0, 1]."""
    tightness = edge_tightness(pattern, match)
    compact = compactness(pattern, match)
    base = TIGHTNESS_WEIGHT * tightness + (1.0 - TIGHTNESS_WEIGHT) * compact
    if pattern.has_optional():
        # Matches that also provide the optional information rank a notch
        # higher; the bonus shrinks the base so the score stays in (0, 1].
        coverage = optional_coverage(pattern, match)
        return base * (1.0 - OPTIONAL_BONUS) + OPTIONAL_BONUS * coverage
    return base
