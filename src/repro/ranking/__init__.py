"""Result ranking: structural tightness + tf-idf text relevance, combined
with rewrite penalties (the abstract's "new ranking strategy")."""

from repro.ranking.scorer import LotusXScorer, MatchScore
from repro.ranking.structural import compactness, edge_tightness, structural_score
from repro.ranking.tfidf import text_score

__all__ = [
    "LotusXScorer",
    "MatchScore",
    "compactness",
    "edge_tightness",
    "structural_score",
    "text_score",
]
