"""Example-query suggestion: the GUI's "try one of these" list.

New users face an empty canvas; the demo seeded it with canned queries.
We generate them from the corpus itself: frequent text-bearing paths
become path queries, and their most frequent values become predicate
examples — every suggestion verified non-empty before it is offered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.completion_index import CompletionIndex
from repro.summary.dataguide import DataGuide


@dataclass(frozen=True, slots=True)
class ExampleQuery:
    """One suggested starter query."""

    query: str
    description: str

    def as_dict(self) -> dict:
        return {"query": self.query, "description": self.description}


def suggest_example_queries(
    guide: DataGuide,
    completion_index: CompletionIndex,
    k: int = 5,
) -> list[ExampleQuery]:
    """Up to ``k`` starter queries, most common structures first.

    Deterministic for a given corpus.  Suggestions alternate between a
    plain path query and a value-predicate variant of the same position,
    covering distinct record types before repeating one.
    """
    text_nodes = [
        node
        for node in guide.iter_nodes()
        if node.text_count > 0 and node.depth >= 2
    ]
    text_nodes.sort(key=lambda node: (-node.count, node.path))

    suggestions: list[ExampleQuery] = []
    seen_queries: set[str] = set()
    seen_parents: set[tuple[str, ...]] = set()

    def offer(query: str, description: str) -> None:
        if query not in seen_queries and len(suggestions) < k:
            seen_queries.add(query)
            suggestions.append(ExampleQuery(query, description))

    # First pass: one suggestion per distinct parent path (diversity).
    for node in text_nodes:
        parent_path = node.path[:-1]
        if parent_path in seen_parents:
            continue
        seen_parents.add(parent_path)
        parent_tag, tag = node.path[-2], node.tag
        offer(
            f"//{parent_tag}/{tag}",
            f"all {tag} fields of {parent_tag} records ({node.count} results)",
        )
        values = completion_index.complete_value_at([node.node_id], "", 1)
        if values:
            value, count = values[0]
            offer(
                f'//{parent_tag}[./{tag}="{value}"]',
                f'{parent_tag} records whose {tag} is "{value}"'
                f" ({count} results)",
            )
        if len(suggestions) >= k:
            break

    # Second pass if the corpus is too uniform to fill k: plain paths.
    for node in text_nodes:
        if len(suggestions) >= k:
            break
        parent_tag, tag = node.path[-2], node.tag
        offer(
            f"//{parent_tag}/{tag}",
            f"all {tag} fields of {parent_tag} records ({node.count} results)",
        )
    return suggestions
