"""Candidate scoring for autocompletion.

LotusX ranks on-the-fly candidates so the most useful ones surface first.
The score combines:

* **frequency** — how often the candidate occurs at the valid positions
  (log-damped so one giant tag doesn't drown everything);
* **prefix affinity** — how much of the candidate the user has already
  typed (longer typed prefixes relative to candidate length rank exact
  and near-exact continuations higher).
"""

from __future__ import annotations

import math


def candidate_score(count: int, prefix: str, candidate: str) -> float:
    """Score one completion candidate; higher is better."""
    if count <= 0:
        return 0.0
    frequency = math.log1p(count)
    affinity = len(prefix) / len(candidate) if candidate else 0.0
    return frequency * (1.0 + affinity)
