"""The position-aware autocompletion engine.

Answers the two questions the LotusX GUI asks while a user builds a twig:

* *tag completion* — "the user is attaching a new node under query node Q
  with axis A and has typed ``prefix``: which element tags can occur
  there?"  (:meth:`AutocompleteEngine.complete_tag`)
* *value completion* — "the user is typing a value into query node Q:
  which values/terms occur at Q's possible positions?"
  (:meth:`AutocompleteEngine.complete_value`)

Both are *position-aware*: the candidate pool is first restricted to the
DataGuide positions consistent with the entire partial twig
(:func:`~repro.autocomplete.context.candidate_positions`), then ranked.
The position-blind variants (global tries only) are exposed for the E3
comparison benchmark.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.autocomplete.candidates import Candidate, CandidateKind
from repro.autocomplete.context import candidate_positions
from repro.autocomplete.scoring import candidate_score
from repro.index.completion_index import CompletionIndex
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.summary.dataguide import DataGuide, PathNode
from repro.summary.paths import format_path
from repro.twig.pattern import Axis, QueryNode, TwigPattern

#: How many example paths to attach to each candidate.
_SAMPLE_PATHS = 3


class AutocompleteEngine:
    """Position-aware tag and value completion over one indexed corpus.

    Completions are LRU-cached by their full request identity (pattern
    signature, anchor node, normalized prefix, axis, ``k`` …): a user
    typing a prefix character-by-character re-asks highly overlapping
    questions, and the corpus is immutable for the engine's lifetime.
    The cache lives on the engine instance, and the engine lives on the
    database instance, so a hot reload — which swaps in a whole new
    database — drops it wholesale.  Truncated (deadline-tripped) results
    are never cached.
    """

    #: Entries kept in the completion LRU cache.
    CACHE_SIZE = 256

    def __init__(self, guide: DataGuide, completion_index: CompletionIndex) -> None:
        self._guide = guide
        self._completions = completion_index
        self._cache: OrderedDict = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        #: Guards the LRU and its counters: completions are served from
        #: concurrent request threads and bare ``+=`` drops updates.
        self._cache_lock = threading.Lock()

    def cache_info(self) -> dict:
        """Size and hit/miss counters of the completion cache."""
        with self._cache_lock:
            return {
                "entries": len(self._cache),
                "max_size": self.CACHE_SIZE,
                "hits": self._cache_hits,
                "misses": self._cache_misses,
            }

    def _cache_get(self, key) -> list[Candidate] | None:
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is None:
                self._cache_misses += 1
                return None
            self._cache.move_to_end(key)
            self._cache_hits += 1
            return list(cached)

    def clear_cache(self) -> None:
        """Drop every cached completion (generation advance: the corpus
        behind the guide/completion index changed, so cached candidate
        lists and counts may be stale)."""
        with self._cache_lock:
            self._cache.clear()

    def _cache_put(self, key, value: list[Candidate]) -> None:
        with self._cache_lock:
            self._cache[key] = value
            if len(self._cache) > self.CACHE_SIZE:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Tag completion
    # ------------------------------------------------------------------

    def complete_tag(
        self,
        pattern: TwigPattern | None,
        anchor: QueryNode | None,
        prefix: str = "",
        axis: Axis = Axis.CHILD,
        k: int = 10,
        deadline: Deadline | None = None,
    ) -> list[Candidate]:
        """Tags valid for a new node attached under ``anchor`` via ``axis``.

        With no pattern (the user is placing the twig's first node), every
        tag in the corpus is a candidate.  Otherwise the anchor's valid
        positions are computed from the whole partial pattern and only
        tags occurring below them (children for ``/``, any descendant for
        ``//``) are proposed.

        A ``deadline`` expiring mid-enumeration degrades gracefully: the
        candidates gathered so far are ranked and returned (the caller can
        observe ``deadline.tripped`` to report truncation).  Deadline-
        carrying calls bypass the completion cache entirely — their
        results may be truncated, and their cooperative checkpoints must
        stay live.
        """
        normalized = prefix.strip().lower()
        use_cache = deadline is None
        if use_cache:
            cache_key = (
                "tag",
                pattern.signature() if pattern is not None else None,
                anchor.node_id if anchor is not None else None,
                normalized,
                axis,
                k,
            )
            cached = self._cache_get(cache_key)
            if cached is not None:
                return cached
        pool: dict[str, int] = {}
        anchor_positions: set[PathNode] | None = None
        try:
            if pattern is None or anchor is None:
                for tag in self._guide.all_tags():
                    if deadline is not None:
                        deadline.check("autocomplete.tags")
                    if tag.lower().startswith(normalized):
                        pool[tag] = self._guide.tag_count(tag)
            else:
                positions = candidate_positions(pattern, self._guide)
                anchor_positions = positions.get(anchor.node_id, set())
                if axis is Axis.CHILD:
                    pool_counts = self._guide.child_tags_of(anchor_positions)
                else:
                    pool_counts = self._guide.descendant_tags_of(anchor_positions)
                for tag, count in pool_counts.items():
                    if deadline is not None:
                        deadline.check("autocomplete.tags")
                    if tag.lower().startswith(normalized):
                        pool[tag] = count
        except DeadlineExceeded:
            # Rank whatever made it into the pool before the budget ran
            # out; ``deadline.tripped`` marks the truncation.
            pass
        result = self._rank_tags(pool, normalized, k, anchor_positions, axis)
        if use_cache:
            self._cache_put(cache_key, list(result))
        return result

    def complete_tag_global(self, prefix: str = "", k: int = 10) -> list[Candidate]:
        """Position-blind tag completion (baseline for experiment E3)."""
        normalized = prefix.strip().lower()
        ranked = self._completions.complete_tag(normalized, k)
        return [
            Candidate(
                text=tag,
                kind=CandidateKind.TAG,
                count=count,
                score=candidate_score(count, normalized, tag),
            )
            for tag, count in ranked
        ]

    def _rank_tags(
        self,
        pool: dict[str, int],
        prefix: str,
        k: int,
        anchor_positions: set[PathNode] | None = None,
        axis: Axis = Axis.CHILD,
    ) -> list[Candidate]:
        candidates = []
        for tag, count in pool.items():
            samples = self._sample_paths_for_tag(tag, anchor_positions, axis)
            candidates.append(
                Candidate(
                    text=tag,
                    kind=CandidateKind.TAG,
                    count=count,
                    score=candidate_score(count, prefix, tag),
                    sample_paths=samples,
                )
            )
        candidates.sort(key=lambda c: (-c.score, c.text))
        return candidates[:k]

    def _sample_paths_for_tag(
        self,
        tag: str,
        anchor_positions: set[PathNode] | None,
        axis: Axis,
    ) -> tuple[str, ...]:
        if anchor_positions is None:
            nodes = self._guide.nodes_with_tag(tag)
        else:
            nodes = []
            for anchor_position in anchor_positions:
                if axis is Axis.CHILD:
                    child = anchor_position.children.get(tag)
                    if child is not None:
                        nodes.append(child)
                else:
                    nodes.extend(
                        node
                        for node in anchor_position.iter_subtree()
                        if node is not anchor_position and node.tag == tag
                    )
        paths = sorted({format_path(node.path) for node in nodes})
        return tuple(paths[:_SAMPLE_PATHS])

    # ------------------------------------------------------------------
    # Value completion
    # ------------------------------------------------------------------

    def complete_value(
        self,
        pattern: TwigPattern,
        node: QueryNode,
        prefix: str,
        k: int = 10,
        whole_values: bool = True,
        deadline: Deadline | None = None,
    ) -> list[Candidate]:
        """Values (or single terms) occurring at ``node``'s positions.

        ``whole_values=True`` proposes complete element values (e.g. author
        names); ``False`` proposes individual text tokens, which is the
        right mode for long prose fields.

        A ``deadline`` expiring while positions are gathered degrades to
        completing over the positions collected so far
        (``deadline.tripped`` marks the truncation).  As with tag
        completion, deadline-carrying calls bypass the cache.
        """
        normalized = prefix.strip().lower()
        use_cache = deadline is None
        if use_cache:
            cache_key = (
                "value",
                pattern.signature(),
                node.node_id,
                normalized,
                k,
                whole_values,
            )
            cached = self._cache_get(cache_key)
            if cached is not None:
                return cached
        path_ids: list[int] = []
        try:
            positions = candidate_positions(pattern, self._guide)
            node_positions = positions.get(node.node_id, set())
            for p in node_positions:
                if deadline is not None:
                    deadline.check("autocomplete.values")
                path_ids.append(p.node_id)
        except DeadlineExceeded:
            # Complete over the positions collected before expiry.
            pass
        if whole_values:
            ranked = self._completions.complete_value_at(path_ids, normalized, k)
            kind = CandidateKind.VALUE
        else:
            ranked = self._completions.complete_token_at(path_ids, normalized, k)
            kind = CandidateKind.TERM
        result = [
            Candidate(
                text=value,
                kind=kind,
                count=count,
                score=candidate_score(count, normalized, value),
            )
            for value, count in ranked
        ]
        if use_cache:
            self._cache_put(cache_key, list(result))
        return result

    def complete_value_global(
        self, prefix: str, k: int = 10, whole_values: bool = True
    ) -> list[Candidate]:
        """Position-blind value completion (baseline for experiment E3)."""
        normalized = prefix.strip().lower()
        if whole_values:
            ranked = self._completions.complete_value_global(normalized, k)
            kind = CandidateKind.VALUE
        else:
            ranked = self._completions.complete_token_global(normalized, k)
            kind = CandidateKind.TERM
        return [
            Candidate(
                text=value,
                kind=kind,
                count=count,
                score=candidate_score(count, normalized, value),
            )
            for value, count in ranked
        ]
