"""Candidate objects returned by the autocompletion engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CandidateKind(enum.Enum):
    """What a completion candidate proposes."""

    TAG = "tag"
    VALUE = "value"
    TERM = "term"


@dataclass(frozen=True, slots=True)
class Candidate:
    """One ranked completion candidate.

    ``count`` is the number of occurrences at the *valid positions* of the
    query context (so it doubles as a result-cardinality preview), and
    ``score`` is the engine's ranking score.
    """

    text: str
    kind: CandidateKind
    count: int
    score: float
    sample_paths: tuple[str, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict:
        return {
            "text": self.text,
            "kind": self.kind.value,
            "count": self.count,
            "score": round(self.score, 4),
            "sample_paths": list(self.sample_paths),
        }
