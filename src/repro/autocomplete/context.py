"""Query-context analysis: where in the document can a twig node match?

Position-awareness starts here.  Given a (partial) twig pattern, every
query node is mapped to the set of DataGuide path nodes it can possibly
bind, taking the whole pattern into account:

* **top-down**: a node's positions must extend its parent's positions
  along the node's axis and tag;
* **bottom-up**: a position is only kept if *every* child query node has
  at least one position beneath it.

The fixpoint of the two propagations is exact *with respect to the
DataGuide*: a path node survives iff some embedding of the pattern into
the guide maps the query node there.  Because the guide aggregates every
element sharing a path, this is an **upper bound** on real matches — two
requirements can each be satisfied at a path without any single element
satisfying both (the classical path-summary co-occurrence loss).  The
bound is one-sided: every element a real match binds always sits at a
surviving position, so completion never hides a valid candidate.
"""

from __future__ import annotations

from repro.summary.dataguide import DataGuide, PathNode
from repro.twig.pattern import Axis, QueryNode, TwigPattern


def candidate_positions(
    pattern: TwigPattern, guide: DataGuide, prune: bool = True
) -> dict[int, set[PathNode]]:
    """Possible DataGuide positions for every query node of ``pattern``.

    Value predicates are ignored (they constrain values, not positions);
    an empty set for any node means the pattern is structurally
    unsatisfiable in this corpus.

    With ``prune=False`` only the top-down propagation runs: a node's set
    then reflects its own path feasibility, ignoring whether its children
    can be satisfied below it.  The rewrite engine uses this to locate the
    *highest broken node* — with full pruning, one impossible leaf empties
    every set in the pattern.
    """
    positions: dict[int, set[PathNode]] = {}

    def tag_ok(node: QueryNode, path_node: PathNode) -> bool:
        return node.tag is None or node.tag == path_node.tag

    # ------------------------------------------------------------------
    # Top-down assignment
    # ------------------------------------------------------------------

    def assign(node: QueryNode) -> None:
        if node.is_root:
            if node.axis is Axis.CHILD:
                pool = list(guide.root_nodes)
            else:
                pool = list(guide.iter_nodes())
            positions[node.node_id] = {p for p in pool if tag_ok(node, p)}
        else:
            parent_positions = positions[node.parent.node_id]  # type: ignore[union-attr]
            found: set[PathNode] = set()
            for parent_position in parent_positions:
                if node.axis is Axis.CHILD:
                    candidates = parent_position.children.values()
                else:
                    candidates = (
                        p
                        for p in parent_position.iter_subtree()
                        if p is not parent_position
                    )
                found.update(p for p in candidates if tag_ok(node, p))
            positions[node.node_id] = found
        for child in node.children:
            assign(child)

    # ------------------------------------------------------------------
    # Bottom-up pruning
    # ------------------------------------------------------------------

    def supported(parent_position: PathNode, child: QueryNode) -> bool:
        """Does any of the child's positions lie under ``parent_position``
        along the child's axis?"""
        child_positions = positions[child.node_id]
        if child.axis is Axis.CHILD:
            return any(p.parent is parent_position for p in child_positions)
        return any(_is_guide_ancestor(parent_position, p) for p in child_positions)

    def prune_up(node: QueryNode) -> bool:
        """Post-order prune; returns True if anything changed."""
        changed = False
        for child in node.children:
            changed |= prune_up(child)
        if node.children:
            kept = {
                p
                for p in positions[node.node_id]
                if all(supported(p, child) for child in node.children)
            }
            if kept != positions[node.node_id]:
                positions[node.node_id] = kept
                changed = True
        return changed

    def restrict_down(node: QueryNode) -> bool:
        """Pre-order: re-restrict children to pruned parent positions."""
        changed = False
        for child in node.children:
            parent_positions = positions[node.node_id]
            if child.axis is Axis.CHILD:
                allowed = {
                    p
                    for p in positions[child.node_id]
                    if p.parent in parent_positions
                }
            else:
                allowed = {
                    p
                    for p in positions[child.node_id]
                    if any(_is_guide_ancestor(a, p) for a in parent_positions)
                }
            if allowed != positions[child.node_id]:
                positions[child.node_id] = allowed
                changed = True
            changed |= restrict_down(child)
        return changed

    assign(pattern.root)
    if prune:
        # Alternate pruning directions until stable; converges quickly
        # because sets only shrink.
        while prune_up(pattern.root) | restrict_down(pattern.root):
            pass
    return positions


def _is_guide_ancestor(ancestor: PathNode, node: PathNode) -> bool:
    current = node.parent
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


def is_satisfiable(pattern: TwigPattern, guide: DataGuide) -> bool:
    """Can the pattern structurally match, as far as the guide can tell?

    A *necessary* condition: False means the pattern definitely has no
    match; True means no per-path evidence rules it out (the guide cannot
    see co-occurrence within single elements, so rare guide-satisfiable
    patterns still return zero matches — the rewrite engine handles those
    through evaluation, not through this test).
    """
    positions = candidate_positions(pattern, guide)
    return all(positions[node.node_id] for node in pattern.nodes())
