"""Position-aware autocompletion: query-context analysis, candidate
generation, and candidate scoring."""

from repro.autocomplete.candidates import Candidate, CandidateKind
from repro.autocomplete.context import candidate_positions, is_satisfiable
from repro.autocomplete.engine import AutocompleteEngine
from repro.autocomplete.examples import ExampleQuery, suggest_example_queries
from repro.autocomplete.scoring import candidate_score

__all__ = [
    "AutocompleteEngine",
    "Candidate",
    "ExampleQuery",
    "CandidateKind",
    "candidate_positions",
    "candidate_score",
    "is_satisfiable",
    "suggest_example_queries",
]
