"""DTD-like schema inference.

LotusX's pitch is that users need not know the schema — but showing them
an *inferred* one is still useful (the GUI's schema panel, exports, and
debugging).  :func:`infer_schema` scans a document once and produces a
DTD-style summary: per tag, the child tags in first-seen order with
occurrence indicators derived from actual per-parent counts, plus text
content.

This is a summary, not a validator: it describes what the document does,
with the tightest DTD multiplicity symbols consistent with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlio.tree import Document, Element


@dataclass
class TagProfile:
    """Observed content model of one tag."""

    tag: str
    count: int = 0
    has_text: bool = False
    #: child tag -> (min occurrences per parent, max occurrences per parent)
    children: dict[str, tuple[int, int]] = field(default_factory=dict)
    child_order: list[str] = field(default_factory=list)

    def occurrence_symbol(self, child_tag: str) -> str:
        """The tightest DTD symbol for the observed occurrence range."""
        minimum, maximum = self.children[child_tag]
        if minimum >= 1 and maximum == 1:
            return ""
        if minimum == 0 and maximum == 1:
            return "?"
        if minimum >= 1:
            return "+"
        return "*"

    def content_model(self) -> str:
        parts = [
            f"{child}{self.occurrence_symbol(child)}" for child in self.child_order
        ]
        if self.has_text and parts:
            return "(#PCDATA | " + " | ".join(self.child_order) + ")*"
        if self.has_text:
            return "(#PCDATA)"
        if parts:
            return "(" + ", ".join(parts) + ")"
        return "EMPTY"


class InferredSchema:
    """The inferred profiles for every tag, in first-seen order."""

    def __init__(self, profiles: dict[str, TagProfile], root_tag: str) -> None:
        self.profiles = profiles
        self.root_tag = root_tag

    def profile(self, tag: str) -> TagProfile:
        return self.profiles[tag]

    def tags(self) -> list[str]:
        return list(self.profiles)

    def to_dtd(self) -> str:
        """Render as DTD-style element declarations."""
        lines = [f"<!-- inferred schema; document root: {self.root_tag} -->"]
        for profile in self.profiles.values():
            lines.append(
                f"<!ELEMENT {profile.tag} {profile.content_model()}>"
                f"  <!-- x{profile.count} -->"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"InferredSchema(tags={len(self.profiles)}, root={self.root_tag!r})"


def infer_schema(document: Document) -> InferredSchema:
    """Scan ``document`` once and infer its :class:`InferredSchema`."""
    profiles: dict[str, TagProfile] = {}

    def profile_for(tag: str) -> TagProfile:
        if tag not in profiles:
            profiles[tag] = TagProfile(tag)
        return profiles[tag]

    def visit(element: Element) -> None:
        profile = profile_for(element.tag)
        profile.count += 1
        if element.direct_text.strip():
            profile.has_text = True
        occurrences: dict[str, int] = {}
        for child in element.child_elements():
            occurrences[child.tag] = occurrences.get(child.tag, 0) + 1
            if child.tag not in profile.children:
                # First sighting anywhere under this tag; minimum starts
                # at 0 if earlier instances of the tag lacked this child.
                initial_min = 0 if profile.count > 1 else occurrences[child.tag]
                profile.children[child.tag] = (initial_min, 0)
                profile.child_order.append(child.tag)
        for child_tag, (minimum, maximum) in profile.children.items():
            seen = occurrences.get(child_tag, 0)
            new_min = min(minimum, seen) if profile.count > 1 else seen
            profile.children[child_tag] = (new_min, max(maximum, seen))
        for child in element.child_elements():
            visit(child)

    visit(document.root)
    return InferredSchema(profiles, document.root.tag)
