"""Utilities for root-to-node tag paths.

A *path* is a tuple of tag names from the document root to an element, e.g.
``("dblp", "article", "title")``.  Paths are the keys of the DataGuide and
the currency of position-aware autocompletion.
"""

from __future__ import annotations

from collections.abc import Iterable

#: Separator used when rendering paths for humans and JSON APIs.
PATH_SEPARATOR = "/"

Path = tuple[str, ...]


def format_path(path: Iterable[str]) -> str:
    """Render a path as ``/dblp/article/title``."""
    return PATH_SEPARATOR + PATH_SEPARATOR.join(path)


def parse_path(text: str) -> Path:
    """Parse ``/dblp/article/title`` (or ``dblp/article/title``) to a tuple."""
    stripped = text.strip().strip(PATH_SEPARATOR)
    if not stripped:
        return ()
    return tuple(part for part in stripped.split(PATH_SEPARATOR) if part)


def is_prefix(prefix: Path, path: Path) -> bool:
    """True if ``prefix`` is a (non-strict) prefix of ``path``."""
    return len(prefix) <= len(path) and path[: len(prefix)] == prefix


def contains_subsequence(path: Path, tags: Iterable[str]) -> bool:
    """True if ``tags`` appear along ``path`` in order (not necessarily
    contiguously) — the test for whether a path satisfies a chain of
    descendant axes."""
    iterator = iter(path)
    return all(tag in iterator for tag in tags)
