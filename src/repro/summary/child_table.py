"""Child-tag tables ``CT(t)`` for extended Dewey labeling.

For every element tag ``t``, ``CT(t)`` is the ordered list of distinct tag
names that occur as children of ``t`` anywhere in the corpus (order of first
appearance).  TJFast derives these tables from the DTD; we derive them from
the documents themselves, which yields the same tables whenever the corpus
exercises the schema.

The table is what lets an extended Dewey label be *decoded* back to its
full tag path: each label component ``x`` under a parent with tag ``u``
satisfies ``x mod len(CT(u)) == index of the child's tag in CT(u)``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.summary.dataguide import DataGuide
from repro.xmlio.tree import Document


class ChildTagTable:
    """Ordered distinct child tags per parent tag."""

    def __init__(self) -> None:
        self._table: dict[str, list[str]] = {}
        self._index: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_document(cls, document: Document) -> ChildTagTable:
        table = cls()
        table.add_document(document)
        return table

    @classmethod
    def from_dataguide(cls, guide: DataGuide) -> ChildTagTable:
        """Derive the table from a DataGuide (discovery order preserved)."""
        table = cls()
        for node in guide.iter_nodes():
            table._ensure(node.tag)
            for child_tag in node.children:
                table.observe(node.tag, child_tag)
        return table

    def add_document(self, document: Document) -> None:
        for element in document.iter():
            self._ensure(element.tag)
            for child in element.child_elements():
                self.observe(element.tag, child.tag)

    def observe(self, parent_tag: str, child_tag: str) -> int:
        """Record that ``child_tag`` occurs under ``parent_tag``.

        Returns the index of ``child_tag`` in ``CT(parent_tag)``.
        """
        index = self._index.setdefault(parent_tag, {})
        if child_tag in index:
            return index[child_tag]
        tags = self._table.setdefault(parent_tag, [])
        index[child_tag] = len(tags)
        tags.append(child_tag)
        return index[child_tag]

    def _ensure(self, tag: str) -> None:
        self._table.setdefault(tag, [])
        self._index.setdefault(tag, {})

    def load(self, entries: Iterable[tuple[str, list[str]]]) -> None:
        """Bulk-load from ``(parent_tag, child_tags)`` pairs (store layer)."""
        for parent_tag, child_tags in entries:
            self._ensure(parent_tag)
            for child_tag in child_tags:
                self.observe(parent_tag, child_tag)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def child_tags(self, parent_tag: str) -> tuple[str, ...]:
        """``CT(parent_tag)``; empty if the tag is a leaf or unknown."""
        return tuple(self._table.get(parent_tag, ()))

    def fanout(self, parent_tag: str) -> int:
        """``len(CT(parent_tag))``."""
        return len(self._table.get(parent_tag, ()))

    def tag_index(self, parent_tag: str, child_tag: str) -> int:
        """Index of ``child_tag`` in ``CT(parent_tag)``.

        Raises
        ------
        KeyError
            If the combination was never observed.
        """
        return self._index[parent_tag][child_tag]

    def parent_tags(self) -> list[str]:
        """All tags the table has entries for."""
        return list(self._table)

    def items(self) -> Iterable[tuple[str, tuple[str, ...]]]:
        for parent_tag, child_tags in self._table.items():
            yield parent_tag, tuple(child_tags)

    def __contains__(self, parent_tag: str) -> bool:
        return parent_tag in self._table

    def __repr__(self) -> str:
        return f"ChildTagTable(tags={len(self._table)})"
