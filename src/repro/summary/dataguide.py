"""Strong DataGuide: a structural summary of every distinct tag path.

The DataGuide is a tree with one node per distinct root-to-element tag path
in the corpus, annotated with how many document elements share that path.
It is what makes LotusX "position-aware": given the position a user is
extending in a partially-built twig, the set of tags that can legally occur
there is read straight off the DataGuide instead of being guessed from
global tag frequencies.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.summary.paths import Path, format_path
from repro.xmlio.tree import Document, Element


class PathNode:
    """One distinct tag path in the corpus.

    Attributes
    ----------
    node_id:
        Dense integer id, assigned in discovery order (root is 0).
    tag:
        Tag name of the last path step ("" for the synthetic super-root).
    parent:
        Parent path node (None for the super-root).
    count:
        Number of document elements with exactly this path.
    text_count:
        Number of those elements that carry direct text.
    """

    __slots__ = ("node_id", "tag", "parent", "children", "count", "text_count")

    def __init__(self, node_id: int, tag: str, parent: PathNode | None) -> None:
        self.node_id = node_id
        self.tag = tag
        self.parent = parent
        self.children: dict[str, PathNode] = {}
        self.count = 0
        self.text_count = 0

    @property
    def path(self) -> Path:
        """Root-to-node tag path (excluding the synthetic super-root)."""
        parts: list[str] = []
        node: PathNode | None = self
        while node is not None and node.parent is not None:
            parts.append(node.tag)
            node = node.parent
        return tuple(reversed(parts))

    @property
    def depth(self) -> int:
        """Path length; the document root has depth 1."""
        return len(self.path)

    def child_tags(self) -> list[str]:
        """Tags that occur as children of this path, discovery order."""
        return list(self.children)

    def iter_subtree(self) -> Iterator[PathNode]:
        """This node and all path nodes below it, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children.values())))

    def descendant_tags(self) -> set[str]:
        """All tags occurring anywhere strictly below this path."""
        tags: set[str] = set()
        for node in self.iter_subtree():
            if node is not self:
                tags.add(node.tag)
        return tags

    def __repr__(self) -> str:
        return f"PathNode({format_path(self.path)}, count={self.count})"


class DataGuide:
    """Strong DataGuide over one or more documents.

    Build with :meth:`from_document` / :meth:`add_document`, or feed element
    paths manually with :meth:`add_path` (the store layer uses this to
    rebuild a guide from disk).
    """

    def __init__(self) -> None:
        self._super_root = PathNode(0, "", None)
        self._nodes: list[PathNode] = [self._super_root]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_document(cls, document: Document) -> DataGuide:
        guide = cls()
        guide.add_document(document)
        return guide

    def add_document(self, document: Document) -> None:
        """Fold every element of ``document`` into the guide."""
        self._add_element(document.root, self._super_root)

    def _add_element(self, element: Element, parent_node: PathNode) -> None:
        node = self._child_node(parent_node, element.tag)
        node.count += 1
        if element.direct_text.strip():
            node.text_count += 1
        for child in element.child_elements():
            self._add_element(child, node)

    def add_path(self, path: Path, count: int = 1, text_count: int = 0) -> PathNode:
        """Register ``path`` directly (used when loading from disk)."""
        node = self._super_root
        for tag in path:
            node = self._child_node(node, tag)
        node.count += count
        node.text_count += text_count
        return node

    def _child_node(self, parent: PathNode, tag: str) -> PathNode:
        child = parent.children.get(tag)
        if child is None:
            child = PathNode(len(self._nodes), tag, parent)
            parent.children[tag] = child
            self._nodes.append(child)
        return child

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def root_nodes(self) -> list[PathNode]:
        """Path nodes for document roots (one per distinct root tag)."""
        return list(self._super_root.children.values())

    def node(self, node_id: int) -> PathNode:
        return self._nodes[node_id]

    def node_for_path(self, path: Path) -> PathNode | None:
        """Exact-path lookup, or None if the path never occurs."""
        node = self._super_root
        for tag in path:
            node = node.children.get(tag)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def __len__(self) -> int:
        """Number of distinct paths (excluding the super-root)."""
        return len(self._nodes) - 1

    def iter_nodes(self) -> Iterator[PathNode]:
        """All path nodes (excluding the super-root), discovery order."""
        return iter(self._nodes[1:])

    def all_tags(self) -> set[str]:
        """Every tag name occurring in the corpus."""
        return {node.tag for node in self.iter_nodes()}

    def tag_count(self, tag: str) -> int:
        """Total number of elements with ``tag`` across all paths."""
        return sum(node.count for node in self.iter_nodes() if node.tag == tag)

    def nodes_with_tag(self, tag: str) -> list[PathNode]:
        """All path nodes whose final step is ``tag``."""
        return [node for node in self.iter_nodes() if node.tag == tag]

    # ------------------------------------------------------------------
    # Position-aware queries
    # ------------------------------------------------------------------

    def child_tags_of(self, contexts: Iterable[PathNode]) -> dict[str, int]:
        """Tags that occur as a *child* of any context node, with counts."""
        tags: dict[str, int] = {}
        for context in contexts:
            for tag, child in context.children.items():
                tags[tag] = tags.get(tag, 0) + child.count
        return tags

    def descendant_tags_of(self, contexts: Iterable[PathNode]) -> dict[str, int]:
        """Tags occurring anywhere *below* any context node, with counts."""
        tags: dict[str, int] = {}
        for context in contexts:
            for node in context.iter_subtree():
                if node is context:
                    continue
                tags[node.tag] = tags.get(node.tag, 0) + node.count
        return tags

    def __repr__(self) -> str:
        return f"DataGuide(paths={len(self)})"
