"""Structural summaries: DataGuide and child-tag tables.

The DataGuide powers position-aware autocompletion (what can occur *here*)
and query validation; the child-tag tables power extended Dewey labels
(decode a label back to its tag path without touching the document).
"""

from repro.summary.child_table import ChildTagTable
from repro.summary.dataguide import DataGuide, PathNode
from repro.summary.schema import InferredSchema, TagProfile, infer_schema
from repro.summary.paths import (
    PATH_SEPARATOR,
    Path,
    contains_subsequence,
    format_path,
    is_prefix,
    parse_path,
)

__all__ = [
    "PATH_SEPARATOR",
    "ChildTagTable",
    "DataGuide",
    "InferredSchema",
    "TagProfile",
    "infer_schema",
    "Path",
    "PathNode",
    "contains_subsequence",
    "format_path",
    "is_prefix",
    "parse_path",
]
