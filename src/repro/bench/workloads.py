"""Canned query workloads per dataset for the experiment benches.

Query classes follow the twig-join literature: linear *paths*, shallow
*flat twigs* (one branch point), and *deep twigs* (branch points at
several levels, ancestor-descendant heavy).  Each workload entry names
the query so tables in EXPERIMENTS.md can reference it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.twig.parse import parse_twig
from repro.twig.pattern import TwigPattern


@dataclass(frozen=True, slots=True)
class WorkloadQuery:
    """A named benchmark query."""

    name: str
    text: str
    query_class: str  # "path" | "flat-twig" | "deep-twig"

    def pattern(self) -> TwigPattern:
        return parse_twig(self.text)


#: Queries over the DBLP-like corpus.
DBLP_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("D-P1", "//article/author", "path"),
    WorkloadQuery("D-P2", "//dblp//author", "path"),
    WorkloadQuery("D-P3", "//book/editor", "path"),
    WorkloadQuery("D-T1", "//article[./author][./year]", "flat-twig"),
    WorkloadQuery("D-T2", "//inproceedings[./booktitle][./author]/title", "flat-twig"),
    WorkloadQuery(
        "D-T3", '//article[./title~"xml"][year>=2005]/author', "flat-twig"
    ),
    WorkloadQuery(
        "D-D1", "//dblp[.//article[./author][./year]][.//book/publisher]", "deep-twig"
    ),
    WorkloadQuery(
        "D-D2", "//*[./title][./author][./year]", "deep-twig"
    ),
)

#: Queries over the XMark-like corpus (deeper structure).
XMARK_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("X-P1", "//item/name", "path"),
    WorkloadQuery("X-P2", "//regions//item//text", "path"),
    WorkloadQuery("X-P3", "//person/profile/interest", "path"),
    WorkloadQuery("X-T1", "//item[./location][./quantity]/name", "flat-twig"),
    WorkloadQuery("X-T2", "//person[./address/city][./profile]", "flat-twig"),
    WorkloadQuery(
        "X-D1", "//open_auction[.//bidder/increase][.//seller]//date", "deep-twig"
    ),
    WorkloadQuery(
        "X-D2",
        "//item[./description//text][./quantity[.>=5]]/name",
        "deep-twig",
    ),
    WorkloadQuery("X-D3", "//item[.//listitem//text]/name", "deep-twig"),
)

#: AD-heavy twigs where binary joins produce large intermediate results
#: (experiment E5).
BLOWUP_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("B-1", "//site//item[.//text]", "deep-twig"),
    WorkloadQuery("B-2", "//regions//item//description//text", "path"),
    WorkloadQuery("B-3", "//open_auction[.//date][.//increase]", "flat-twig"),
    WorkloadQuery("B-4", "//site[.//name][.//date]", "flat-twig"),
)

#: Ordered variants for experiment E6 (unordered text, ordered flag added
#: by the bench).
ORDERED_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("O-1", "//article[./title][./author][./year]", "flat-twig"),
    WorkloadQuery("O-2", "//inproceedings[./author][./booktitle]", "flat-twig"),
    WorkloadQuery("O-3", "//book[./title][./year]", "flat-twig"),
)


def queries_by_class(
    queries: tuple[WorkloadQuery, ...], query_class: str
) -> list[WorkloadQuery]:
    return [query for query in queries if query.query_class == query_class]
