"""Measurement and reporting helpers shared by all benchmarks.

Each experiment bench prints the table rows / figure series it
regenerates (see the per-experiment index in DESIGN.md); these helpers
keep the output format consistent so EXPERIMENTS.md can quote it
verbatim.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterable, Sequence


def time_call(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    samples: list[float] = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (the benches print these)."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title))


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def speedup(baseline: float, improved: float) -> str:
    """Human-readable speedup factor string (``"12.3x"``)."""
    if improved <= 0:
        return "inf"
    return f"{baseline / improved:.1f}x"
