"""Measurement and reporting helpers shared by all benchmarks.

Each experiment bench prints the table rows / figure series it
regenerates (see the per-experiment index in DESIGN.md); these helpers
keep the output format consistent so EXPERIMENTS.md can quote it
verbatim.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from collections.abc import Callable, Iterable, Sequence


def time_call(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    samples: list[float] = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (the benches print these)."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title))


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def record_bench(
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    meta: dict | None = None,
) -> str:
    """Persist a bench table as ``BENCH_<name>.json`` and return the path.

    Written into the current directory (the bench run's cwd) unless
    ``LOTUSX_BENCH_DIR`` overrides it; CI uploads the ``BENCH_*.json``
    files as artifacts so nightly numbers can be compared across runs.
    The payload records whether smoke mode was active — toy-corpus
    numbers must never be mistaken for real measurements.
    """
    payload = {
        "name": name,
        "headers": list(headers),
        "rows": [[_json_value(value) for value in row] for row in rows],
        "smoke": os.environ.get("LOTUSX_BENCH_SMOKE") == "1",
        "meta": dict(meta) if meta else {},
    }
    directory = os.environ.get("LOTUSX_BENCH_DIR", ".")
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    return path


def _json_value(value: object) -> object:
    """NaN/inf are not valid JSON; everything else passes through."""
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return None
    return value


def speedup(baseline: float, improved: float) -> str:
    """Human-readable speedup factor string (``"12.3x"``)."""
    if improved <= 0:
        return "inf"
    return f"{baseline / improved:.1f}x"
