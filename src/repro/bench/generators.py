"""Stress-shape corpus and query generators for soak benches.

The scaling benches use the realistic DBLP/XMark generators; this module
adds the *pathological* shapes a serving soak needs — corpora that hit a
specific structural extreme, each paired with a canned query mix that
exercises it:

* :func:`generate_deep_recursive` — long self-nested ``section`` chains
  (recursion depth stresses ancestor-descendant joins and the dataguide).
* :func:`generate_wide_flat` — one root with a huge flat fanout of small
  records (stresses sibling scans and completion frequency counts).
* :func:`generate_skewed` — a Zipf-skewed tag and term distribution (a
  few tags/terms dominate; stresses selectivity estimation and the hot
  end of every cache).

Everything is deterministic in ``(size, seed)``; each generator has a
``*_xml`` text twin and a ``*_QUERIES`` workload tuple reusing
:class:`~repro.bench.workloads.WorkloadQuery`, so benches can mix these
shapes the same way they mix the DBLP/XMark workloads.
"""

from __future__ import annotations

import random

from repro.bench.workloads import WorkloadQuery
from repro.xmlio.tree import Document, Element

_WORDS = (
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta",
    "theta", "kappa", "sigma", "omega",
)


# ----------------------------------------------------------------------
# Deep-recursive: nested section chains
# ----------------------------------------------------------------------

def generate_deep_recursive(
    chains: int = 20, depth: int = 12, seed: int = 42
) -> Document:
    """``chains`` independent ``section`` chains, each ``depth`` deep.

    Every level holds a ``head`` child, and the innermost a ``leaf`` —
    so ``//section//leaf`` traverses the full recursion while
    ``/doc/section/head`` stays shallow.
    """
    if chains < 0 or depth < 1:
        raise ValueError("chains must be >= 0 and depth >= 1")
    rng = random.Random(seed)
    root = Element("doc")
    for chain in range(chains):
        node = root
        chain_depth = max(1, depth - rng.randrange(0, max(1, depth // 3)))
        for level in range(chain_depth):
            node = node.make_child("section", {"level": str(level)})
            node.make_child("head").append_text(
                f"{rng.choice(_WORDS)} {chain}-{level}"
            )
        node.make_child("leaf").append_text(rng.choice(_WORDS))
    return Document(root, source_name=f"deep-recursive-{chains}x{depth}-{seed}")


def generate_deep_recursive_xml(
    chains: int = 20, depth: int = 12, seed: int = 42
) -> str:
    from repro.xmlio.serializer import serialize

    return serialize(generate_deep_recursive(chains, depth, seed))


DEEP_RECURSIVE_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("R-P1", "/doc/section/head", "path"),
    WorkloadQuery("R-P2", "//section//leaf", "path"),
    WorkloadQuery("R-T1", "//section[./head]//leaf", "deep-twig"),
    WorkloadQuery("R-T2", "//section[.//section[./leaf]]/head", "deep-twig"),
)


# ----------------------------------------------------------------------
# Wide-flat: huge fanout under one root
# ----------------------------------------------------------------------

def generate_wide_flat(records: int = 500, seed: int = 42) -> Document:
    """One flat ``catalog`` of ``records`` small ``entry`` rows."""
    if records < 0:
        raise ValueError("records must be non-negative")
    rng = random.Random(seed)
    root = Element("catalog")
    for index in range(records):
        entry = root.make_child("entry", {"id": str(index)})
        entry.make_child("code").append_text(f"c{index % 97}")
        entry.make_child("label").append_text(rng.choice(_WORDS))
        if rng.random() < 0.5:
            entry.make_child("note").append_text(
                f"{rng.choice(_WORDS)} {rng.choice(_WORDS)}"
            )
    return Document(root, source_name=f"wide-flat-{records}-{seed}")


def generate_wide_flat_xml(records: int = 500, seed: int = 42) -> str:
    from repro.xmlio.serializer import serialize

    return serialize(generate_wide_flat(records, seed))


WIDE_FLAT_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("W-P1", "/catalog/entry/label", "path"),
    WorkloadQuery("W-P2", "//entry/code", "path"),
    WorkloadQuery("W-T1", "//entry[./note]/label", "flat-twig"),
    WorkloadQuery("W-T2", "//entry[./code][./label]", "flat-twig"),
)


# ----------------------------------------------------------------------
# Skewed: Zipf-ish tag and term distribution
# ----------------------------------------------------------------------

def _zipf_choice(rng: random.Random, items: tuple[str, ...]) -> str:
    """Pick with probability proportional to ``1/(rank+1)``."""
    weights = [1.0 / (rank + 1) for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


_SKEW_TAGS = ("record", "event", "audit", "trace", "anomaly")


def generate_skewed(records: int = 400, seed: int = 42) -> Document:
    """A Zipf-skewed log: the head tag/term dominates, the tail is rare.

    ``record`` rows outnumber ``anomaly`` rows roughly 5:1 and the term
    ``alpha`` similarly dominates values, so the same query mix hits
    both a very hot and a very cold end of every index.
    """
    if records < 0:
        raise ValueError("records must be non-negative")
    rng = random.Random(seed)
    root = Element("log")
    for index in range(records):
        tag = _zipf_choice(rng, _SKEW_TAGS)
        row = root.make_child(tag, {"seq": str(index)})
        row.make_child("source").append_text(_zipf_choice(rng, _WORDS))
        row.make_child("message").append_text(
            f"{_zipf_choice(rng, _WORDS)} {_zipf_choice(rng, _WORDS)}"
        )
        if tag in ("audit", "anomaly"):
            row.make_child("severity").append_text(
                str(rng.randint(1, 5))
            )
    return Document(root, source_name=f"skewed-{records}-{seed}")


def generate_skewed_xml(records: int = 400, seed: int = 42) -> str:
    from repro.xmlio.serializer import serialize

    return serialize(generate_skewed(records, seed))


SKEWED_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("S-P1", "//record/message", "path"),       # hot head
    WorkloadQuery("S-P2", "//anomaly/severity", "path"),      # cold tail
    WorkloadQuery("S-T1", '//record[./source~"alpha"]/message', "flat-twig"),
    WorkloadQuery("S-T2", "//audit[./severity]/source", "flat-twig"),
    WorkloadQuery("S-D1", "//log//audit[./severity]/source", "deep-twig"),
)


#: Every stress shape in one place: ``(name, corpus_xml_fn, queries)``.
STRESS_SHAPES: tuple[tuple[str, object, tuple[WorkloadQuery, ...]], ...] = (
    ("deep-recursive", generate_deep_recursive_xml, DEEP_RECURSIVE_QUERIES),
    ("wide-flat", generate_wide_flat_xml, WIDE_FLAT_QUERIES),
    ("skewed", generate_skewed_xml, SKEWED_QUERIES),
)
