"""Workload replay: record mixed query sessions, replay them at a
controlled rate, report per-tenant latency percentiles.

The soak harness for multi-tenant serving.  A *session* is an ordered
list of :class:`ReplayEvent` — twig searches, keyword searches, and
autocomplete keystrokes — synthesized deterministically from a corpus
(:func:`synthesize_session`) or loaded from a JSONL recording
(:func:`load_events` / :func:`save_events`).

:func:`replay` fires a session at a target QPS with **open-loop
pacing**: event *i* is due at ``start + i/qps`` regardless of how long
earlier events took, so a slow server builds queue depth instead of
silently slowing the offered load — which is exactly what a noisy-
neighbor drill needs (a closed loop would let the server throttle its
own attacker).  Each event records latency and status; the
:class:`ReplayReport` aggregates percentiles, achieved QPS, status
counts, and — for 429s — which tenant the server blamed, so quota
isolation is checkable from the client side alone.

:func:`replay_many` runs several plans concurrently (one per tenant) and
returns each tenant's report; ``benchmarks/bench_e20_tenant.py`` uses it
to drive a noisy tenant past its quota while a quiet tenant's p99 is
gated against its solo baseline.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

__all__ = [
    "ReplayEvent",
    "ReplayReport",
    "PipelineClient",
    "HttpClient",
    "synthesize_session",
    "save_events",
    "load_events",
    "replay",
    "replay_many",
]


@dataclass(frozen=True)
class ReplayEvent:
    """One recorded request: a base API path plus its JSON payload.

    Paths are stored *unscoped* (``/api/search``); the client prefixes
    ``/api/t/<tenant>/`` at send time, so one recording replays against
    any tenant (or a single-tenant server verbatim).
    """

    path: str
    payload: dict

    def body(self) -> bytes:
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")


#: Default event mix: mostly searches, a keyword minority, and bursts of
#: autocomplete keystrokes (the interactive paper workload).
DEFAULT_MIX = {"search": 0.5, "keyword": 0.2, "complete": 0.3}


def synthesize_session(
    database,
    seed: int = 42,
    events: int = 100,
    mix: dict[str, float] | None = None,
    max_nodes: int = 4,
) -> list[ReplayEvent]:
    """A deterministic mixed session against ``database``.

    Twig queries come from the satisfiable-workload sampler, keyword
    queries from the corpus vocabulary, and completion keystrokes from
    tag-name prefixes — so every replayed request is *answerable*, and
    latency measures work, not error paths.
    """
    import random

    from repro.twig.sample import sample_workload

    if events < 0:
        raise ValueError("events must be non-negative")
    weights = dict(DEFAULT_MIX if mix is None else mix)
    kinds = sorted(weights)
    rng = random.Random(seed)
    patterns = sample_workload(
        database.labeled, seed, max(1, events // 2), max_nodes=max_nodes
    )
    vocabulary = sorted(database.term_index.vocabulary())
    tags = sorted(
        {labeled.tag for labeled in database.labeled.elements if labeled.tag}
    ) or ["a"]
    session: list[ReplayEvent] = []
    for _ in range(events):
        kind = rng.choices(kinds, weights=[weights[k] for k in kinds], k=1)[0]
        if kind == "search":
            pattern = rng.choice(patterns)
            session.append(
                ReplayEvent("/api/search", {"query": str(pattern), "k": 10})
            )
        elif kind == "keyword":
            terms = rng.sample(vocabulary, k=min(2, len(vocabulary))) or ["x"]
            session.append(
                ReplayEvent("/api/keyword", {"query": " ".join(terms), "k": 5})
            )
        else:
            # A keystroke burst: successive prefixes of one tag, the way
            # a typist reaches a completion.
            tag = rng.choice(tags)
            for end in range(1, min(len(tag), 3) + 1):
                session.append(
                    ReplayEvent(
                        "/api/complete",
                        {"kind": "tag", "prefix": tag[:end], "k": 8},
                    )
                )
    return session


def save_events(events: list[ReplayEvent], path: str) -> None:
    """Write a session as JSONL (one event per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(
                json.dumps(
                    {"path": event.path, "payload": event.payload},
                    sort_keys=True,
                )
                + "\n"
            )


def load_events(path: str) -> list[ReplayEvent]:
    """Read a session written by :func:`save_events`."""
    events: list[ReplayEvent] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            events.append(ReplayEvent(record["path"], record["payload"]))
    return events


# ----------------------------------------------------------------------
# Clients
# ----------------------------------------------------------------------


def _scope(path: str, tenant: str | None) -> str:
    if tenant is None:
        return path
    return f"/api/t/{tenant}/{path[len('/api/'):]}"


class PipelineClient:
    """Replay directly into a :class:`RequestPipeline` (no sockets).

    The fastest way to soak the engine+pipeline layers; used by tests
    and in-process drills.  Thread-safe (the pipeline is).
    """

    def __init__(self, pipeline, tenant: str | None = None) -> None:
        self.pipeline = pipeline
        self.tenant = tenant

    def send(self, event: ReplayEvent) -> tuple[int, bytes]:
        body = event.body()
        response = self.pipeline.handle(
            "POST", _scope(event.path, self.tenant), body, len(body)
        )
        return response.status, response.body


class HttpClient:
    """Replay over HTTP with per-thread keep-alive connections."""

    def __init__(
        self, host: str, port: int, tenant: str | None = None
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self._local = threading.local()

    def _connection(self):
        import http.client

        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=30
            )
            self._local.connection = connection
        return connection

    def close(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def send(self, event: ReplayEvent) -> tuple[int, bytes]:
        import http.client

        body = event.body()
        for attempt in (1, 2):
            connection = self._connection()
            try:
                connection.request(
                    "POST",
                    _scope(event.path, self.tenant),
                    body,
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                return response.status, response.read()
            except (OSError, http.client.HTTPException):
                # A dropped keep-alive connection (server idle timeout)
                # is retried once on a fresh socket; anything persistent
                # propagates.
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


@dataclass
class ReplayReport:
    """What one replayed session observed."""

    name: str
    sent: int = 0
    #: Per-event latencies, seconds (successful sends only).
    latencies_s: list = field(default_factory=list)
    status_counts: Counter = field(default_factory=Counter)
    #: ``tenant`` fields seen in 429 bodies — quota attribution.
    shed_tenants: Counter = field(default_factory=Counter)
    elapsed_s: float = 0.0
    errors: int = 0

    def percentile_ms(self, quantile: float) -> float:
        """Latency percentile in milliseconds (0 with no samples)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(
            len(ordered) - 1, max(0, round(quantile * (len(ordered) - 1)))
        )
        return ordered[index] * 1000.0

    @property
    def achieved_qps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.sent / self.elapsed_s

    def ok(self) -> int:
        return self.status_counts.get(200, 0)

    def shed(self) -> int:
        return self.status_counts.get(429, 0)

    def as_row(self) -> list:
        return [
            self.name,
            self.sent,
            round(self.achieved_qps, 1),
            round(self.percentile_ms(0.50), 2),
            round(self.percentile_ms(0.95), 2),
            round(self.percentile_ms(0.99), 2),
            self.ok(),
            self.shed(),
        ]


#: Table headers matching :meth:`ReplayReport.as_row`.
REPORT_HEADERS = (
    "session", "sent", "qps", "p50_ms", "p95_ms", "p99_ms", "ok", "shed",
)


def replay(
    client,
    events: list[ReplayEvent],
    qps: float,
    name: str = "replay",
    concurrency: int = 4,
) -> ReplayReport:
    """Fire ``events`` at ``qps`` (open loop); returns the report.

    ``concurrency`` worker threads share the paced schedule: event *i*
    is due at ``start + i/qps``, a worker sleeps until its next event is
    due, sends it, and records the outcome.  If the server falls behind,
    events fire back-to-back (the open-loop property) rather than
    thinning the offered load.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    report = ReplayReport(name=name)
    lock = threading.Lock()
    cursor = {"next": 0}
    start = time.perf_counter()

    def worker() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(events):
                    return
                cursor["next"] = index + 1
            due = start + index / qps
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            event = events[index]
            sent_at = time.perf_counter()
            try:
                status, body = client.send(event)
            except Exception:
                with lock:
                    report.errors += 1
                continue
            latency = time.perf_counter() - sent_at
            with lock:
                report.sent += 1
                report.latencies_s.append(latency)
                report.status_counts[status] += 1
                if status == 429:
                    try:
                        blamed = json.loads(body).get("tenant")
                    except ValueError:
                        blamed = None
                    report.shed_tenants[blamed] += 1

    threads = [
        threading.Thread(target=worker, name=f"replay-{name}-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = time.perf_counter() - start
    return report


def replay_many(
    plans: list[tuple], concurrency: int = 4
) -> dict[str, ReplayReport]:
    """Run several replays concurrently (one per tenant session).

    ``plans`` is ``[(name, client, events, qps[, concurrency]), ...]``;
    every plan starts at the same instant and runs to completion.  The
    optional fifth element overrides the shared ``concurrency`` — a
    noisy-neighbor drill needs many workers on the noisy plan without
    also multiplying the quiet plan's own parallelism.  Returns
    ``{name: report}``.
    """
    reports: dict[str, ReplayReport] = {}
    lock = threading.Lock()

    def run(plan: tuple) -> None:
        name, client, events, qps = plan[:4]
        workers = plan[4] if len(plan) > 4 else concurrency
        result = replay(client, events, qps, name=name, concurrency=workers)
        with lock:
            reports[name] = result

    threads = [
        threading.Thread(target=run, args=(plan,), name=f"plan-{plan[0]}")
        for plan in plans
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return reports
