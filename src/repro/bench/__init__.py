"""Benchmark support: timing/reporting helpers and canned workloads."""

from repro.bench.harness import format_table, print_table, speedup, time_call
from repro.bench.workloads import (
    BLOWUP_QUERIES,
    DBLP_QUERIES,
    ORDERED_QUERIES,
    XMARK_QUERIES,
    WorkloadQuery,
    queries_by_class,
)

__all__ = [
    "BLOWUP_QUERIES",
    "DBLP_QUERIES",
    "ORDERED_QUERIES",
    "WorkloadQuery",
    "XMARK_QUERIES",
    "format_table",
    "print_table",
    "queries_by_class",
    "speedup",
    "time_call",
]
