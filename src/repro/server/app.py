"""Stdlib HTTP server wrapping the JSON API and the embedded GUI.

Run with::

    lotusx serve corpus.xml --port 8080

and open ``http://localhost:8080/``.  Endpoints:

=======================  ======  ========================================
path                     method  handler
=======================  ======  ========================================
``/``                    GET     embedded GUI
``/api/stats``           GET     corpus statistics
``/api/dataguide``       GET     structural summary tree
``/api/examples``        GET     verified starter queries
``/api/complete``        POST    position-aware tag/value completion
``/api/search``          POST    ranked search with rewriting
``/api/explain``         POST    evaluation plan
=======================  ======  ========================================
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine.database import LotusXDatabase
from repro.server import api
from repro.server.ui import INDEX_HTML

_MAX_BODY = 1 << 20  # 1 MiB request bodies are plenty for queries


def make_handler(database: LotusXDatabase) -> type[BaseHTTPRequestHandler]:
    """Build a request-handler class bound to ``database``."""

    class LotusXHandler(BaseHTTPRequestHandler):
        server_version = "LotusX/0.1"

        # ------------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path in ("/", "/index.html"):
                self._send(200, INDEX_HTML.encode("utf-8"), "text/html")
            elif self.path == "/api/stats":
                self._send_json(200, api.handle_stats(database))
            elif self.path == "/api/dataguide":
                self._send_json(200, api.handle_dataguide(database))
            elif self.path == "/api/examples":
                self._send_json(200, api.handle_examples(database))
            else:
                self._send_json(404, {"error": f"no such path: {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            handlers = {
                "/api/complete": api.handle_complete,
                "/api/search": api.handle_search,
                "/api/keyword": api.handle_keyword,
                "/api/explain": api.handle_explain,
            }
            handler = handlers.get(self.path)
            if handler is None:
                self._send_json(404, {"error": f"no such path: {self.path}"})
                return
            try:
                payload = self._read_json()
                self._send_json(200, handler(database, payload))
            except api.ApiError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - last-resort guard
                self._send_json(500, {"error": f"internal error: {exc}"})

        # ------------------------------------------------------------------

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length > _MAX_BODY:
                raise api.ApiError("request body too large")
            body = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                raise api.ApiError(f"bad JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise api.ApiError("JSON body must be an object")
            return payload

        def _send_json(self, status: int, payload: dict) -> None:
            self._send(
                status,
                json.dumps(payload).encode("utf-8"),
                "application/json",
            )

        def _send(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", f"{content_type}; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args) -> None:
            # Quiet by default; the CLI prints the serving banner.
            pass

    return LotusXHandler


def serve(database: LotusXDatabase, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Serve ``database`` until interrupted (blocking)."""
    server = ThreadingHTTPServer((host, port), make_handler(database))
    try:
        server.serve_forever()
    finally:
        server.server_close()


def make_server(
    database: LotusXDatabase, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Create (but don't start) a server — port 0 picks a free port.

    Used by tests and by callers that manage the serving thread.
    """
    return ThreadingHTTPServer((host, port), make_handler(database))
