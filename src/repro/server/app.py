"""Legacy thread-per-request HTTP transport (``lotusx serve --legacy-threaded``).

Run with::

    lotusx serve corpus.xml --port 8080

and open ``http://localhost:8080/``.  Endpoints:

=======================  ======  ========================================
path                     method  handler
=======================  ======  ========================================
``/``                    GET     embedded GUI
``/api/stats``           GET     corpus statistics
``/api/dataguide``       GET     structural summary tree
``/api/examples``        GET     verified starter queries
``/api/complete``        POST    position-aware tag/value completion
``/api/search``          POST    ranked search with rewriting
``/api/explain``         POST    evaluation plan
``/api/documents``       POST    live insert/update/delete (``--writable``)
``/api/reload``          POST    hot-swap rebuild from the serving source
``/api/tenants``         GET     named-corpus listing (multi-tenant)
``/api/tenants``         POST    load a new corpus (``--tenant-admin``)
``/api/t/<name>/...``    both    any endpoint above, scoped to a tenant
=======================  ======  ========================================

Request semantics — admission control (429 + ``Retry-After``),
per-endpoint deadlines, the structured error taxonomy, hot-reload
generations, and single-flight coalescing — live in the
transport-agnostic :class:`~repro.server.pipeline.RequestPipeline`; this
module merely adapts it to the stdlib ``ThreadingHTTPServer``.  The
event-driven default transport (:mod:`repro.server.aio`) drives the
*same* pipeline, so the two produce byte-identical responses; this one
stays for bisecting serving regressions and as the conservative
fallback.

One pipeline (gate, counters, flight table) is shared by every request
to a server: ``make_handler`` binds the handler class to a single
pipeline instance, and ``make_server``/``serve`` expose it as
``server.pipeline``.  Two servers never share state unless you pass the
same gate/pipeline explicitly.

Streamed search (``"stream": true``) is answered here as a complete
``application/x-ndjson`` body (both lines, Content-Length framing)
rather than chunked transfer — the stdlib transport speaks HTTP/1.0, so
early flushing is the async transport's job; the payload bytes are the
same.
"""

from __future__ import annotations

import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine.database import LotusXDatabase
from repro.resilience.admission import AdmissionGate
from repro.server.pipeline import (
    PipelineResponse,
    RequestPipeline,
    ServerConfig,
)
from repro.server.reload import DatabaseHolder
from repro.tenant.registry import TenantRegistry

__all__ = [
    "ServerConfig",
    "make_handler",
    "make_server",
    "serve",
]

log = logging.getLogger("repro.server")


def make_handler(
    database: LotusXDatabase | DatabaseHolder | TenantRegistry,
    config: ServerConfig | None = None,
    gate: AdmissionGate | None = None,
    pipeline: RequestPipeline | None = None,
) -> type[BaseHTTPRequestHandler]:
    """Build a request-handler class bound to one request pipeline.

    ``database`` may be a bare :class:`LotusXDatabase` or a
    :class:`DatabaseHolder` (which additionally enables
    ``POST /api/reload``).  All requests to the same server share the
    pipeline's admission ``gate`` and counters (pass a gate or a whole
    pipeline explicitly to share it across servers or observe it in
    tests).
    """
    if pipeline is None:
        pipeline = RequestPipeline(database, config, gate)

    class LotusXHandler(BaseHTTPRequestHandler):
        server_version = "LotusX/0.1"

        #: Exposed for tests/monitoring.  These are views onto the one
        #: per-server pipeline — never per-handler-class copies.
        request_pipeline = pipeline
        server_config = pipeline.config
        admission_gate = pipeline.gate
        database_holder = pipeline.holder

        # ------------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            self._dispatch("POST")

        def _dispatch(self, method: str) -> None:
            try:
                length = int(self.headers.get("Content-Length", 0) or 0)
            except ValueError:
                length = 0
            if method == "POST" and length > pipeline.config.max_body_bytes:
                # Leave the oversized body unread; the pipeline answers
                # 413 from the declared length alone.
                body: bytes | None = None
            elif method == "POST" and length:
                body = self.rfile.read(length)
            else:
                body = b""
            if pipeline.wants_stream(method, self.path, body):
                self._stream(body, length)
                return
            self._send(pipeline.handle(method, self.path, body, length))

        def _stream(self, body: bytes | None, length: int) -> None:
            # HTTP/1.0 transport: collect the ndjson lines and answer
            # them as one Content-Length body (same bytes, no chunking).
            chunks: list[bytes] = []
            fallback = pipeline.run_search_stream(
                self.path, body, length, chunks.append
            )
            if fallback is not None:
                self._send(fallback)
                return
            self._send(
                PipelineResponse(
                    200, b"".join(chunks), "application/x-ndjson"
                )
            )

        # ------------------------------------------------------------------

        def _send(self, response: PipelineResponse) -> None:
            self.send_response(response.status)
            self.send_header(
                "Content-Type", f"{response.content_type}; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(response.body)))
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)

        def log_message(self, fmt: str, *args) -> None:
            # Quiet by default; the CLI prints the serving banner.
            pass

    return LotusXHandler


def serve(
    database: LotusXDatabase | DatabaseHolder | TenantRegistry,
    host: str = "127.0.0.1",
    port: int = 8080,
    config: ServerConfig | None = None,
) -> None:
    """Serve ``database`` until interrupted (blocking)."""
    server = make_server(database, host, port, config)
    try:
        server.serve_forever()
    finally:
        server.server_close()


def make_server(
    database: LotusXDatabase | DatabaseHolder | TenantRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServerConfig | None = None,
) -> ThreadingHTTPServer:
    """Create (but don't start) a server — port 0 picks a free port.

    Used by tests and by callers that manage the serving thread.  The
    per-server pipeline is exposed as ``server.pipeline``.
    """
    handler = make_handler(database, config)
    server = ThreadingHTTPServer((host, port), handler)
    server.pipeline = handler.request_pipeline
    return server
