"""Stdlib HTTP server wrapping the JSON API and the embedded GUI.

Run with::

    lotusx serve corpus.xml --port 8080

and open ``http://localhost:8080/``.  Endpoints:

=======================  ======  ========================================
path                     method  handler
=======================  ======  ========================================
``/``                    GET     embedded GUI
``/api/stats``           GET     corpus statistics
``/api/dataguide``       GET     structural summary tree
``/api/examples``        GET     verified starter queries
``/api/complete``        POST    position-aware tag/value completion
``/api/search``          POST    ranked search with rewriting
``/api/explain``         POST    evaluation plan
``/api/documents``       POST    live insert/update/delete (``--writable``)
``/api/reload``          POST    hot-swap rebuild from the serving source
=======================  ======  ========================================

Every API request runs behind the resilience layer:

* **Admission control** — at most :attr:`ServerConfig.max_concurrency`
  requests execute at once; a small bounded queue absorbs bursts, and
  anything beyond it is shed with HTTP 429 + ``Retry-After``.
* **Deadlines** — each endpoint gets a default per-request deadline
  (tight for ``/api/complete``, looser for ``/api/search``), overridable
  per request via a ``timeout_ms`` payload key (capped at
  :attr:`ServerConfig.max_timeout_ms`).  Handlers degrade gracefully:
  expiry yields a 200 with ``"truncated": true``, not an error.
* **A structured error taxonomy** — client errors are 400 with a stable
  ``code``; oversized bodies are 413; overload is 429; unexpected
  failures are logged server-side and answered with a *generic* 500
  (internals never leak to clients).

The serving database sits behind a :class:`DatabaseHolder`: handlers
bind ``holder.current`` once per request, and ``POST /api/reload``
builds a replacement from the configured source and swaps it in
atomically — in-flight requests finish against the generation they
started with (see :mod:`repro.server.reload`).  The reload itself runs
*outside* the admission gate so a rebuild never consumes query capacity.
"""

from __future__ import annotations

import json
import logging
import math
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine.database import LotusXDatabase
from repro.resilience.admission import AdmissionGate
from repro.resilience.errors import Overloaded, PayloadTooLarge, ResilienceError
from repro.resilience.faults import fault_point
from repro.server import api
from repro.server.reload import DatabaseHolder, ReloadInProgress, ReloadUnavailable
from repro.server.ui import INDEX_HTML

log = logging.getLogger("repro.server")


@dataclass(frozen=True)
class ServerConfig:
    """Operational limits for the HTTP server."""

    #: Requests allowed to execute concurrently.
    max_concurrency: int = 8
    #: Requests allowed to wait for a slot before shedding starts.
    max_queue: int = 16
    #: How long a queued request waits for a slot before giving up.
    queue_timeout_s: float = 0.5
    #: Suggested client back-off when shedding (``Retry-After``).
    retry_after_s: float = 1.0
    #: Largest accepted request body.
    max_body_bytes: int = 1 << 20
    #: Default deadline for most endpoints.
    default_timeout_ms: int = 10_000
    #: Default deadline for ``/api/complete`` — completion must feel
    #: instant, so its budget is much tighter.
    complete_timeout_ms: int = 1_000
    #: Ceiling on client-requested ``timeout_ms`` overrides.
    max_timeout_ms: int = 60_000
    #: What to do when a sharded response lost whole shard groups:
    #: ``"salvage"`` serves the partial answer as a 200 with ``degraded``
    #: tags; ``"strict"`` rejects it with 503 ``shards_unavailable``.
    degraded_policy: str = "salvage"

    def __post_init__(self) -> None:
        if self.degraded_policy not in ("salvage", "strict"):
            raise ValueError(
                f"unknown degraded_policy: {self.degraded_policy!r}"
            )

    def timeout_for(self, path: str) -> int:
        """The default deadline (ms) for requests to ``path``."""
        if path == "/api/complete":
            return self.complete_timeout_ms
        return self.default_timeout_ms

    def make_gate(self) -> AdmissionGate:
        """A fresh admission gate with this config's limits."""
        return AdmissionGate(
            capacity=self.max_concurrency,
            max_queue=self.max_queue,
            queue_timeout_s=self.queue_timeout_s,
            retry_after_s=self.retry_after_s,
        )


def make_handler(
    database: LotusXDatabase | DatabaseHolder,
    config: ServerConfig | None = None,
    gate: AdmissionGate | None = None,
) -> type[BaseHTTPRequestHandler]:
    """Build a request-handler class bound to ``database``.

    ``database`` may be a bare :class:`LotusXDatabase` or a
    :class:`DatabaseHolder` (which additionally enables
    ``POST /api/reload``).  All requests to the same server share one
    admission ``gate`` (pass one explicitly to share it across servers
    or observe it in tests).
    """
    config = config if config is not None else ServerConfig()
    gate = gate if gate is not None else config.make_gate()
    holder = (
        database
        if isinstance(database, DatabaseHolder)
        else DatabaseHolder(database)
    )

    class LotusXHandler(BaseHTTPRequestHandler):
        server_version = "LotusX/0.1"

        #: Exposed for tests/monitoring.
        server_config = config
        admission_gate = gate
        database_holder = holder

        # ------------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path in ("/", "/index.html"):
                # The GUI shell is static — serve it outside the gate so
                # the page stays reachable even under API overload.
                self._send(200, INDEX_HTML.encode("utf-8"), "text/html")
                return
            handlers = {
                "/api/stats": api.handle_stats,
                "/api/dataguide": api.handle_dataguide,
                "/api/examples": api.handle_examples,
            }
            handler = handlers.get(self.path)
            if handler is None:
                self._send_json(
                    404,
                    {"error": f"no such path: {self.path}", "code": "not_found"},
                )
                return

            def run() -> dict:
                fault_point("server.request")
                # Bind one generation for the whole request; a concurrent
                # reload swap never changes the database mid-handler.
                current, generation = holder.snapshot()
                result = handler(current)
                if handler is api.handle_stats:
                    result["generation"] = generation
                    result["admission"] = gate.snapshot()
                    result["degraded_policy"] = config.degraded_policy
                return result

            self._run_guarded(run)

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path == "/api/reload":
                # Outside the admission gate: a rebuild must not occupy
                # (or wait for) a query slot.
                self._handle_reload()
                return
            handlers = {
                "/api/complete": api.handle_complete,
                "/api/search": api.handle_search,
                "/api/keyword": api.handle_keyword,
                "/api/explain": api.handle_explain,
                "/api/documents": api.handle_documents,
            }
            handler = handlers.get(self.path)
            if handler is None:
                self._send_json(
                    404,
                    {"error": f"no such path: {self.path}", "code": "not_found"},
                )
                return

            def run() -> dict:
                payload = self._read_json()
                deadline = api.resolve_deadline(
                    payload,
                    default_ms=config.timeout_for(self.path),
                    max_ms=config.max_timeout_ms,
                )
                fault_point("server.request", deadline)
                current = holder.current
                if handler is api.handle_explain:
                    return handler(current, payload)
                if handler in (api.handle_search, api.handle_keyword):
                    return handler(
                        current,
                        payload,
                        deadline,
                        strict_shards=config.degraded_policy == "strict",
                    )
                return handler(current, payload, deadline)

            self._run_guarded(run)

        def _handle_reload(self) -> None:
            """Rebuild from the configured source and swap atomically.

            Reloads only re-read the source the server was started with
            — clients cannot point the server at other files.
            """
            try:
                result = self.database_holder.reload()
                status, payload = 200, result
            except ReloadUnavailable as exc:
                status = 400
                payload = {"error": str(exc), "code": "reload_unavailable"}
            except ReloadInProgress as exc:
                status = 409
                payload = {"error": str(exc), "code": "reload_in_progress"}
            except Exception:
                # A failed build leaves the old generation serving; log
                # the cause server-side, answer with a generic error.
                log.exception("reload failed; still serving old generation")
                status = 500
                payload = {"error": "reload failed", "code": "reload_failed"}
            self._send_json(status, payload)

        # ------------------------------------------------------------------

        def _run_guarded(self, produce) -> None:
            """Run ``produce`` behind the admission gate, mapping the
            error taxonomy to HTTP; the slot is released before the
            response is written so slow clients can't hold capacity."""
            headers: dict[str, str] = {}
            try:
                with gate.slot():
                    status, payload = 200, produce()
            except Overloaded as exc:
                headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after)))
                status, payload = exc.http_status, exc.payload()
            except api.ApiError as exc:
                status = exc.http_status
                payload = {"error": str(exc), "code": exc.code}
            except ResilienceError as exc:
                # DeadlineExceeded that no layer degraded, PayloadTooLarge…
                status, payload = exc.http_status, exc.payload()
            except Exception:
                # Log the traceback server-side; never leak it to clients.
                log.exception("unhandled error serving %s", self.path)
                status = 500
                payload = {"error": "internal error", "code": "internal"}
            self._send_json(status, payload, headers)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length > config.max_body_bytes:
                raise PayloadTooLarge(
                    f"request body of {length} bytes exceeds the"
                    f" {config.max_body_bytes}-byte limit",
                    limit=config.max_body_bytes,
                )
            body = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                raise api.ApiError(f"bad JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise api.ApiError("JSON body must be an object")
            return payload

        def _send_json(
            self, status: int, payload: dict, headers: dict[str, str] | None = None
        ) -> None:
            self._send(
                status,
                json.dumps(payload).encode("utf-8"),
                "application/json",
                headers,
            )

        def _send(
            self,
            status: int,
            body: bytes,
            content_type: str,
            headers: dict[str, str] | None = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", f"{content_type}; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args) -> None:
            # Quiet by default; the CLI prints the serving banner.
            pass

    return LotusXHandler


def serve(
    database: LotusXDatabase | DatabaseHolder,
    host: str = "127.0.0.1",
    port: int = 8080,
    config: ServerConfig | None = None,
) -> None:
    """Serve ``database`` until interrupted (blocking)."""
    server = ThreadingHTTPServer((host, port), make_handler(database, config))
    try:
        server.serve_forever()
    finally:
        server.server_close()


def make_server(
    database: LotusXDatabase | DatabaseHolder,
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServerConfig | None = None,
) -> ThreadingHTTPServer:
    """Create (but don't start) a server — port 0 picks a free port.

    Used by tests and by callers that manage the serving thread.
    """
    return ThreadingHTTPServer((host, port), make_handler(database, config))
