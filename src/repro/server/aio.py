"""Event-driven serving front end: asyncio, keep-alive, coalescing.

The default transport of ``lotusx serve``.  One event loop accepts
connections and parses HTTP/1.1 requests; engine work runs on a bounded
thread pool behind the shared :class:`~repro.server.pipeline.RequestPipeline`
(the same pipeline object the legacy threaded transport drives, so
response bytes are identical across transports).  What the loop adds
over thread-per-request:

* **Keep-alive** — a connection serves any number of requests; the
  per-request TCP + thread-spawn cost of the threaded server disappears
  from the hot path.
* **Connection limits** — at most ``ServerConfig.max_connections``
  sockets are open; further accepts are answered 429 + ``Retry-After``
  and closed (see :class:`~repro.resilience.admission.ConnectionGate`).
* **Idle / slow-loris timeout** — a connection that dribbles a partial
  request (or goes silent) for ``idle_timeout_s`` is dropped; its task
  ends, nothing leaks.
* **Protocol errors stay cheap** — a malformed request line or header
  is answered 400 and closed without ever touching the engine; a body
  whose declared length exceeds the limit is answered 413 *without
  reading it*.
* **Single-flight, loop-side** — a request whose flight is already open
  subscribes with an ``asyncio`` future: followers consume no executor
  thread and no admission slot while they wait for the leader's bytes.
* **Keystroke batching** — when several ``/api/complete`` requests from
  one connection are buffered together (a fast typist ahead of the
  server), only the newest runs; older ones are answered immediately
  with ``{"superseded": true}`` in arrival order.
* **Streamed search** — ``/api/search`` with ``"stream": true`` is
  written as chunked ``application/x-ndjson``: the first top-k answers
  flush before ranking completes (see
  :meth:`RequestPipeline.run_search_stream`).
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http.client import responses as _REASONS

from repro.engine.database import LotusXDatabase
from repro.resilience.admission import ConnectionGate
from repro.server.pipeline import (
    PipelineResponse,
    RequestPipeline,
    ServerConfig,
    split_tenant,
)
from repro.server.reload import DatabaseHolder
from repro.tenant.registry import TenantRegistry

#: Hard cap on the request head (request line + headers).
MAX_HEADER_BYTES = 32_768

_SERVER_NAME = "LotusX/0.1"

_INTERNAL_ERROR = PipelineResponse(
    500, b'{"error": "internal error", "code": "internal"}'
)


class ProtocolError(Exception):
    """A request so malformed the connection cannot continue."""

    def __init__(self, status: int, code: str, message: str) -> None:
        self.status = status
        self.code = code
        super().__init__(message)

    def response(self) -> PipelineResponse:
        import json

        return PipelineResponse(
            self.status,
            json.dumps({"error": str(self), "code": self.code}).encode(),
        )


@dataclass
class ParsedRequest:
    """One request decoded from the connection buffer."""

    method: str
    path: str
    version: str
    headers: dict[str, str]
    declared_length: int
    #: ``None`` when the declared length exceeded the body limit — the
    #: bytes were never read and the connection must close after the 413.
    body: bytes | None

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"

    @property
    def must_close(self) -> bool:
        return self.body is None and self.declared_length > 0


def parse_request(
    buffer: bytearray, max_body_bytes: int
) -> tuple[ParsedRequest | None, int]:
    """Decode one complete request from ``buffer``.

    Returns ``(request, bytes_consumed)``; ``(None, 0)`` when the buffer
    does not yet hold a full request (the caller reads more).  Raises
    :class:`ProtocolError` for requests that can never become valid.
    """
    head_end = buffer.find(b"\r\n\r\n")
    if head_end == -1:
        if len(buffer) > MAX_HEADER_BYTES:
            raise ProtocolError(
                431, "headers_too_large", "request header section too large"
            )
        return None, 0
    try:
        head = bytes(buffer[:head_end]).decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise ProtocolError(400, "bad_request", "undecodable request head")
    lines = head.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(
            400, "bad_request", f"malformed request line: {lines[0]!r}"
        )
    method, path, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep or not name or name.strip() != name or " " in name:
            raise ProtocolError(
                400, "bad_request", f"malformed header line: {line!r}"
            )
        headers[name.lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(
            411, "length_required", "chunked request bodies are not supported"
        )
    raw_length = headers.get("content-length", "0")
    try:
        declared_length = int(raw_length)
        if declared_length < 0:
            raise ValueError
    except ValueError:
        raise ProtocolError(
            400, "bad_request", f"bad Content-Length: {raw_length!r}"
        ) from None
    body_start = head_end + 4
    if declared_length > max_body_bytes:
        # Answer 413 without ever buffering the oversized body; the
        # connection closes because the stream cannot be resynced.
        return (
            ParsedRequest(method, path, version, headers, declared_length, None),
            len(buffer),
        )
    if len(buffer) - body_start < declared_length:
        return None, 0
    body = bytes(buffer[body_start : body_start + declared_length])
    return (
        ParsedRequest(method, path, version, headers, declared_length, body),
        body_start + declared_length,
    )


class AsyncLotusXServer:
    """The asyncio serving front end.

    Mirrors the stdlib server's lifecycle so tests and the CLI drive
    both the same way: construct (binds the socket — ``port=0`` picks a
    free port, ``server_address`` is immediately valid), run
    :meth:`serve_forever` on a thread or the main thread, then
    :meth:`shutdown` and :meth:`server_close`.
    """

    def __init__(
        self,
        database: LotusXDatabase | DatabaseHolder | TenantRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        config: ServerConfig | None = None,
        pipeline: RequestPipeline | None = None,
    ) -> None:
        self.pipeline = (
            pipeline
            if pipeline is not None
            else RequestPipeline(database, config)
        )
        self.config = self.pipeline.config
        self.connections = ConnectionGate(
            capacity=self.config.max_connections,
            retry_after_s=self.config.retry_after_s,
        )
        self.pipeline.connection_stats = self.connections.snapshot
        self._sock = socket.create_server((host, port), backlog=128)
        self.server_address = self._sock.getsockname()[:2]
        # The gate may briefly block an executor thread (bounded queue
        # wait), so the pool must outsize capacity + queue or the gate's
        # shedding semantics would be distorted by pool starvation.
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency + self.config.max_queue + 4,
            thread_name_prefix="lotusx-aio",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._tasks: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        asyncio.run(self._main())

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` from any thread (idempotent)."""
        if not self._started.wait(timeout=5):
            return
        loop, stop = self._loop, self._stop
        if loop is None or stop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass  # loop already closed between the checks

    def server_close(self) -> None:
        """Release the listening socket and the worker pool."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def open_connections(self) -> int:
        """Live connection tasks (leak detection in tests)."""
        return len(self._tasks)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._client_connected, sock=self._sock
        )
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:  # pragma: no cover - defensive
            import logging

            logging.getLogger("repro.server").exception(
                "unhandled error on connection"
            )
        finally:
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        if not self.connections.try_acquire():
            refused = PipelineResponse(
                429,
                b'{"error": "connection limit reached", "code": "overloaded"}',
                headers=(
                    ("Retry-After", str(max(1, round(self.connections.retry_after_s)))),
                ),
            )
            writer.write(_frame(refused, keep_alive=False))
            await writer.drain()
            return
        try:
            await self._request_loop(reader, writer)
        finally:
            self.connections.release()

    async def _request_loop(self, reader, writer) -> None:
        buffer = bytearray()
        while True:
            try:
                request, consumed = parse_request(
                    buffer, self.config.max_body_bytes
                )
            except ProtocolError as exc:
                writer.write(_frame(exc.response(), keep_alive=False))
                await writer.drain()
                return
            if request is None:
                try:
                    chunk = await asyncio.wait_for(
                        reader.read(65_536), self.config.idle_timeout_s
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    # Slow-loris / idle: drop the connection outright.
                    self.connections.count_idle_drop()
                    return
                if not chunk:
                    return  # client closed
                buffer += chunk
                continue
            del buffer[:consumed]
            # Keystroke batching: of several autocomplete requests
            # already queued on this connection, only the newest runs.
            # Batches never span request paths — two tenants' keystrokes
            # (different ``/api/t/<name>/complete`` paths) are separate
            # typing sessions and must not supersede each other.
            batch = [request]
            if self._is_keystroke(request):
                while True:
                    try:
                        queued, consumed = parse_request(
                            buffer, self.config.max_body_bytes
                        )
                    except ProtocolError:
                        break  # leave for the main loop to report
                    if (
                        queued is None
                        or not self._is_keystroke(queued)
                        or queued.path != request.path
                    ):
                        break
                    del buffer[:consumed]
                    batch.append(queued)
            for stale in batch[:-1]:
                response = self.pipeline.superseded_response()
                writer.write(_frame(response, keep_alive=True))
            request = batch[-1]
            keep_alive = await self._respond(writer, request)
            await writer.drain()
            if not keep_alive:
                return

    @staticmethod
    def _is_keystroke(request: ParsedRequest) -> bool:
        return (
            request.method == "POST"
            and split_tenant(request.path)[1] == "/api/complete"
            and request.body is not None
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _respond(self, writer, request: ParsedRequest) -> bool:
        """Write the response for ``request``; returns keep-alive."""
        pipeline = self.pipeline
        keep_alive = request.keep_alive and not request.must_close
        if pipeline.is_static(request.method, request.path):
            # Static GUI shell: no engine work, answer on the loop.
            response = pipeline.execute(request.method, request.path, b"", 0)
        elif pipeline.wants_stream(request.method, request.path, request.body):
            return await self._respond_stream(writer, request, keep_alive)
        else:
            key = pipeline.coalesce_key(
                request.method, request.path, request.body
            )
            if key is None:
                response = await self._run(
                    pipeline.execute,
                    request.method,
                    request.path,
                    request.body,
                    request.declared_length,
                )
            else:
                flight, leader = pipeline.flights.join(key)
                if leader:
                    response = None
                    try:
                        response = await self._run(
                            pipeline.execute,
                            request.method,
                            request.path,
                            request.body,
                            request.declared_length,
                        )
                    finally:
                        pipeline.flights.finish(
                            key, flight, response or _INTERNAL_ERROR
                        )
                else:
                    # Follower: no executor thread, no admission slot —
                    # just an awaited future for the leader's bytes.
                    response = await flight.subscribe(self._loop)
        writer.write(_frame(response, keep_alive=keep_alive))
        return keep_alive

    async def _respond_stream(
        self, writer, request: ParsedRequest, keep_alive: bool
    ) -> bool:
        """Chunked ndjson search: flush answers as the pipeline emits."""
        loop = self._loop
        started = False

        def write_chunk(chunk: bytes) -> None:
            nonlocal started
            if not started:
                started = True
                connection = "keep-alive" if keep_alive else "close"
                writer.write(
                    (
                        "HTTP/1.1 200 OK\r\n"
                        f"Server: {_SERVER_NAME}\r\n"
                        "Content-Type: application/x-ndjson; charset=utf-8\r\n"
                        "Transfer-Encoding: chunked\r\n"
                        f"Connection: {connection}\r\n\r\n"
                    ).encode("latin-1")
                )
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")

        def emit(chunk: bytes) -> None:
            # Called from the executor thread; the loop serializes
            # writes, and chunks scheduled here run before the executor
            # future's completion callback, preserving order.
            loop.call_soon_threadsafe(write_chunk, chunk)

        fallback = await self._run(
            self.pipeline.run_search_stream,
            request.path,
            request.body,
            request.declared_length,
            emit,
        )
        if fallback is not None:
            writer.write(_frame(fallback, keep_alive=keep_alive))
            return keep_alive
        writer.write(b"0\r\n\r\n")
        return keep_alive

    async def _run(self, fn, *args):
        return await self._loop.run_in_executor(self._executor, fn, *args)


def _frame(response: PipelineResponse, keep_alive: bool) -> bytes:
    """Serialize a :class:`PipelineResponse` as HTTP/1.1 bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Server: {_SERVER_NAME}",
        f"Content-Type: {response.content_type}; charset=utf-8",
        f"Content-Length: {len(response.body)}",
    ]
    lines.extend(f"{name}: {value}" for name, value in response.headers)
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


def make_async_server(
    database: LotusXDatabase | DatabaseHolder | TenantRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServerConfig | None = None,
    pipeline: RequestPipeline | None = None,
) -> AsyncLotusXServer:
    """Create (but don't start) an async server — port 0 picks a free
    port.  Used by tests and by callers that manage the serving thread."""
    return AsyncLotusXServer(database, host, port, config, pipeline)


def serve_async(
    database: LotusXDatabase | DatabaseHolder | TenantRegistry,
    host: str = "127.0.0.1",
    port: int = 8080,
    config: ServerConfig | None = None,
) -> None:
    """Serve ``database`` on the event loop until interrupted (blocking)."""
    server = AsyncLotusXServer(database, host, port, config)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        raise
    finally:
        server.server_close()
