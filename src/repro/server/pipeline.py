"""Transport-agnostic request pipeline: parse → admit → dispatch → serialize.

Both serving transports — the event-driven asyncio front end
(:mod:`repro.server.aio`, the default) and the legacy thread-per-request
server (:mod:`repro.server.app`) — drive one :class:`RequestPipeline`
per server.  The pipeline owns everything that must be *per-server*
rather than per-connection or per-handler-class:

* the :class:`ServerConfig` limits,
* the admission gate (429 + ``Retry-After`` shedding),
* the :class:`~repro.server.reload.DatabaseHolder` (serving generations),
* the single-flight table (request coalescing) and its counters.

Because the pipeline serializes responses itself (JSON bytes, status,
headers), the two transports cannot drift: for the same request bytes
they produce the same response bytes, which is what the differential
soak suite asserts.

**Single-flight coalescing.**  Concurrent *identical* requests to the
read-only query endpoints (``/api/search``, ``/api/keyword``,
``/api/complete``) share one engine evaluation.  The first request in
becomes the flight's *leader* and runs the normal guarded path; requests
arriving with the same key while the flight is open become *followers*
that subscribe to the leader's finished response — the very same
serialized bytes, so all members of a flight are byte-identical by
construction.  The key is ``(tenant, path, canonical payload JSON,
serving generation)``: a hot-reload generation bump therefore *splits*
the flight — requests against the new generation never receive a stale
generation's answer — and two tenants can never share a flight, however
identical their payloads.  Followers do not occupy admission-gate slots (the
leader holds exactly one), which is what turns a thundering herd of
identical hot queries into one evaluation plus N cheap subscriptions.

Error responses coalesce too: if the leader's evaluation was shed or
failed, followers receive that same response.  This is deliberate — a
follower is by definition the same request at the same moment, so it
gets the same answer.

**Streamed search.**  ``POST /api/search`` with ``"stream": true``
produces an ``application/x-ndjson`` body of two lines: a preliminary
line with the first top-k answers in document order (flushed before
ranking starts) and the final fully ranked response.  Transports frame
the lines with chunked transfer encoding; see :meth:`run_search_stream`.

**Multi-tenant routing.**  A pipeline may serve several named corpora
(*tenants*, :mod:`repro.tenant`).  ``/api/t/<tenant>/<endpoint>``
addresses one explicitly; every bare ``/api/<endpoint>`` request routes
to the registry's *default* tenant, so a single-corpus server is the
degenerate case and its responses stay byte-identical.  Tenant-scoped
requests are admitted through the tenant's quota slice before the global
gate — a 429 from the slice names the tenant it throttled — and the
single-flight key carries the tenant name, so coalescing is partitioned
per tenant just like every per-database cache.
"""

from __future__ import annotations

import json
import logging
import math
import threading
from dataclasses import dataclass

from repro.engine.database import LotusXDatabase
from repro.resilience.admission import AdmissionGate
from repro.resilience.errors import (
    Overloaded,
    PayloadTooLarge,
    ResilienceError,
)
from repro.resilience.faults import fault_point
from repro.server import api
from repro.server.reload import (
    DatabaseHolder,
    ReloadInProgress,
    ReloadSource,
    ReloadUnavailable,
)
from repro.server.ui import INDEX_HTML
from repro.tenant.registry import (
    Tenant,
    TenantAdminDisabled,
    TenantError,
    TenantRegistry,
    validate_tenant_name,
)

log = logging.getLogger("repro.server")

#: Endpoints whose identical concurrent requests share one evaluation.
COALESCED_PATHS = frozenset(
    {"/api/search", "/api/keyword", "/api/complete"}
)

#: Tenant-scoped requests: ``/api/t/<tenant>/<endpoint>``.
TENANT_PREFIX = "/api/t/"


def split_tenant(path: str) -> tuple[str | None, str]:
    """``(tenant_name, base_path)`` for a request path.

    ``/api/t/acme/search`` → ``("acme", "/api/search")``; any path
    without the tenant prefix routes to the default tenant unchanged
    (``(None, path)``).  The name is *not* validated here — the registry
    does that, so malformed names get the structured 400.
    """
    if not path.startswith(TENANT_PREFIX):
        return None, path
    rest = path[len(TENANT_PREFIX):]
    name, _, tail = rest.partition("/")
    return name, "/api/" + tail

_GET_HANDLERS = {
    "/api/stats": api.handle_stats,
    "/api/dataguide": api.handle_dataguide,
    "/api/examples": api.handle_examples,
}

_POST_HANDLERS = {
    "/api/complete": api.handle_complete,
    "/api/search": api.handle_search,
    "/api/keyword": api.handle_keyword,
    "/api/explain": api.handle_explain,
    "/api/documents": api.handle_documents,
}


@dataclass(frozen=True)
class ServerConfig:
    """Operational limits for the HTTP server (both transports)."""

    #: Requests allowed to execute concurrently.
    max_concurrency: int = 8
    #: Requests allowed to wait for a slot before shedding starts.
    max_queue: int = 16
    #: How long a queued request waits for a slot before giving up.
    queue_timeout_s: float = 0.5
    #: Suggested client back-off when shedding (``Retry-After``).
    retry_after_s: float = 1.0
    #: Largest accepted request body.
    max_body_bytes: int = 1 << 20
    #: Default deadline for most endpoints.
    default_timeout_ms: int = 10_000
    #: Default deadline for ``/api/complete`` — completion must feel
    #: instant, so its budget is much tighter.
    complete_timeout_ms: int = 1_000
    #: Ceiling on client-requested ``timeout_ms`` overrides.
    max_timeout_ms: int = 60_000
    #: What to do when a sharded response lost whole shard groups:
    #: ``"salvage"`` serves the partial answer as a 200 with ``degraded``
    #: tags; ``"strict"`` rejects it with 503 ``shards_unavailable``.
    degraded_policy: str = "salvage"
    #: Async transport: concurrent connections accepted before new ones
    #: are turned away with 429.
    max_connections: int = 256
    #: Async transport: a connection idle (or dribbling a partial
    #: request — the slow-loris shape) longer than this is dropped.
    idle_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.degraded_policy not in ("salvage", "strict"):
            raise ValueError(
                f"unknown degraded_policy: {self.degraded_policy!r}"
            )
        if self.max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")

    def timeout_for(self, path: str) -> int:
        """The default deadline (ms) for requests to ``path``."""
        if path == "/api/complete":
            return self.complete_timeout_ms
        return self.default_timeout_ms

    def make_gate(self) -> AdmissionGate:
        """A fresh admission gate with this config's limits."""
        return AdmissionGate(
            capacity=self.max_concurrency,
            max_queue=self.max_queue,
            queue_timeout_s=self.queue_timeout_s,
            retry_after_s=self.retry_after_s,
        )


@dataclass(frozen=True)
class PipelineResponse:
    """One fully serialized response, ready for any transport to frame."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()


class Flight:
    """One open single-flight evaluation: a leader plus subscribers.

    Completion is signalled through a :class:`threading.Event` (blocking
    followers — the threaded transport) and, for the event loop, through
    per-loop futures resolved with ``call_soon_threadsafe`` so an async
    follower never blocks a loop thread.
    """

    __slots__ = ("_event", "_lock", "_waiters", "response", "followers")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._waiters: list = []  # (loop, future) pairs
        self.response: PipelineResponse | None = None
        self.followers = 0

    def complete(self, response: PipelineResponse) -> None:
        with self._lock:
            self.response = response
            waiters = self._waiters
            self._waiters = []
        self._event.set()
        for loop, future in waiters:
            loop.call_soon_threadsafe(_resolve_future, future, response)

    def wait(self, timeout: float | None = None) -> PipelineResponse:
        """Blocking subscription (threaded transport / executor thread)."""
        if not self._event.wait(timeout):
            raise TimeoutError("single-flight leader did not finish")
        assert self.response is not None
        return self.response

    def subscribe(self, loop):
        """An ``asyncio.Future`` resolved with the leader's response."""
        future = loop.create_future()
        with self._lock:
            if self.response is None:
                self._waiters.append((loop, future))
                return future
            done = self.response
        _resolve_future(future, done)
        return future


def _resolve_future(future, response) -> None:
    if not future.cancelled():
        future.set_result(response)


class SingleFlight:
    """The per-server flight table plus its monitoring counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[tuple, Flight] = {}
        #: Flights opened (= leader evaluations).
        self.flights = 0
        #: Requests that subscribed to an open flight instead of
        #: evaluating (= engine evaluations saved).
        self.followers = 0

    def join(self, key: tuple) -> tuple[Flight, bool]:
        """The flight for ``key`` and whether the caller leads it."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.followers += 1
                self.followers += 1
                return flight, False
            flight = Flight()
            self._flights[key] = flight
            self.flights += 1
            return flight, True

    def finish(self, key: tuple, flight: Flight, response: PipelineResponse) -> None:
        """Close the flight and publish ``response`` to every follower."""
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.complete(response)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "flights": self.flights,
                "followers": self.followers,
                "in_flight": len(self._flights),
            }


class RequestPipeline:
    """Everything between raw request bytes and raw response bytes.

    One instance per server; both transports call :meth:`handle` (or its
    decomposed pieces, for the event loop) with the method, path, and
    body bytes, and write back the returned :class:`PipelineResponse`
    verbatim.  No socket types appear at this layer or below it.
    """

    def __init__(
        self,
        database: LotusXDatabase | DatabaseHolder | TenantRegistry,
        config: ServerConfig | None = None,
        gate: AdmissionGate | None = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.gate = gate if gate is not None else self.config.make_gate()
        if isinstance(database, TenantRegistry):
            self.tenants = database
        elif isinstance(database, DatabaseHolder):
            self.tenants = TenantRegistry.single(database)
        else:
            self.tenants = TenantRegistry.single(DatabaseHolder(database))
        # Size the per-tenant quota slices against this server's limits.
        self.tenants.attach(self.config)
        #: The default tenant's holder — the single-corpus alias every
        #: pre-tenant caller (transports, tests) still reaches for.
        self.holder = self.tenants.default.holder
        self.flights = SingleFlight()
        self._counter_lock = threading.Lock()
        #: Autocomplete keystrokes answered as superseded (batching).
        self.superseded_keystrokes = 0
        #: Streamed (chunked ndjson) search responses served.
        self.streamed_responses = 0
        #: Optional transport hook: a zero-arg callable returning a
        #: connection-level stats dict, surfaced in ``/api/stats``.
        self.connection_stats = None

    # ------------------------------------------------------------------
    # The full synchronous path (threaded transport, tests)
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None = b"",
        declared_length: int | None = None,
    ) -> PipelineResponse:
        """Process one request end to end, coalescing where possible.

        ``declared_length`` is the transport's ``Content-Length``;
        transports must pass ``body=None`` (unread) when it exceeds
        :attr:`ServerConfig.max_body_bytes` — the pipeline answers 413
        without ever holding the oversized bytes.
        """
        key = self.coalesce_key(method, path, body)
        if key is None:
            return self.execute(method, path, body, declared_length)
        flight, leader = self.flights.join(key)
        if not leader:
            return flight.wait()
        response: PipelineResponse | None = None
        try:
            response = self.execute(method, path, body, declared_length)
            return response
        finally:
            if response is None:  # pragma: no cover - defensive
                response = self._json(
                    500, {"error": "internal error", "code": "internal"}
                )
            self.flights.finish(key, flight, response)

    # ------------------------------------------------------------------
    # Tenant routing
    # ------------------------------------------------------------------

    def resolve(self, path: str) -> tuple[Tenant, str, bool]:
        """Route ``path`` to ``(tenant, base_path, scoped)``.

        ``scoped`` is True for ``/api/t/<name>/...`` requests; bare
        paths land on the default tenant with ``base_path == path``.
        Raises :class:`~repro.tenant.registry.TenantError` for invalid
        or unknown tenant names — callers map it with
        :meth:`tenant_error_response`.
        """
        name, base = split_tenant(path)
        if name is None:
            return self.tenants.default, path, False
        return self.tenants.get(name), base, True

    def tenant_error_response(self, exc: TenantError) -> PipelineResponse:
        """The structured 400/404/… body for a tenant-addressing error."""
        payload = {"error": str(exc), "code": exc.code}
        payload.update(exc.fields())
        return self._json(exc.http_status, payload)

    # ------------------------------------------------------------------
    # Decomposed pieces (event-loop transport)
    # ------------------------------------------------------------------

    def coalesce_key(
        self, method: str, path: str, body: bytes | None
    ) -> tuple | None:
        """The single-flight key for this request, or ``None``.

        Only the read-only query endpoints coalesce; anything whose body
        is not a canonicalizable JSON object (it will 400 anyway) and
        streamed requests (their responses are not a single byte string)
        take the normal path.  The key leads with the tenant name, so
        two tenants' identical payloads can never share a flight (or a
        response byte); the tenant's own serving generation follows for
        the same reason across reloads.
        """
        if method != "POST":
            return None
        try:
            tenant, base, _ = self.resolve(path)
        except TenantError:
            return None  # execute() will produce the structured error
        if base not in COALESCED_PATHS:
            return None
        if body is None:
            return None
        try:
            payload = json.loads(body or b"{}")
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("stream"):
            return None
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return (tenant.name, base, canonical, tenant.holder.generation)

    def wants_stream(self, method: str, path: str, body: bytes | None) -> bool:
        """True when this request asked for a chunked ndjson response."""
        if method != "POST" or not body:
            return False
        if split_tenant(path)[1] != "/api/search":
            return False
        try:
            payload = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            return False
        return isinstance(payload, dict) and bool(payload.get("stream"))

    def execute(
        self,
        method: str,
        path: str,
        body: bytes | None,
        declared_length: int | None = None,
    ) -> PipelineResponse:
        """One uncoalesced request: admission gate, dispatch, serialize."""
        try:
            tenant, base, scoped = self.resolve(path)
        except TenantError as exc:
            return self.tenant_error_response(exc)
        tenant.count_request()
        if method == "GET":
            return self._execute_get(path, base, tenant, scoped)
        if method == "POST":
            return self._execute_post(
                path, base, tenant, scoped, body, declared_length
            )
        return self._json(
            405,
            {"error": f"method {method} not allowed", "code": "method_not_allowed"},
        )

    def is_static(self, method: str, path: str) -> bool:
        """Requests served outside the gate with no engine work — the
        event loop answers these inline rather than via the executor."""
        return method == "GET" and path in ("/", "/index.html")

    # ------------------------------------------------------------------

    def _execute_get(
        self, path: str, base: str, tenant: Tenant, scoped: bool
    ) -> PipelineResponse:
        if path in ("/", "/index.html"):
            # The GUI shell is static — served outside the gate so the
            # page stays reachable even under API overload.
            return PipelineResponse(
                200, INDEX_HTML.encode("utf-8"), "text/html"
            )
        if base == "/api/tenants" and not scoped:
            # Global listing — not a tenant-scoped endpoint.
            def listing() -> dict:
                fault_point("server.request")
                return self.tenants.listing()

            return self._run_guarded(path, listing, None, False)
        handler = _GET_HANDLERS.get(base)
        if handler is None:
            return self._not_found(path)

        def run() -> dict:
            fault_point("server.request")
            # Bind one generation for the whole request; a concurrent
            # reload swap never changes the database mid-handler.
            current, generation = tenant.holder.snapshot()
            result = handler(current)
            if handler is api.handle_stats:
                result["generation"] = generation
                result["admission"] = self.gate.snapshot()
                result["degraded_policy"] = self.config.degraded_policy
                result["coalescing"] = self.stats_block()
                if self.connection_stats is not None:
                    result["connections"] = self.connection_stats()
                result["tenants"] = self.tenants.stats_block()
                if scoped:
                    result["tenant"] = tenant.name
            return result

        return self._run_guarded(path, run, tenant, scoped)

    def _execute_post(
        self,
        path: str,
        base: str,
        tenant: Tenant,
        scoped: bool,
        body: bytes | None,
        declared_length: int | None,
    ) -> PipelineResponse:
        if base == "/api/reload":
            # Outside the admission gate: a rebuild must not occupy
            # (or wait for) a query slot.
            return self._handle_reload(tenant)
        if base == "/api/tenants" and not scoped:
            # Admin add — also outside the gate: the corpus build must
            # not occupy (or wait for) a query slot.
            return self._handle_tenant_add(body, declared_length)
        handler = _POST_HANDLERS.get(base)
        if handler is None:
            return self._not_found(path)

        def run() -> dict:
            payload = self._read_json(body, declared_length)
            deadline = api.resolve_deadline(
                payload,
                default_ms=self.config.timeout_for(base),
                max_ms=self.config.max_timeout_ms,
            )
            fault_point("server.request", deadline)
            current = tenant.holder.current
            if handler is api.handle_explain:
                return handler(current, payload)
            if handler in (api.handle_search, api.handle_keyword):
                return handler(
                    current,
                    payload,
                    deadline,
                    strict_shards=self.config.degraded_policy == "strict",
                )
            return handler(current, payload, deadline)

        return self._run_guarded(path, run, tenant, scoped)

    def _handle_reload(self, tenant: Tenant) -> PipelineResponse:
        """Rebuild one tenant from its configured source and swap
        atomically.

        Reloads only re-read the source the tenant was started with —
        clients cannot point the server at other files.  Each tenant
        reloads independently: its generation bumps, every other
        tenant's serving database is untouched.
        """
        try:
            result = tenant.holder.reload()
            status, payload = 200, result
        except ReloadUnavailable as exc:
            status = 400
            payload = {"error": str(exc), "code": "reload_unavailable"}
        except ReloadInProgress as exc:
            status = 409
            payload = {"error": str(exc), "code": "reload_in_progress"}
        except Exception:
            # A failed build leaves the old generation serving; log
            # the cause server-side, answer with a generic error.
            log.exception("reload failed; still serving old generation")
            status = 500
            payload = {"error": "reload failed", "code": "reload_failed"}
        return self._json(status, payload)

    def _handle_tenant_add(
        self, body: bytes | None, declared_length: int | None
    ) -> PipelineResponse:
        """``POST /api/tenants``: load a new corpus into the registry.

        Gated behind ``admin_enabled`` (the ``--tenant-admin`` serve
        flag): by default a running server's tenant set is fixed at
        startup and this endpoint answers 403.
        """
        try:
            if not self.tenants.admin_enabled:
                raise TenantAdminDisabled(
                    "tenant administration is disabled on this server"
                )
            payload = self._read_json(body, declared_length)
            name = payload.get("name")
            if not isinstance(name, str) or not name:
                raise api.ApiError("missing 'name'")
            # Validate the name before any corpus I/O so a bad name is
            # reported as such, not as a load failure.
            validate_tenant_name(name)
            corpus = payload.get("path")
            if not isinstance(corpus, str) or not corpus:
                raise api.ApiError("missing 'path'")
            quota = payload.get("quota")
            if quota is not None:
                quota = api._int(quota, "quota", minimum=1, maximum=1 << 16)
            shards = api._int(
                payload.get("shards", 1), "shards", minimum=1, maximum=64
            )
            kind = payload.get("kind")
            if kind is None:
                kind = _detect_source_kind(corpus)
            source = ReloadSource(kind=str(kind), path=corpus, shards=shards)
            try:
                database = source.build()
            except (OSError, ValueError) as exc:
                raise api.ApiError(f"could not load corpus: {exc}") from exc
            added = self.tenants.add(
                name, database, source=source, quota=quota
            )
            result = {
                "tenant": added.name,
                "generation": added.holder.generation,
                "source": source.kind,
                "tenants": self.tenants.names(),
                "default": self.tenants.default_name,
            }
            return self._json(200, result)
        except TenantError as exc:
            return self.tenant_error_response(exc)
        except api.ApiError as exc:
            return self._json(
                exc.http_status, {"error": str(exc), "code": exc.code}
            )
        except ResilienceError as exc:
            return self._json(exc.http_status, exc.payload())
        except Exception:
            log.exception("tenant add failed")
            return self._json(
                500, {"error": "internal error", "code": "internal"}
            )

    # ------------------------------------------------------------------
    # Streamed search
    # ------------------------------------------------------------------

    def run_search_stream(
        self,
        path: str,
        body: bytes | None,
        declared_length: int | None,
        emit,
    ) -> PipelineResponse | None:
        """Streamed ``/api/search``: flush first answers before ranking.

        Validates the request and, when streamable, calls
        ``emit(chunk)`` with each ndjson line (bytes, newline-terminated)
        — first the preliminary document-order top-k (available as soon
        as matching finishes, before ranking/snippet work), then the
        full ranked response — and returns ``None``.  Any outcome that
        prevents streaming (bad request, overload, engine failure before
        the first byte) is returned as a normal single
        :class:`PipelineResponse` instead, so the transport can fall
        back to a plain response; nothing has been emitted in that case.

        The whole stream runs under one admission-gate slot (the
        addressed tenant's quota slice, then the global gate): it is one
        request's engine work, however many chunks it flushes.
        """
        try:
            tenant, _, scoped = self.resolve(path)
        except TenantError as exc:
            return self.tenant_error_response(exc)
        tenant.count_request()
        headers: dict[str, str] = {}
        try:
            with tenant.admission(self.gate):
                try:
                    payload = self._read_json(body, declared_length)
                    deadline = api.resolve_deadline(
                        payload,
                        default_ms=self.config.timeout_for("/api/search"),
                        max_ms=self.config.max_timeout_ms,
                    )
                    fault_point("server.request", deadline)
                    current = tenant.holder.current
                    first = self._first_answers(current, payload)
                except api.ApiError as exc:
                    return self._json(
                        exc.http_status, {"error": str(exc), "code": exc.code}
                    )
                # Preliminary answers are on the wire before ranking:
                emit(_ndjson(first))
                try:
                    final = api.handle_search(
                        current,
                        payload,
                        deadline,
                        strict_shards=self.config.degraded_policy == "strict",
                    )
                except api.ApiError as exc:
                    final = {"error": str(exc), "code": exc.code}
                except ResilienceError as exc:
                    final = exc.payload()
                except Exception:
                    log.exception("unhandled error streaming /api/search")
                    final = {"error": "internal error", "code": "internal"}
                emit(_ndjson(final))
                with self._counter_lock:
                    self.streamed_responses += 1
                return None
        except Overloaded as exc:
            headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after)))
            payload = exc.payload()
            if scoped or tenant.slice_gate is not None:
                payload["tenant"] = tenant.name
            return self._json(exc.http_status, payload, headers)
        except ResilienceError as exc:
            return self._json(exc.http_status, exc.payload())
        except Exception:
            log.exception("unhandled error serving streamed /api/search")
            return self._json(
                500, {"error": "internal error", "code": "internal"}
            )

    def _first_answers(self, current, payload: dict) -> dict:
        """The preliminary stream line: document-order top-k xpaths.

        Uses the raw match enumeration (no ranking, no snippets); the
        match cache makes the follow-up ranked pass reuse this work.
        """
        from repro.engine.results import element_xpath
        from repro.twig.parse import TwigSyntaxError

        query = payload.get("query")
        if not query:
            raise api.ApiError("missing 'query'")
        k = api._int(payload.get("k", 10), "k", minimum=1, maximum=api.MAX_K)
        try:
            pattern = current.parse_query(str(query))
            matches = current.matches(pattern)
        except TwigSyntaxError as exc:
            raise api.ApiError(f"bad twig query: {exc}") from exc
        first = []
        for match in matches[:k]:
            outputs = match.output_elements(pattern)
            if outputs:
                first.append(element_xpath(outputs[0]))
        return {
            "partial": True,
            "total_matches": len(matches),
            "first": first,
        }

    # ------------------------------------------------------------------
    # Keystroke batching bookkeeping
    # ------------------------------------------------------------------

    def superseded_response(self) -> PipelineResponse:
        """The answer for an autocomplete keystroke a newer one on the
        same connection superseded: an empty, explicitly marked
        candidate list.  Counted for ``/api/stats``."""
        with self._counter_lock:
            self.superseded_keystrokes += 1
        return self._json(
            200, {"candidates": [], "truncated": False, "superseded": True}
        )

    def stats_block(self) -> dict:
        """The ``coalescing`` block of ``/api/stats``."""
        block = self.flights.snapshot()
        with self._counter_lock:
            block["superseded_keystrokes"] = self.superseded_keystrokes
            block["streamed_responses"] = self.streamed_responses
        return block

    # ------------------------------------------------------------------
    # Guarded execution & serialization
    # ------------------------------------------------------------------

    def _run_guarded(
        self,
        path: str,
        produce,
        tenant: Tenant | None = None,
        scoped: bool = False,
    ) -> PipelineResponse:
        """Run ``produce`` behind the admission gate, mapping the error
        taxonomy to HTTP.

        With a ``tenant``, admission goes through the tenant's quota
        slice first, then the global gate; a 429 then names the tenant
        in its body (whenever the request was tenant-scoped or the
        tenant actually has a slice), so shed traffic is attributable.
        """
        headers: dict[str, str] = {}
        try:
            if tenant is None:
                gate_ctx = self.gate.slot()
            else:
                gate_ctx = tenant.admission(self.gate)
            with gate_ctx:
                status, payload = 200, produce()
        except Overloaded as exc:
            headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after)))
            status, payload = exc.http_status, exc.payload()
            if tenant is not None and (scoped or tenant.slice_gate is not None):
                payload["tenant"] = tenant.name
        except api.ApiError as exc:
            status = exc.http_status
            payload = {"error": str(exc), "code": exc.code}
        except ResilienceError as exc:
            # DeadlineExceeded that no layer degraded, PayloadTooLarge…
            status, payload = exc.http_status, exc.payload()
        except Exception:
            # Log the traceback server-side; never leak it to clients.
            log.exception("unhandled error serving %s", path)
            status = 500
            payload = {"error": "internal error", "code": "internal"}
        return self._json(status, payload, headers)

    def _read_json(
        self, body: bytes | None, declared_length: int | None
    ) -> dict:
        length = declared_length
        if length is None:
            length = len(body) if body is not None else 0
        if length > self.config.max_body_bytes:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the"
                f" {self.config.max_body_bytes}-byte limit",
                limit=self.config.max_body_bytes,
            )
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise api.ApiError(f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise api.ApiError("JSON body must be an object")
        return payload

    def _not_found(self, path: str) -> PipelineResponse:
        return self._json(
            404, {"error": f"no such path: {path}", "code": "not_found"}
        )

    def _json(
        self,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> PipelineResponse:
        return PipelineResponse(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            tuple((headers or {}).items()),
        )


def _ndjson(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8") + b"\n"


def _detect_source_kind(path: str) -> str:
    """``"snapshot"`` for ``.lxsnap`` files and sharded snapshot
    directories, ``"xml"`` otherwise — the same convention the CLI's
    ``--corpus`` flag uses."""
    if path.endswith(".lxsnap"):
        return "snapshot"
    try:
        from repro.engine.store import is_sharded_snapshot

        if is_sharded_snapshot(path):
            return "snapshot"
    except Exception:  # pragma: no cover - detection must never raise
        pass
    return "xml"
