"""JSON API handlers, independent of HTTP plumbing.

Each public function takes plain dict payloads and returns plain dicts, so
the same handlers serve the stdlib HTTP server and the tests (which call
them directly, no sockets needed).

Node addressing: clients identify a query node by its *preorder index* in
the parsed pattern (0 = root), which is stable for a given query text.
"""

from __future__ import annotations

from repro.engine.database import LotusXDatabase
from repro.resilience.deadline import Deadline
from repro.resilience.errors import ShardsUnavailable
from repro.summary.paths import format_path
from repro.twig.parse import TwigSyntaxError, parse_twig
from repro.twig.pattern import Axis, QueryNode, TwigPattern

#: Requested result counts above this are clamped (not rejected).
MAX_K = 1000

#: Hard ceiling on client-requested ``timeout_ms`` overrides.
MAX_TIMEOUT_MS = 60_000


class ApiError(ValueError):
    """A client error (HTTP 400)."""

    code = "bad_request"
    http_status = 400


class NotWritable(ApiError):
    """The serving database has no write path (HTTP 501).

    Read-only serving, sharded fleets, and attribute-expanded corpora
    all reject mutations this way; the admission decision is made before
    any work happens.
    """

    code = "not_writable"
    http_status = 501


class DocumentNotFound(ApiError):
    """An update/delete named an unknown document id (HTTP 404)."""

    code = "document_not_found"
    http_status = 404


class DocumentExists(ApiError):
    """An insert named an id that is already live (HTTP 409)."""

    code = "document_exists"
    http_status = 409


class WriterUnavailable(ApiError):
    """The writer is wedged or closed (HTTP 503); restart to recover."""

    code = "writer_unavailable"
    http_status = 503


def resolve_deadline(
    payload: dict,
    default_ms: int | None = None,
    max_ms: int = MAX_TIMEOUT_MS,
) -> Deadline | None:
    """The request's deadline: the payload's ``timeout_ms`` override
    (must be a positive integer; values above ``max_ms`` are clamped) or
    ``default_ms``.  ``None`` (no override, no default) disables it."""
    raw = payload.get("timeout_ms")
    if raw is None:
        timeout_ms = default_ms
    else:
        timeout_ms = _int(raw, "timeout_ms", minimum=1, maximum=max_ms)
    if timeout_ms is None:
        return None
    return Deadline.after_ms(timeout_ms)


def handle_stats(database: LotusXDatabase) -> dict:
    """Corpus statistics plus per-instance cache/evaluation counters.

    When the serving database is a sharded fleet, ``caches`` carries the
    routing counters (``router``: queries routed, shards pruned,
    fallbacks) and one counter block per shard (``per_shard``).  A
    writable database additionally reports a ``writer`` block (queue
    depth, WAL size, applied seqno, compactions, wedged flag).
    """
    result = {
        "statistics": database.statistics().as_dict(),
        "caches": database.cache_statistics(),
    }
    writer_statistics = getattr(database, "writer_statistics", None)
    if callable(writer_statistics):
        writer_block = writer_statistics()
        if writer_block is not None:
            result["writer"] = writer_block
    return result


def handle_dataguide(database: LotusXDatabase) -> dict:
    """The DataGuide as a nested tree (drives the GUI's schema panel)."""

    def node_dict(path_node) -> dict:
        return {
            "tag": path_node.tag,
            "path": format_path(path_node.path),
            "count": path_node.count,
            "has_text": path_node.text_count > 0,
            "children": [node_dict(child) for child in path_node.children.values()],
        }

    return {"roots": [node_dict(root) for root in database.guide.root_nodes]}


def handle_examples(database: LotusXDatabase) -> dict:
    """Verified starter queries for the GUI's empty state."""
    return {
        "examples": [example.as_dict() for example in database.example_queries()]
    }


def handle_complete(
    database: LotusXDatabase, payload: dict, deadline: Deadline | None = None
) -> dict:
    """Autocompletion for tags or values.

    Payload keys: ``kind`` ("tag"|"value"), ``prefix``, ``k``, and for
    position-aware requests ``query`` (twig text) + ``node`` (preorder
    index of the anchor/value node) + ``axis`` ("/"|"//", tags only).
    An optional ``timeout_ms`` bounds the work; on expiry the candidates
    gathered so far are returned with ``truncated: true``.
    """
    kind = payload.get("kind", "tag")
    prefix = str(payload.get("prefix", ""))
    k = _int(payload.get("k", 10), "k", minimum=1, maximum=MAX_K)
    if deadline is None:
        deadline = resolve_deadline(payload)
    query_text = payload.get("query") or ""
    pattern, node = _resolve_node(query_text, payload.get("node"))

    if kind == "tag":
        axis = Axis.DESCENDANT if payload.get("axis") == "//" else Axis.CHILD
        candidates = database.complete_tag(
            pattern, node, prefix, axis, k, deadline
        )
    elif kind == "value":
        if pattern is None or node is None:
            raise ApiError("value completion requires 'query' and 'node'")
        whole = bool(payload.get("whole_values", True))
        candidates = database.complete_value(
            pattern, node, prefix, k, whole, deadline
        )
    else:
        raise ApiError(f"unknown completion kind {kind!r}")
    return {
        "candidates": [candidate.as_dict() for candidate in candidates],
        "truncated": bool(deadline is not None and deadline.tripped),
    }


def handle_search(
    database: LotusXDatabase,
    payload: dict,
    deadline: Deadline | None = None,
    strict_shards: bool = False,
) -> dict:
    """Ranked search; payload: ``query``, ``k``, ``rewrite``,
    ``timeout_ms`` (optional work bound — expiry yields a partial
    response with ``truncated: true``, not an error).

    ``strict_shards`` selects the server's degraded-response policy:
    ``False`` (salvage, the default) passes shard-loss degradation
    through as a 200 with ``degraded`` tags, ``True`` rejects such
    responses with 503 :class:`ShardsUnavailable`.
    """
    query = payload.get("query")
    if not query:
        raise ApiError("missing 'query'")
    k = _int(payload.get("k", 10), "k", minimum=1, maximum=MAX_K)
    rewrite = bool(payload.get("rewrite", True))
    if deadline is None:
        deadline = resolve_deadline(payload)
    try:
        response = database.search(
            str(query), k=k, rewrite=rewrite, deadline=deadline
        )
    except TwigSyntaxError as exc:
        raise ApiError(f"bad twig query: {exc}") from exc
    return _enforce_shard_policy(response.as_dict(), strict_shards)


def handle_keyword(
    database: LotusXDatabase,
    payload: dict,
    deadline: Deadline | None = None,
    strict_shards: bool = False,
) -> dict:
    """Keyword search; payload: ``query``, ``k``, ``semantics``,
    ``timeout_ms`` (optional).  ``strict_shards`` as in
    :func:`handle_search`."""
    query = payload.get("query")
    if not query:
        raise ApiError("missing 'query'")
    k = _int(payload.get("k", 10), "k", minimum=1, maximum=MAX_K)
    semantics = str(payload.get("semantics", "slca"))
    if deadline is None:
        deadline = resolve_deadline(payload)
    try:
        result = database.keyword_search(
            str(query), k=k, semantics=semantics, deadline=deadline
        ).as_dict()
    except ValueError as exc:
        raise ApiError(str(exc)) from exc
    return _enforce_shard_policy(result, strict_shards)


def handle_documents(
    database: LotusXDatabase, payload: dict, deadline: Deadline | None = None
) -> dict:
    """Live mutations: insert / update / delete one top-level document.

    Payload keys: ``action`` (``"insert"`` | ``"update"`` | ``"delete"``,
    default insert), ``id`` (required for update/delete; optional for
    insert — omitted ids are assigned), ``xml`` (the document subtree,
    insert/update only), and ``wait`` (default true: block until the
    mutation is queryable; false acknowledges at durability — the WAL
    append — and returns immediately).

    Requires a writable serving database (``lotusx serve --writable``);
    anything else — read-only, sharded, attribute-expanded — is rejected
    with 501 :class:`NotWritable` before any work happens.
    """
    from repro.write.writer import (
        DuplicateDocument,
        UnknownDocument,
        WriterClosed,
        WriterWedged,
    )
    from repro.xmlio.errors import XMLError

    writer = getattr(database, "writer", None)
    if writer is None:
        raise NotWritable(
            "this server is read-only; start with 'lotusx serve --writable'"
            " to enable the write path"
        )
    action = str(payload.get("action", "insert"))
    if action not in ("insert", "update", "delete"):
        raise ApiError(f"unknown action {action!r}")
    doc_id = payload.get("id")
    if doc_id is not None:
        doc_id = str(doc_id)
    elif action != "insert":
        raise ApiError(f"'{action}' requires 'id'")
    xml = payload.get("xml")
    if action != "delete":
        if not isinstance(xml, str) or not xml.strip():
            raise ApiError(f"'{action}' requires a non-empty 'xml' string")
    else:
        xml = None
    wait = bool(payload.get("wait", True))
    try:
        seqno, doc_id = writer.submit(action, doc_id, xml)
    except DuplicateDocument as exc:
        raise DocumentExists(str(exc)) from exc
    except UnknownDocument as exc:
        raise DocumentNotFound(str(exc)) from exc
    except (WriterClosed, WriterWedged) as exc:
        raise WriterUnavailable(str(exc)) from exc
    except XMLError as exc:
        raise ApiError(f"bad document xml: {exc}") from exc
    except ValueError as exc:
        raise ApiError(str(exc)) from exc
    applied = False
    if wait:
        timeout = None
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining is not None:
                timeout = max(0.001, remaining)
        try:
            writer.wait_for(seqno, timeout if timeout is not None else 30.0)
            applied = True
        except WriterWedged as exc:
            raise WriterUnavailable(str(exc)) from exc
        except TimeoutError:
            applied = False  # durable but not yet queryable
    return {
        "action": action,
        "id": doc_id,
        "seqno": seqno,
        "applied": applied,
        "last_applied_seqno": writer.last_applied_seqno,
    }


def _shard_down_indices(result: dict) -> list[int]:
    """Shard indices named by ``shard-<i>-unavailable`` degraded tags."""
    down = []
    for tag in result.get("degraded", ()):
        parts = str(tag).split("-")
        if len(parts) == 3 and parts[0] == "shard" and parts[2] == "unavailable":
            try:
                down.append(int(parts[1]))
            except ValueError:
                continue
    return down


def _enforce_shard_policy(result: dict, strict: bool) -> dict:
    """Apply the server's degraded-response policy to a handler result.

    Salvaged responses carry ``degraded`` shard tags; under the strict
    policy those become a 503 instead of a silently partial 200.
    """
    if strict:
        down = _shard_down_indices(result)
        if down:
            raise ShardsUnavailable(
                "degraded response rejected by strict shard policy",
                down=down,
                site="server.policy",
            )
    return result


def handle_explain(database: LotusXDatabase, payload: dict) -> dict:
    """Evaluation plan; payload: ``query``."""
    query = payload.get("query")
    if not query:
        raise ApiError("missing 'query'")
    try:
        return database.explain(str(query))
    except TwigSyntaxError as exc:
        raise ApiError(f"bad twig query: {exc}") from exc


def _resolve_node(
    query_text: str, node_index
) -> tuple[TwigPattern | None, QueryNode | None]:
    if not query_text:
        return None, None
    try:
        pattern = parse_twig(query_text)
    except TwigSyntaxError as exc:
        raise ApiError(f"bad twig query: {exc}") from exc
    if node_index is None:
        return pattern, pattern.root
    index = _int(node_index, "node")
    nodes = pattern.nodes()
    if not 0 <= index < len(nodes):
        raise ApiError(f"node index {index} out of range (pattern has {len(nodes)})")
    return pattern, nodes[index]


def _int(
    value, name: str, minimum: int | None = None, maximum: int | None = None
) -> int:
    try:
        result = int(value)
    except (TypeError, ValueError):
        raise ApiError(f"{name!r} must be an integer") from None
    if minimum is not None and result < minimum:
        raise ApiError(f"{name!r} must be >= {minimum}, got {result}")
    if maximum is not None and result > maximum:
        result = maximum
    return result
