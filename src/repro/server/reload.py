"""Atomic hot-swap reload for a serving database.

The server never serves a half-built database: a reload builds the new
:class:`~repro.engine.database.LotusXDatabase` completely (on the
reloading request's own thread, outside the admission gate so query
capacity is untouched), then swaps it in with one atomic reference
update.  Handlers bind ``holder.current`` once at request start, so
in-flight requests finish against the generation they started with;
match caches live on the database object itself, which makes cache
invalidation free — the old generation's caches are garbage-collected
with it.

Reloads rebuild from the *configured* source only (the corpus or
snapshot the server was started with).  Clients cannot point the server
at arbitrary files; they can only ask for the existing source to be
re-read — e.g. after re-running ``lotusx index``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.engine.database import LotusXDatabase


class ReloadError(RuntimeError):
    """A reload request could not be carried out."""


class ReloadUnavailable(ReloadError):
    """The server has no reload source configured."""


class ReloadInProgress(ReloadError):
    """Another reload is still building; try again later."""


@dataclass(frozen=True)
class ReloadSource:
    """Where a replacement database comes from.

    ``kind`` is ``"xml"`` (re-parse and re-index a corpus file) or
    ``"snapshot"`` (load a snapshot written by ``lotusx index`` — either
    a single ``.lxsnap`` file or a sharded snapshot directory).  For
    ``"xml"`` sources, ``shards > 1`` re-indexes into a sharded fleet.
    """

    kind: str
    path: str
    expand_attributes: bool = False
    shards: int = 1
    #: Replicas per shard for sharded serving; the rebuilt generation
    #: gets a *fresh* replica fleet (health, breakers, latency windows
    #: all reset), swapped in with the database in one atomic step.
    replicas: int = 1
    #: Optional :class:`~repro.fleet.fleet.FleetConfig` tuning carried
    #: across reloads (``None`` uses fleet defaults).
    fleet_config: object | None = None
    #: Serve snapshot hot sections zero-copy from an ``mmap`` of the
    #: file (v3 snapshots; older versions fall back to the copying
    #: loader).  Hot reload is unmap-safe: the old generation holds a
    #: reference on its mapping, and the mapping outlives every
    #: in-flight request that still touches its buffers.
    mmap: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("xml", "snapshot"):
            raise ValueError(f"unknown reload source kind: {self.kind!r}")
        if self.shards > 1 and self.expand_attributes:
            raise ValueError("sharded serving does not support expand_attributes")
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")

    def build(self) -> LotusXDatabase:
        """Build a fresh, fully materialized database from the source.

        A sharded source yields the whole fleet as one object, so the
        swap replaces every shard (and its caches, router counters,
        replica fleet, and executor pools) in a single
        generation-consistent step.
        """
        if self.kind == "snapshot":
            from repro.engine.store import (
                is_sharded_snapshot,
                load_sharded_snapshot,
                load_snapshot,
            )

            # Eager: the swapped-in generation must be query-ready, not
            # pay lazy inflation on the first production request.
            if is_sharded_snapshot(self.path):
                return load_sharded_snapshot(
                    self.path,
                    eager=True,
                    replicas=self.replicas,
                    fleet_config=self.fleet_config,
                    mmap=self.mmap,
                )
            if self.mmap:
                from repro.engine.store import is_mmap_backed

                database = load_snapshot(self.path, mmap=True)
                if is_mmap_backed(database):
                    # Zero-copy generation: warm only the hot sections —
                    # the document tree and label store stay on disk
                    # until a query path actually needs them.
                    database.warm_hot()
                else:
                    # Pre-v3 / foreign-layout file fell back to the
                    # copying loader; warm it fully like any other.
                    database.warm()
                return database
            return load_snapshot(self.path, eager=True)
        if self.shards > 1:
            from repro.shard.database import ShardedDatabase

            return ShardedDatabase.from_file(
                self.path,
                self.shards,
                replicas=self.replicas,
                fleet_config=self.fleet_config,
            )
        return LotusXDatabase.from_file(
            self.path, expand_attributes=self.expand_attributes
        )


def serving_element_count(database) -> int:
    """Corpus element count for either database flavor."""
    labeled = getattr(database, "labeled", None)
    if labeled is not None:
        return len(labeled)
    return database.element_count


class DatabaseHolder:
    """Thread-safe, swappable reference to the serving database.

    ``current`` is what request handlers bind; ``generation`` increments
    on every swap (it starts at 1) and is surfaced in ``/api/stats`` so
    clients can observe a reload taking effect.
    """

    def __init__(
        self,
        database: LotusXDatabase,
        source: ReloadSource | None = None,
        label: str | None = None,
    ) -> None:
        self._lock = threading.Lock()
        #: Serializes reloads; held for the whole build so concurrent
        #: reload requests fail fast (409) instead of piling up builds.
        self._reload_lock = threading.Lock()
        self._database = database
        self._generation = 1
        database.serving_generation = 1
        self.source = source
        #: Tenant name when this holder serves a named corpus (multi-
        #: tenant serving); stamped onto every installed generation so
        #: per-instance cache statistics are attributable.
        self.label = label
        if label is not None:
            database.tenant_label = label

    @property
    def current(self) -> LotusXDatabase:
        with self._lock:
            return self._database

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def snapshot(self) -> tuple[LotusXDatabase, int]:
        """The current database and its generation, read atomically."""
        with self._lock:
            return self._database, self._generation

    def swap(self, database: LotusXDatabase) -> int:
        """Install ``database`` as the new generation; returns its
        generation number.  In-flight requests keep the reference they
        already bound."""
        with self._lock:
            self._database = database
            self._generation += 1
            # Stamp the generation onto the instance so its plan cache
            # keys can never collide with a previous generation's.
            database.serving_generation = self._generation
            if self.label is not None:
                database.tenant_label = self.label
            return self._generation

    def reload(self) -> dict:
        """Rebuild from the configured source and swap atomically.

        Returns a summary dict (generation, element count, build time).

        Raises
        ------
        ReloadUnavailable
            No source was configured (e.g. the database was built from a
            string and there is nothing on disk to re-read).
        ReloadInProgress
            Another reload is still building.
        """
        if self.source is None:
            raise ReloadUnavailable("this server has no reload source configured")
        if not self._reload_lock.acquire(blocking=False):
            raise ReloadInProgress("a reload is already in progress")
        try:
            started = time.perf_counter()
            database = self.source.build()
            generation = self.swap(database)
            result = {
                "generation": generation,
                "elements": serving_element_count(database),
                "source": self.source.kind,
                "elapsed_seconds": round(time.perf_counter() - started, 3),
            }
            if self.label is not None:
                result["tenant"] = self.label
            return result
        finally:
            self._reload_lock.release()
