"""GUI substitute: a JSON HTTP API plus an embedded single-page twig
builder (see the substitution table in DESIGN.md)."""

from repro.server.api import (
    ApiError,
    handle_complete,
    handle_dataguide,
    handle_examples,
    handle_explain,
    handle_keyword,
    handle_search,
    handle_stats,
)
from repro.server.app import make_handler, make_server, serve

__all__ = [
    "ApiError",
    "handle_complete",
    "handle_dataguide",
    "handle_examples",
    "handle_explain",
    "handle_keyword",
    "handle_search",
    "handle_stats",
    "make_handler",
    "make_server",
    "serve",
]
