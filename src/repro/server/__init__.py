"""GUI substitute: a JSON HTTP API plus an embedded single-page twig
builder (see the substitution table in DESIGN.md).

Two transports drive one transport-agnostic request pipeline:

* :mod:`repro.server.aio` — the event-driven default (keep-alive,
  connection limits, single-flight coalescing, keystroke batching,
  chunked streaming);
* :mod:`repro.server.app` — the legacy thread-per-request fallback
  (``lotusx serve --legacy-threaded``).
"""

from repro.server.aio import make_async_server, serve_async
from repro.server.api import (
    ApiError,
    handle_complete,
    handle_dataguide,
    handle_examples,
    handle_explain,
    handle_keyword,
    handle_search,
    handle_stats,
)
from repro.server.app import make_handler, make_server, serve
from repro.server.pipeline import (
    PipelineResponse,
    RequestPipeline,
    ServerConfig,
)

__all__ = [
    "ApiError",
    "PipelineResponse",
    "RequestPipeline",
    "ServerConfig",
    "handle_complete",
    "handle_dataguide",
    "handle_examples",
    "handle_explain",
    "handle_keyword",
    "handle_search",
    "handle_stats",
    "make_async_server",
    "make_handler",
    "make_server",
    "serve",
    "serve_async",
]
