"""The embedded single-page GUI.

A dependency-free HTML/JS twig builder served at ``/``: a schema panel
(the DataGuide), a query box with live tag/value completion dropdowns, a
result list with score breakdowns, and the XPath translation — the
reproduction's stand-in for the LotusX web canvas.
"""

INDEX_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>LotusX — position-aware XML twig search</title>
<style>
  :root { --ink:#1c2430; --muted:#6b7686; --line:#d8dee8; --accent:#2d6cdf; }
  * { box-sizing: border-box; }
  body { font-family: system-ui, sans-serif; color: var(--ink); margin: 0;
         background:#f5f7fa; }
  header { background:#ffffff; border-bottom:1px solid var(--line);
           padding:14px 22px; }
  header h1 { margin:0; font-size:18px; }
  header p { margin:4px 0 0; color:var(--muted); font-size:13px; }
  main { display:grid; grid-template-columns: 280px 1fr; gap:18px;
         padding:18px 22px; }
  .panel { background:#fff; border:1px solid var(--line); border-radius:8px;
           padding:14px; }
  .panel h2 { font-size:13px; text-transform:uppercase; letter-spacing:.06em;
              color:var(--muted); margin:0 0 10px; }
  #guide { font-size:13px; max-height:70vh; overflow:auto; }
  #guide ul { list-style:none; padding-left:16px; margin:2px 0; }
  #guide .tag { cursor:pointer; color:var(--accent); }
  #guide .count { color:var(--muted); font-size:11px; }
  #query { width:100%; font:14px/1.4 ui-monospace, monospace; padding:9px;
           border:1px solid var(--line); border-radius:6px; }
  #suggest { position:relative; }
  #dropdown { position:absolute; left:0; right:0; background:#fff;
              border:1px solid var(--line); border-radius:6px; z-index:5;
              max-height:220px; overflow:auto; display:none; }
  #dropdown div { padding:6px 10px; cursor:pointer; font-size:13px; }
  #dropdown div:hover { background:#eef3fc; }
  #dropdown .meta { color:var(--muted); float:right; font-size:11px; }
  .row { display:flex; gap:8px; margin-top:10px; align-items:center; }
  button { background:var(--accent); color:#fff; border:0; border-radius:6px;
           padding:8px 16px; font-size:13px; cursor:pointer; }
  button.secondary { background:#e8edf5; color:var(--ink); }
  .chip { background:#eef3fc; color:var(--accent); border:1px solid var(--line);
          border-radius:12px; padding:3px 10px; font:12px ui-monospace, monospace;
          cursor:pointer; }
  #results { margin-top:14px; }
  .hit { border:1px solid var(--line); border-radius:6px; padding:10px 12px;
         margin-bottom:8px; background:#fff; }
  .hit .xpath { font:12px ui-monospace, monospace; color:var(--accent); }
  .hit .snippet { margin:4px 0; font-size:14px; }
  .hit .score { color:var(--muted); font-size:12px; }
  .hit .rewrite { color:#a05a00; font-size:12px; }
  #xpath, #status { font:12px ui-monospace, monospace; color:var(--muted);
                    margin-top:8px; white-space:pre-wrap; }
</style>
</head>
<body>
<header>
  <h1>LotusX — position-aware XML twig search with auto-completion</h1>
  <p>Type a twig query (or plain keywords for schema-free SLCA search);
     press <b>Ctrl+Space</b> for position-aware candidates, <b>Enter</b>
     to search. Twig syntax:
     <code>//article[./title~"twig"][year&gt;=2005]/author</code></p>
</header>
<main>
  <section class="panel">
    <h2>DataGuide</h2>
    <div id="guide">loading…</div>
  </section>
  <section class="panel">
    <h2>Query</h2>
    <div id="suggest">
      <input id="query" autocomplete="off" spellcheck="false"
             placeholder='//article[./title~"twig"]/author'>
      <div id="dropdown"></div>
    </div>
    <div id="examples" class="row" style="flex-wrap:wrap"></div>
    <div class="row">
      <button id="go">Search</button>
      <button id="explainBtn" class="secondary">Explain</button>
      <label><input type="checkbox" id="rewrite" checked> rewrite empty
        queries</label>
    </div>
    <div id="xpath"></div>
    <div id="status"></div>
    <div id="results"></div>
  </section>
</main>
<script>
const queryBox = document.getElementById('query');
const dropdown = document.getElementById('dropdown');
const statusBox = document.getElementById('status');

async function api(path, payload) {
  const options = payload
    ? {method:'POST', headers:{'Content-Type':'application/json'},
       body: JSON.stringify(payload)}
    : undefined;
  const response = await fetch(path, options);
  const data = await response.json();
  if (!response.ok) throw new Error(data.error || response.statusText);
  return data;
}

function guideList(nodes) {
  const ul = document.createElement('ul');
  for (const node of nodes) {
    const li = document.createElement('li');
    const span = document.createElement('span');
    span.className = 'tag';
    span.textContent = node.tag;
    span.title = node.path;
    span.onclick = () => { queryBox.value += '/' + node.tag; queryBox.focus(); };
    li.appendChild(span);
    li.insertAdjacentHTML('beforeend',
      ` <span class="count">×${node.count}</span>`);
    if (node.children.length) li.appendChild(guideList(node.children));
    ul.appendChild(li);
  }
  return ul;
}

api('/api/examples').then(data => {
  const box = document.getElementById('examples');
  for (const example of data.examples) {
    const chip = document.createElement('span');
    chip.className = 'chip';
    chip.textContent = example.query;
    chip.title = example.description;
    chip.onclick = () => { queryBox.value = example.query; runSearch(); };
    box.appendChild(chip);
  }
});

api('/api/dataguide').then(data => {
  const guide = document.getElementById('guide');
  guide.textContent = '';
  guide.appendChild(guideList(data.roots));
});

// ---- completion -----------------------------------------------------
// Heuristic client-side context: find the token being typed and the
// query prefix before it; the server resolves positions from the prefix.
function completionContext() {
  const text = queryBox.value.slice(0, queryBox.selectionStart);
  const valueMatch = text.match(/([~=])\\s*"([^"]*)$/);
  if (valueMatch) {
    const stem = text.slice(0, valueMatch.index);
    const nodeQuery = balancedPrefix(stem);
    return {kind:'value', prefix: valueMatch[2], query: nodeQuery,
            node: countNodes(nodeQuery) - 1, insertFrom: text.length - valueMatch[2].length};
  }
  const tagMatch = text.match(/(\\/\\/|\\/)(@?[A-Za-z0-9_.:-]*)$/);
  if (tagMatch) {
    const stem = text.slice(0, tagMatch.index);
    const nodeQuery = balancedPrefix(stem);
    return {kind:'tag', prefix: tagMatch[2], axis: tagMatch[1],
            query: nodeQuery, node: nodeQuery ? countNodes(nodeQuery) - 1 : null,
            insertFrom: text.length - tagMatch[2].length};
  }
  return null;
}

// Trim trailing unbalanced '[' fragments so the prefix parses.
function balancedPrefix(stem) {
  let cleaned = stem.replace(/\\[\\s*\\.?$/, '');
  while (cleaned && !parsable(cleaned)) {
    cleaned = cleaned.replace(/\\[[^\\[\\]]*$/, '');
    if (!/[\\[\\]]/.test(cleaned) && !parsable(cleaned)) return '';
  }
  return cleaned;
}
function parsable(text) {
  let depth = 0;
  for (const ch of text) {
    if (ch === '[') depth++;
    if (ch === ']') depth--;
  }
  return depth >= 0 && /^(ordered:)?\\/\\/?[A-Za-z*]/.test(text) &&
         depth === 0 && !/[\\/\\[~=<>!]$/.test(text);
}
function countNodes(query) {
  return (query.match(/\\/[@A-Za-z*]/g) || []).length;
}

async function showCompletions() {
  const ctx = completionContext();
  if (!ctx) { dropdown.style.display = 'none'; return; }
  try {
    const data = await api('/api/complete', ctx);
    dropdown.textContent = '';
    for (const cand of data.candidates) {
      const div = document.createElement('div');
      div.innerHTML = `${cand.text}<span class="meta">×${cand.count}` +
        (cand.sample_paths[0] ? ` · ${cand.sample_paths[0]}` : '') + '</span>';
      div.onclick = () => {
        const before = queryBox.value.slice(0, ctx.insertFrom);
        const after = queryBox.value.slice(queryBox.selectionStart);
        queryBox.value = before + cand.text + after;
        dropdown.style.display = 'none';
        queryBox.focus();
      };
      dropdown.appendChild(div);
    }
    dropdown.style.display = data.candidates.length ? 'block' : 'none';
  } catch (err) {
    dropdown.style.display = 'none';
  }
}

let debounce;
queryBox.addEventListener('input', () => {
  clearTimeout(debounce);
  debounce = setTimeout(showCompletions, 150);
});
queryBox.addEventListener('keydown', event => {
  if (event.key === ' ' && event.ctrlKey) { event.preventDefault(); showCompletions(); }
  if (event.key === 'Enter') { event.preventDefault(); runSearch(); }
  if (event.key === 'Escape') dropdown.style.display = 'none';
});

// ---- search ---------------------------------------------------------
async function runSearch() {
  dropdown.style.display = 'none';
  const results = document.getElementById('results');
  statusBox.textContent = 'searching…';
  results.textContent = '';
  const text = queryBox.value.trim();
  const isTwig = text.startsWith('/') || text.startsWith('ordered:');
  try {
    if (!isTwig) {  // plain words -> schema-free SLCA keyword search
      const data = await api('/api/keyword', {query: text, k: 10});
      statusBox.textContent =
        `${data.total_slcas} keyword answers (SLCA) for ${data.terms.join(' ')}`;
      for (const hit of data.hits) {
        const div = document.createElement('div');
        div.className = 'hit';
        div.innerHTML = `<div class="xpath">${hit.xpath}</div>` +
          `<div class="snippet">${hit.snippet || '<' + hit.tag + '/>'}</div>` +
          `<div class="score">score ${hit.score}` +
          ` (text ${hit.text_score}, specificity ${hit.specificity})</div>`;
        results.appendChild(div);
      }
      return;
    }
    const data = await api('/api/search', {
      query: queryBox.value, k: 10,
      rewrite: document.getElementById('rewrite').checked,
    });
    statusBox.textContent =
      `${data.total_matches} matches · ${data.results.length} shown · ` +
      `${(data.elapsed_seconds * 1000).toFixed(1)} ms` +
      (data.used_rewrites ? ` · rewritten (${data.rewrites_tried} tried)` : '');
    for (const hit of data.results) {
      const div = document.createElement('div');
      div.className = 'hit';
      div.innerHTML = `<div class="xpath">${hit.xpath}</div>` +
        `<div class="snippet">${hit.snippet || '<' + hit.tag + '/>'}</div>` +
        `<div class="score">score ${hit.score.combined}` +
        ` (structural ${hit.score.structural}, text ${hit.score.textual})</div>` +
        (hit.rewrite_steps.length
          ? `<div class="rewrite">rewritten: ${hit.rewrite_steps.join('; ')}</div>`
          : '');
      results.appendChild(div);
    }
    const explain = await api('/api/explain', {query: queryBox.value});
    document.getElementById('xpath').textContent =
      'XPath: ' + explain.xpath + '   [' + explain.algorithm + ']';
  } catch (err) {
    statusBox.textContent = 'error: ' + err.message;
  }
}
document.getElementById('go').onclick = runSearch;
document.getElementById('explainBtn').onclick = async () => {
  try {
    const explain = await api('/api/explain', {query: queryBox.value});
    statusBox.textContent = JSON.stringify(explain, null, 2);
  } catch (err) {
    statusBox.textContent = 'error: ' + err.message;
  }
};
</script>
</body>
</html>
"""
