"""Multi-tenant serving: named corpora behind one server process."""

from repro.tenant.registry import (
    DEFAULT_TENANT,
    DuplicateTenant,
    InvalidTenantName,
    Tenant,
    TenantAdminDisabled,
    TenantError,
    TenantRegistry,
    UnknownTenant,
    validate_tenant_name,
)

__all__ = [
    "DEFAULT_TENANT",
    "DuplicateTenant",
    "InvalidTenantName",
    "Tenant",
    "TenantAdminDisabled",
    "TenantError",
    "TenantRegistry",
    "UnknownTenant",
    "validate_tenant_name",
]
