"""Named corpora behind one server: the tenant registry.

One serving process hosts any number of *tenants*, each a named corpus
with its own independently loaded database (monolithic, sharded, or
writable), its own hot-reload source and serving generations, and its
own slice of the server's admission capacity.  The request pipeline
routes ``/api/t/<tenant>/...`` requests here; bare ``/api/...`` requests
fall back to the *default* tenant, so a single-corpus server behaves
byte-identically to the pre-tenant code.

**Quota slices.**  Every tenant owns an :class:`AdmissionGate` whose
capacity is carved out of the global gate: an explicit per-tenant
``quota`` if configured, otherwise an equal share
(``global_capacity // tenant_count``, floored at 1).  A request first
takes a slot in its tenant's slice, then one in the global gate — so a
tenant that saturates its slice sheds *its own* traffic with a 429 that
names the tenant (``site`` = ``tenant.<name>.admission``), while other
tenants' slices, and therefore their latency, are untouched.  A
single-tenant registry with no explicit quota skips the slice entirely
(the global gate alone guards it, exactly as before multi-tenancy).

**Cache partitioning.**  Tenants never share a database instance, so
every per-instance cache — compiled plans, match/parse LRUs, columnar
stream memos, completion LRUs — is partitioned by ``(tenant,
generation)`` by construction: the plan cache keys on the holder's
serving generation, and the instance itself is the tenant partition.
The cross-tenant caches that *do* live on the server (the single-flight
table) key on the tenant name explicitly (see
``RequestPipeline.coalesce_key``).
"""

from __future__ import annotations

import re
import threading
from collections.abc import Iterator
from contextlib import contextmanager

from repro.resilience.admission import AdmissionGate
from repro.server.reload import DatabaseHolder, ReloadSource

#: Legal tenant names: DNS-label-ish, lowercase, at most 64 characters.
TENANT_NAME_RE = re.compile(r"[a-z0-9_-]{1,64}\Z")

#: The tenant bare ``/api/...`` requests route to unless configured.
DEFAULT_TENANT = "default"


class TenantError(ValueError):
    """Base class for tenant-addressing errors.

    Mirrors the ``ApiError`` protocol (``code`` + ``http_status`` +
    :meth:`fields`) without importing the server layer, so the pipeline
    can map these to structured JSON error bodies.
    """

    code = "tenant_error"
    http_status = 400

    def __init__(self, message: str, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant

    def fields(self) -> dict:
        """Extra structured fields for the JSON error body."""
        return {} if self.tenant is None else {"tenant": self.tenant}


class InvalidTenantName(TenantError):
    """A tenant name outside ``[a-z0-9_-]{1,64}`` (HTTP 400)."""

    code = "invalid_tenant"
    http_status = 400


class UnknownTenant(TenantError):
    """A request addressed a tenant this server does not host (404)."""

    code = "unknown_tenant"
    http_status = 404

    def __init__(self, tenant: str, known: list[str]) -> None:
        super().__init__("unknown_tenant", tenant=tenant)
        self.known = known

    def fields(self) -> dict:
        fields = super().fields()
        fields["known"] = self.known
        return fields


class DuplicateTenant(TenantError):
    """An add named a tenant that already exists (HTTP 409)."""

    code = "tenant_exists"
    http_status = 409


class TenantAdminDisabled(TenantError):
    """``POST /api/tenants`` on a server without ``--tenant-admin``."""

    code = "tenant_admin_disabled"
    http_status = 403


def validate_tenant_name(name: str) -> str:
    """``name`` if legal, else :class:`InvalidTenantName`."""
    if not isinstance(name, str) or not TENANT_NAME_RE.fullmatch(name):
        raise InvalidTenantName(
            f"invalid tenant name {str(name)[:80]!r}:"
            " must match [a-z0-9_-]{1,64}",
            tenant=str(name)[:80],
        )
    return name


class Tenant:
    """One named corpus: holder, quota slice, and request counters."""

    def __init__(
        self,
        name: str,
        holder: DatabaseHolder,
        quota: int | None = None,
    ) -> None:
        self.name = name
        self.holder = holder
        #: Explicit concurrency slice; ``None`` means an equal share of
        #: the global capacity, recomputed as tenants come and go.
        self.quota = quota
        #: The slice gate; ``None`` for the sole default tenant of a
        #: single-tenant registry (pure global-gate behavior).
        self.slice_gate: AdmissionGate | None = None
        self._lock = threading.Lock()
        self.requests = 0

    def count_request(self) -> None:
        with self._lock:
            self.requests += 1

    @contextmanager
    def admission(self, global_gate: AdmissionGate):
        """Admit one request: tenant slice first, then the global gate.

        Slice-then-global (in that fixed order, so there is no lock
        cycle) means a tenant can hold at most ``slice.capacity`` global
        slots; when the configured slices partition the global capacity,
        one tenant's overload can never consume another tenant's share.
        An :class:`~repro.resilience.errors.Overloaded` raised by the
        slice carries ``site="tenant.<name>.admission"``.
        """
        gate = self.slice_gate
        if gate is None:
            with global_gate.slot():
                yield
            return
        with gate.slot():
            with global_gate.slot():
                yield

    def stats_block(self) -> dict:
        """The per-tenant entry of the ``tenants`` stats block."""
        from repro.server.reload import serving_element_count

        database, generation = self.holder.snapshot()
        source = self.holder.source
        block = {
            "generation": generation,
            "elements": serving_element_count(database),
            "requests": self.requests,
            "quota": self.quota,
            "source": source.kind if source is not None else None,
            "admission": (
                self.slice_gate.snapshot()
                if self.slice_gate is not None
                else None
            ),
        }
        writable = getattr(database, "writer", None)
        if writable is not None:
            block["writable"] = True
        return block


class TenantRegistry:
    """Thread-safe name → :class:`Tenant` map with quota rebalancing.

    Construct empty, :meth:`add` tenants (the first added becomes the
    default unless ``default=`` says otherwise), then hand the registry
    to a ``RequestPipeline`` — the pipeline calls :meth:`attach` with
    its server config so slices can be sized.  Tenants may also be added
    after attach (the ``lotusx tenant add`` admin path); slices
    rebalance on every membership change.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._tenants: dict[str, Tenant] = {}
        self._default_name: str | None = None
        #: Global limits the slices partition; set by :meth:`attach`.
        self._slice_basis: tuple[int, int, float, float] | None = None
        #: Whether ``POST /api/tenants`` may add tenants at runtime.
        self.admin_enabled = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def single(cls, holder: DatabaseHolder) -> TenantRegistry:
        """A registry wrapping one pre-built holder as the default
        tenant — the compatibility path for every existing single-corpus
        entry point.  No slice gate is created, so admission behavior
        (and every response byte) is unchanged."""
        registry = cls()
        tenant = Tenant(DEFAULT_TENANT, holder)
        registry._tenants[DEFAULT_TENANT] = tenant
        registry._default_name = DEFAULT_TENANT
        return registry

    def add(
        self,
        name: str,
        database=None,
        source: ReloadSource | None = None,
        holder: DatabaseHolder | None = None,
        quota: int | None = None,
        default: bool = False,
    ) -> Tenant:
        """Register ``name`` serving ``database`` (or a whole prepared
        ``holder``).  The first tenant added becomes the default."""
        validate_tenant_name(name)
        if quota is not None and quota < 1:
            raise ValueError("tenant quota must be at least 1")
        if holder is None:
            if database is None:
                raise ValueError("add() needs a database or a holder")
            holder = DatabaseHolder(database, source, label=name)
        elif holder.label is None:
            holder.label = name
            holder.current.tenant_label = name
        with self._lock:
            if name in self._tenants:
                raise DuplicateTenant(
                    f"tenant {name!r} already exists", tenant=name
                )
            tenant = Tenant(name, holder, quota=quota)
            self._tenants[name] = tenant
            if default or self._default_name is None:
                self._default_name = name
            self._rebalance()
            return tenant

    def attach(self, config) -> None:
        """Bind the server's limits so slices can be sized.

        ``config`` is the pipeline's ``ServerConfig``; only the four
        admission numbers are read, so tests may pass any object with
        those attributes.
        """
        with self._lock:
            self._slice_basis = (
                config.max_concurrency,
                config.max_queue,
                config.queue_timeout_s,
                config.retry_after_s,
            )
            self._rebalance()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Tenant:
        """The tenant called ``name``.

        Raises :class:`InvalidTenantName` or :class:`UnknownTenant` —
        the pipeline maps these to the structured 400/404 bodies.
        """
        validate_tenant_name(name)
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                raise UnknownTenant(name, sorted(self._tenants))
            return tenant

    @property
    def default(self) -> Tenant:
        with self._lock:
            if self._default_name is None:
                raise LookupError("registry has no tenants")
            return self._tenants[self._default_name]

    @property
    def default_name(self) -> str | None:
        with self._lock:
            return self._default_name

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self.tenants())

    @property
    def is_multi(self) -> bool:
        """More than one tenant (slices active, 429s name tenants)."""
        with self._lock:
            return len(self._tenants) > 1

    # ------------------------------------------------------------------
    # Quota slices
    # ------------------------------------------------------------------

    def _rebalance(self) -> None:
        """(Re)size every tenant's slice gate.  Caller holds the lock.

        Explicit quotas are honored verbatim; default-quota tenants
        split the global capacity evenly (floored at 1 slot each).  The
        sole default tenant of a single-tenant registry keeps *no* slice
        unless it has an explicit quota — that path must stay
        byte-identical to pre-tenant serving.
        """
        if self._slice_basis is None:
            return
        capacity, max_queue, queue_timeout_s, retry_after_s = self._slice_basis
        count = len(self._tenants)
        if count == 0:
            return
        share = max(1, capacity // count)
        queue_share = max(1, max_queue // count) if max_queue else 0
        for tenant in self._tenants.values():
            if tenant.quota is None and count == 1:
                continue  # single tenant, no explicit quota: global only
            slice_capacity = tenant.quota if tenant.quota is not None else share
            slice_queue = queue_share
            if tenant.slice_gate is None:
                tenant.slice_gate = AdmissionGate(
                    capacity=slice_capacity,
                    max_queue=slice_queue,
                    queue_timeout_s=queue_timeout_s,
                    retry_after_s=retry_after_s,
                    site=f"tenant.{tenant.name}.admission",
                )
            else:
                tenant.slice_gate.resize(slice_capacity, slice_queue)

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def stats_block(self) -> dict:
        """The ``tenants`` block of ``/api/stats``."""
        with self._lock:
            default = self._default_name
            tenants = dict(self._tenants)
        return {
            "default": default,
            "count": len(tenants),
            "by_name": {
                name: tenant.stats_block()
                for name, tenant in sorted(tenants.items())
            },
        }

    def listing(self) -> dict:
        """The ``GET /api/tenants`` body (also the CLI's data source)."""
        block = self.stats_block()
        return {
            "default": block["default"],
            "admin_enabled": self.admin_enabled,
            "tenants": [
                {"name": name, **tenant_block}
                for name, tenant_block in block["by_name"].items()
            ],
        }
