"""Label assignment: one pass that attaches every label to every element.

:func:`label_document` walks a parsed tree and produces a
:class:`LabeledDocument` in which every element carries

* a region label (``start``/``end``/``level``) — O(1) structural tests,
* a Dewey label — ancestor paths and LCAs,
* an extended Dewey label — tag-path decodable (TJFast-style),
* its DataGuide path node — position identity for completion/validation.

The DataGuide and child-tag tables are built in a first cheap pass (they
are needed *before* extended Dewey components can be computed), then labels
are assigned in a second preorder pass.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.labeling.dewey import Dewey
from repro.labeling.extended_dewey import (
    ExtendedDewey,
    ExtendedDeweyDecoder,
    ExtendedDeweyEncoder,
)
from repro.labeling.region import Region
from repro.summary.child_table import ChildTagTable
from repro.summary.dataguide import DataGuide, PathNode
from repro.xmlio.tree import Document, Element


class LabeledElement:
    """An element plus every label the engine needs.

    ``order`` is the element's preorder index (0-based, document order) and
    doubles as a dense id for side tables.
    """

    __slots__ = ("element", "order", "region", "dewey", "xdewey", "path_node", "parent")

    def __init__(
        self,
        element: Element,
        order: int,
        region: Region,
        dewey: Dewey,
        xdewey: ExtendedDewey,
        path_node: PathNode,
        parent: LabeledElement | None,
    ) -> None:
        self.element = element
        self.order = order
        self.region = region
        self.dewey = dewey
        self.xdewey = xdewey
        self.path_node = path_node
        self.parent = parent

    @property
    def tag(self) -> str:
        return self.element.tag

    @property
    def level(self) -> int:
        return self.region.level

    def is_ancestor_of(self, other: LabeledElement) -> bool:
        return self.region.is_ancestor_of(other.region)

    def is_parent_of(self, other: LabeledElement) -> bool:
        return self.region.is_parent_of(other.region)

    def __repr__(self) -> str:
        return f"LabeledElement({self.tag!r}, {self.region}, dewey={self.dewey})"


class LabeledDocument:
    """A document with labels assigned and per-tag streams materialized."""

    def __init__(
        self,
        document: Document,
        guide: DataGuide,
        child_table: ChildTagTable,
        elements: list[LabeledElement],
    ) -> None:
        self.document = document
        self.guide = guide
        self.child_table = child_table
        #: All labeled elements in document (preorder) order.
        self.elements = elements
        self._by_element_id = {id(le.element): le for le in elements}
        self._by_tag: dict[str, list[LabeledElement]] = {}
        for labeled in elements:
            self._by_tag.setdefault(labeled.tag, []).append(labeled)
        self.decoder = ExtendedDeweyDecoder(child_table, document.root.tag)

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    def __getstate__(self):
        # _by_element_id is keyed by id(), which is not stable across
        # processes; drop it (and the other derived tables) and rebuild.
        return (self.document, self.guide, self.child_table, self.elements)

    def __setstate__(self, state) -> None:
        self.__init__(*state)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def label_of(self, element: Element) -> LabeledElement:
        """The labels of ``element`` (must belong to this document)."""
        try:
            return self._by_element_id[id(element)]
        except KeyError:
            raise KeyError(f"element {element!r} is not part of this document") from None

    def stream(self, tag: str) -> list[LabeledElement]:
        """All elements with ``tag``, in document order (shared list —
        callers must not mutate)."""
        return self._by_tag.get(tag, [])

    def tags(self) -> set[str]:
        return set(self._by_tag)

    def __len__(self) -> int:
        return len(self.elements)

    def iter_elements(self) -> Iterator[LabeledElement]:
        return iter(self.elements)

    def __repr__(self) -> str:
        return f"LabeledDocument(elements={len(self.elements)}, paths={len(self.guide)})"


def label_document(document: Document) -> LabeledDocument:
    """Assign all labels to ``document`` and return the labeled view."""
    guide = DataGuide.from_document(document)
    child_table = ChildTagTable.from_dataguide(guide)
    encoder = ExtendedDeweyEncoder(child_table)

    elements: list[LabeledElement] = []
    counter = 0  # shared start/end counter for region labels

    root_path_node = guide.node_for_path((document.root.tag,))
    assert root_path_node is not None  # the guide was built from this document

    def walk(
        element: Element,
        level: int,
        dewey: Dewey,
        xdewey: ExtendedDewey,
        path_node: PathNode,
        parent: LabeledElement | None,
    ) -> LabeledElement:
        nonlocal counter
        start = counter
        counter += 1
        order = len(elements)
        # Region end is patched after the subtree is walked; reserve slot.
        elements.append(None)  # type: ignore[arg-type]

        previous_component = -1
        children: list[LabeledElement] = []
        placeholder_index = order
        labeled: LabeledElement | None = None

        child_ordinal = 0
        pending: list[tuple[Element, Dewey, ExtendedDewey, PathNode]] = []
        for child in element.child_elements():
            child_ordinal += 1
            component = encoder.component(element.tag, child.tag, previous_component)
            previous_component = component
            child_path = path_node.children[child.tag]
            pending.append(
                (
                    child,
                    dewey.child(child_ordinal),
                    ExtendedDewey(xdewey.components + (component,)),
                    child_path,
                )
            )

        # Create this element's record first (children need it as parent),
        # but its region end isn't known until the subtree completes; build
        # the record after walking children, then patch the reserved slot.
        for child, child_dewey, child_xdewey, child_path in pending:
            # Children are recorded inside the recursive call.
            children.append(
                walk(child, level + 1, child_dewey, child_xdewey, child_path, None)
            )

        end = counter
        counter += 1
        labeled = LabeledElement(
            element,
            placeholder_index,
            Region(start, end, level),
            dewey,
            xdewey,
            path_node,
            parent,
        )
        elements[placeholder_index] = labeled
        for child_labeled in children:
            child_labeled.parent = labeled
        return labeled

    walk(document.root, 0, Dewey(), ExtendedDewey(), root_path_node, None)
    return LabeledDocument(document, guide, child_table, elements)
