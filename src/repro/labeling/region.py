"""Region (containment) labels.

Each element receives a triple ``(start, end, level)`` from a single
preorder traversal: ``start`` is assigned when the element opens, ``end``
when it closes, from one shared counter.  The classical properties follow:

* ``a`` is an **ancestor** of ``d``  iff  ``a.start < d.start`` and
  ``d.end < a.end``;
* ``a`` is the **parent** of ``d``   iff  additionally
  ``a.level == d.level - 1``;
* ``a`` **precedes** ``b`` in document order  iff  ``a.start < b.start``;
* ``a`` is **entirely before** ``b`` (no containment)  iff
  ``a.end < b.start`` — the predicate order-sensitive twigs need.

These labels let every structural-join and holistic twig algorithm decide
element relationships in O(1) without touching the tree.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Region:
    """A containment label ``(start, end, level)``.

    Ordering compares ``start`` first, so sorting a list of regions yields
    document order.
    """

    start: int
    end: int
    level: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(f"region start must precede end: {self}")
        if self.level < 0:
            raise ValueError(f"region level must be non-negative: {self}")

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------

    def is_ancestor_of(self, other: Region) -> bool:
        """True if this element properly contains ``other``."""
        return self.start < other.start and other.end < self.end

    def is_parent_of(self, other: Region) -> bool:
        """True if this element is the parent of ``other``."""
        return self.is_ancestor_of(other) and self.level == other.level - 1

    def is_descendant_of(self, other: Region) -> bool:
        return other.is_ancestor_of(self)

    def is_child_of(self, other: Region) -> bool:
        return other.is_parent_of(self)

    def contains(self, other: Region) -> bool:
        """Reflexive containment: ancestor-or-self."""
        return self == other or self.is_ancestor_of(other)

    def precedes(self, other: Region) -> bool:
        """True if this element starts before ``other`` in document order."""
        return self.start < other.start

    def entirely_before(self, other: Region) -> bool:
        """True if this element closes before ``other`` opens.

        This is the *following* relation: no ancestor/descendant overlap.
        Order-sensitive twig matching uses it to check sibling order.
        """
        return self.end < other.start

    def overlaps(self, other: Region) -> bool:
        """True if one of the two regions contains the other."""
        return self.contains(other) or other.contains(self)

    def __str__(self) -> str:
        return f"[{self.start},{self.end}]@{self.level}"
