"""Region (containment) labels.

Each element receives a triple ``(start, end, level)`` from a single
preorder traversal: ``start`` is assigned when the element opens, ``end``
when it closes, from one shared counter.  The classical properties follow:

* ``a`` is an **ancestor** of ``d``  iff  ``a.start < d.start`` and
  ``d.end < a.end``;
* ``a`` is the **parent** of ``d``   iff  additionally
  ``a.level == d.level - 1``;
* ``a`` **precedes** ``b`` in document order  iff  ``a.start < b.start``;
* ``a`` is **entirely before** ``b`` (no containment)  iff
  ``a.end < b.start`` — the predicate order-sensitive twigs need.

These labels let every structural-join and holistic twig algorithm decide
element relationships in O(1) without touching the tree.

The module also hosts the **gap allocation** machinery the live write
path builds on: :class:`RegionAllocator` manages disjoint tick blocks
inside a (possibly bounded) tick space, and :func:`label_subtree_into_gap`
labels a fresh subtree into an unused gap between existing labels.  An
insert whose gap still has room gets valid labels without touching any
existing region; only when a gap is exhausted (:class:`GapExhausted`)
must the caller fall back to relabeling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Region:
    """A containment label ``(start, end, level)``.

    Ordering compares ``start`` first, so sorting a list of regions yields
    document order.
    """

    start: int
    end: int
    level: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(f"region start must precede end: {self}")
        if self.level < 0:
            raise ValueError(f"region level must be non-negative: {self}")

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------

    def is_ancestor_of(self, other: Region) -> bool:
        """True if this element properly contains ``other``."""
        return self.start < other.start and other.end < self.end

    def is_parent_of(self, other: Region) -> bool:
        """True if this element is the parent of ``other``."""
        return self.is_ancestor_of(other) and self.level == other.level - 1

    def is_descendant_of(self, other: Region) -> bool:
        return other.is_ancestor_of(self)

    def is_child_of(self, other: Region) -> bool:
        return other.is_parent_of(self)

    def contains(self, other: Region) -> bool:
        """Reflexive containment: ancestor-or-self."""
        return self == other or self.is_ancestor_of(other)

    def precedes(self, other: Region) -> bool:
        """True if this element starts before ``other`` in document order."""
        return self.start < other.start

    def entirely_before(self, other: Region) -> bool:
        """True if this element closes before ``other`` opens.

        This is the *following* relation: no ancestor/descendant overlap.
        Order-sensitive twig matching uses it to check sibling order.
        """
        return self.end < other.start

    def overlaps(self, other: Region) -> bool:
        """True if one of the two regions contains the other."""
        return self.contains(other) or other.contains(self)

    def __str__(self) -> str:
        return f"[{self.start},{self.end}]@{self.level}"


# ----------------------------------------------------------------------
# Gap allocation
# ----------------------------------------------------------------------


class GapExhausted(ValueError):
    """A requested label allocation does not fit in the available gap.

    The caller must fall back to relabeling (shifting every label after
    the insertion point); until this is raised, gap allocation guarantees
    that no existing region is ever touched.
    """


@dataclass
class TickBlock:
    """A contiguous run of label ticks owned by one allocation.

    ``base`` is the first tick of the block and ``width`` the number of
    ticks owned.  A subtree of ``n`` elements consumes exactly ``2 * n``
    ticks (one ``start`` and one ``end`` per element), so block widths
    are always even.
    """

    base: int
    width: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"block base must be non-negative: {self}")
        if self.width < 0 or self.width % 2:
            raise ValueError(f"block width must be even and >= 0: {self}")

    @property
    def limit(self) -> int:
        """One past the last tick of the block."""
        return self.base + self.width


class RegionAllocator:
    """Tracks disjoint, ordered tick blocks inside an exclusive interval.

    The allocator owns the open tick interval ``(lo, hi)`` — typically
    the inside of a root element's region, ``lo = root.start`` and
    ``hi = root.end`` — and hands out :class:`TickBlock` runs for
    subtrees inserted into it.  ``hi=None`` leaves the tail unbounded
    (an append-only allocator never exhausts).

    Blocks never overlap and never move: an allocation either fits in a
    gap as-is or raises :class:`GapExhausted`, so callers can rely on
    existing labels staying valid until an explicit relabel.
    """

    def __init__(self, lo: int = 0, hi: int | None = None) -> None:
        if hi is not None and hi <= lo:
            raise ValueError(f"empty tick interval ({lo}, {hi})")
        self.lo = lo
        self.hi = hi
        #: Allocated blocks, kept sorted by base.
        self.blocks: list[TickBlock] = []

    # -- capacity ------------------------------------------------------

    @property
    def high_water(self) -> int:
        """One past the highest allocated tick (``lo + 1`` when empty)."""
        return self.blocks[-1].limit if self.blocks else self.lo + 1

    def gap_after(self, block: TickBlock | None) -> int:
        """Free ticks between ``block`` (or the interval start) and the
        next block (or the interval end); unbounded gaps report a huge
        finite number."""
        index = -1 if block is None else self._index_of(block)
        left = self.lo + 1 if block is None else block.limit
        if index + 1 < len(self.blocks):
            right = self.blocks[index + 1].base
        elif self.hi is not None:
            right = self.hi
        else:
            return 1 << 62
        return max(0, right - left)

    # -- allocation ----------------------------------------------------

    def allocate(self, width: int, after: TickBlock | None = None) -> TickBlock:
        """Allocate ``width`` ticks in the gap following ``after``.

        ``after=None`` means the gap before the first block when one
        exists, otherwise the head of the interval.  With no ``after``
        given and existing blocks, common callers want the tail — use
        :meth:`allocate_tail`.  Raises :class:`GapExhausted` when the
        gap cannot hold ``width`` ticks.
        """
        if width <= 0 or width % 2:
            raise ValueError(f"allocation width must be even and > 0: {width}")
        if self.gap_after(after) < width:
            raise GapExhausted(
                f"gap after {after} holds {self.gap_after(after)} ticks,"
                f" need {width}"
            )
        base = self.lo + 1 if after is None else after.limit
        block = TickBlock(base, width)
        index = 0 if after is None else self._index_of(after) + 1
        self.blocks.insert(index, block)
        return block

    def allocate_tail(self, width: int) -> TickBlock:
        """Allocate ``width`` ticks after the last existing block."""
        return self.allocate(width, self.blocks[-1] if self.blocks else None)

    def release(self, block: TickBlock) -> None:
        """Return ``block``'s ticks to the free space (they become gap)."""
        self.blocks.pop(self._index_of(block))

    def resize(self, block: TickBlock, width: int) -> TickBlock:
        """Grow or shrink ``block`` in place.

        Growth consumes the gap immediately after the block and raises
        :class:`GapExhausted` when that gap is too small — existing
        neighbors are never moved.  Returns the resized block.
        """
        if width <= 0 or width % 2:
            raise ValueError(f"block width must be even and > 0: {width}")
        grow = width - block.width
        if grow > 0 and self.gap_after(block) < grow:
            raise GapExhausted(
                f"cannot grow {block} by {grow} ticks:"
                f" only {self.gap_after(block)} free after it"
            )
        block.width = width
        return block

    def _index_of(self, block: TickBlock) -> int:
        for index, candidate in enumerate(self.blocks):
            if candidate is block:
                return index
        raise ValueError(f"{block} is not owned by this allocator")

    def __repr__(self) -> str:
        return (
            f"RegionAllocator(lo={self.lo}, hi={self.hi},"
            f" blocks={len(self.blocks)})"
        )


def subtree_tick_width(element) -> int:
    """Ticks a subtree needs: two per element."""
    return 2 * sum(1 for _ in element.iter())


def label_subtree_into_gap(
    element, lo: int, hi: int | None, level: int
) -> list[tuple[object, Region]]:
    """Label ``element``'s subtree into the open tick interval ``(lo, hi)``.

    Assigns dense region labels starting at ``lo + 1``, exactly as the
    full labeler would if the subtree sat at that position, without
    touching any label outside the gap.  Returns ``(element, region)``
    pairs in preorder.  Raises :class:`GapExhausted` when the gap is too
    small (it needs ``2 * n`` ticks for an ``n``-element subtree).
    """
    need = subtree_tick_width(element)
    if hi is not None and hi - lo - 1 < need:
        raise GapExhausted(
            f"gap ({lo}, {hi}) holds {hi - lo - 1} ticks, need {need}"
        )
    labels: list[tuple[object, Region]] = []
    counter = lo + 1

    def walk(node, depth: int) -> None:
        nonlocal counter
        start = counter
        counter += 1
        slot = len(labels)
        labels.append(None)  # type: ignore[arg-type]
        for child in node.child_elements():
            walk(child, depth + 1)
        end = counter
        counter += 1
        labels[slot] = (node, Region(start, end, depth))

    walk(element, level)
    return labels
