"""Dewey (path) labels.

A Dewey label is the sequence of 1-based child ordinals from the root to an
element; the root's label is the empty sequence.  Unlike region labels,
Dewey labels expose the *entire ancestor path*: the parent label is a
prefix, the lowest common ancestor is the longest common prefix, and
lexicographic comparison yields document order.
"""

from __future__ import annotations

from functools import total_ordering


@total_ordering
class Dewey:
    """An immutable Dewey label.

    Components are 1-based ordinals among *element* siblings.  ``Dewey()``
    is the root label.
    """

    __slots__ = ("components",)

    def __init__(self, components: tuple[int, ...] = ()) -> None:
        if any(c < 1 for c in components):
            raise ValueError(f"Dewey components must be >= 1: {components}")
        object.__setattr__(self, "components", tuple(components))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Dewey labels are immutable")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> Dewey:
        """Parse ``"1.3.2"`` (or ``""`` for the root) into a label."""
        if not text:
            return cls()
        return cls(tuple(int(part) for part in text.split(".")))

    def child(self, ordinal: int) -> Dewey:
        """Label of this element's ``ordinal``-th (1-based) child."""
        return Dewey(self.components + (ordinal,))

    def parent(self) -> Dewey:
        """Label of the parent element.

        Raises
        ------
        ValueError
            If this is the root label.
        """
        if not self.components:
            raise ValueError("the root label has no parent")
        return Dewey(self.components[:-1])

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        """Depth below the root (the root is level 0)."""
        return len(self.components)

    def is_ancestor_of(self, other: Dewey) -> bool:
        """True if this label is a proper prefix of ``other``."""
        n = len(self.components)
        return n < len(other.components) and other.components[:n] == self.components

    def is_parent_of(self, other: Dewey) -> bool:
        return (
            len(self.components) + 1 == len(other.components)
            and other.components[:-1] == self.components
        )

    def is_descendant_of(self, other: Dewey) -> bool:
        return other.is_ancestor_of(self)

    def lca(self, other: Dewey) -> Dewey:
        """Lowest common ancestor: the longest common prefix."""
        prefix: list[int] = []
        for mine, theirs in zip(self.components, other.components):
            if mine != theirs:
                break
            prefix.append(mine)
        return Dewey(tuple(prefix))

    def sibling_ordinal(self) -> int:
        """1-based position among element siblings (0 for the root)."""
        if not self.components:
            return 0
        return self.components[-1]

    # ------------------------------------------------------------------
    # Ordering / identity
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dewey):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other: Dewey) -> bool:
        """Document order (an ancestor sorts before its descendants)."""
        return self.components < other.components

    def __hash__(self) -> int:
        return hash(self.components)

    def __reduce__(self):
        # The immutability guard (__setattr__ raises) breaks pickle's
        # default slot-state protocol; reconstruct through __init__.
        return (Dewey, (self.components,))

    def __repr__(self) -> str:
        return f"Dewey({self.components!r})"

    def __str__(self) -> str:
        return ".".join(str(c) for c in self.components)
