"""Position labels: region encoding, Dewey, and extended Dewey.

Labels give every structural question an O(1) answer:

* region labels decide ancestor/parent/order relations between any two
  elements without touching the tree;
* Dewey labels expose the full ancestor path and LCAs;
* extended Dewey labels additionally encode the *tag path*, so the path to
  a leaf can be recovered from the label alone (TJFast).

:func:`label_document` assigns all three in one traversal.
"""

from repro.labeling.assign import LabeledDocument, LabeledElement, label_document
from repro.labeling.dewey import Dewey
from repro.labeling.extended_dewey import (
    ExtendedDewey,
    ExtendedDeweyDecoder,
    ExtendedDeweyEncoder,
)
from repro.labeling.region import Region

__all__ = [
    "Dewey",
    "ExtendedDewey",
    "ExtendedDeweyDecoder",
    "ExtendedDeweyEncoder",
    "LabeledDocument",
    "LabeledElement",
    "Region",
    "label_document",
]
