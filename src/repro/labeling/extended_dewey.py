"""Extended Dewey labels (the TJFast labeling scheme).

An extended Dewey label is a Dewey-like component sequence in which each
component *also encodes the element's tag*, so that the full root-to-node
tag path can be recovered from the label plus the per-tag child tables —
without touching the document.  This is what lets leaf-driven twig matching
(TJFast) evaluate entire path constraints from leaf streams alone.

Encoding (following Lu et al., "From Region Encoding to Extended Dewey"):
let the parent element's tag be ``u`` with ``n = len(CT(u))`` distinct child
tags, and let the child being labeled have the ``k``-th tag of ``CT(u)``.
The child's final label component is the smallest integer ``x`` such that

* ``x > previous sibling's component`` (preserving document order), and
* ``x mod n == k`` (encoding the tag).

Decoding walks the label from the root tag, mapping each component back to
a tag via ``CT``.
"""

from __future__ import annotations

from functools import total_ordering

from repro.summary.child_table import ChildTagTable
from repro.summary.paths import Path


@total_ordering
class ExtendedDewey:
    """An immutable extended Dewey label (root label is empty)."""

    __slots__ = ("components",)

    def __init__(self, components: tuple[int, ...] = ()) -> None:
        if any(c < 0 for c in components):
            raise ValueError(f"components must be non-negative: {components}")
        object.__setattr__(self, "components", tuple(components))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ExtendedDewey labels are immutable")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        return len(self.components)

    def parent(self) -> ExtendedDewey:
        if not self.components:
            raise ValueError("the root label has no parent")
        return ExtendedDewey(self.components[:-1])

    def is_ancestor_of(self, other: ExtendedDewey) -> bool:
        n = len(self.components)
        return n < len(other.components) and other.components[:n] == self.components

    def is_parent_of(self, other: ExtendedDewey) -> bool:
        return (
            len(self.components) + 1 == len(other.components)
            and other.components[:-1] == self.components
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedDewey):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other: ExtendedDewey) -> bool:
        """Document order — valid because components increase across
        siblings by construction."""
        return self.components < other.components

    def __hash__(self) -> int:
        return hash(self.components)

    def __reduce__(self):
        # The immutability guard (__setattr__ raises) breaks pickle's
        # default slot-state protocol; reconstruct through __init__.
        return (ExtendedDewey, (self.components,))

    def __repr__(self) -> str:
        return f"ExtendedDewey({self.components!r})"

    def __str__(self) -> str:
        return ".".join(str(c) for c in self.components)


class ExtendedDeweyEncoder:
    """Assigns extended Dewey components during a document traversal.

    One encoder instance is used per document pass; it keeps, for the
    element currently being labeled, only the previous sibling's component
    (callers thread it through the traversal).
    """

    def __init__(self, child_table: ChildTagTable) -> None:
        self._child_table = child_table

    def component(self, parent_tag: str, child_tag: str, previous: int) -> int:
        """Component for a child of ``parent_tag`` with tag ``child_tag``.

        Parameters
        ----------
        previous:
            The component assigned to the immediately preceding element
            sibling, or ``-1`` for the first child.
        """
        n = self._child_table.fanout(parent_tag)
        if n == 0:
            raise KeyError(f"tag {parent_tag!r} has no child table entry")
        k = self._child_table.tag_index(parent_tag, child_tag)
        base = previous + 1
        return base + ((k - base) % n)


class ExtendedDeweyDecoder:
    """Recovers tag paths from extended Dewey labels."""

    def __init__(self, child_table: ChildTagTable, root_tag: str) -> None:
        self._child_table = child_table
        self._root_tag = root_tag

    def decode(self, label: ExtendedDewey) -> Path:
        """Return the root-to-node tag path encoded by ``label``.

        Raises
        ------
        ValueError
            If a component is inconsistent with the child tables.
        """
        tags = [self._root_tag]
        current = self._root_tag
        for component in label.components:
            child_tags = self._child_table.child_tags(current)
            if not child_tags:
                raise ValueError(
                    f"label {label} descends below leaf tag {current!r}"
                )
            current = child_tags[component % len(child_tags)]
            tags.append(current)
        return tuple(tags)

    def tag_of(self, label: ExtendedDewey) -> str:
        """The element's own tag (last step of the decoded path)."""
        return self.decode(label)[-1]
