"""Synthetic XMark-like auction-site generator.

XMark is the standard deep/recursive XML benchmark; the twig-algorithm
experiments (E4/E5) need its nesting — regions → items, people with
nested profiles, auctions with repeated bidders — because deep
ancestor-descendant twigs are where holistic joins shine.

The generator follows the XMark schema skeleton (site / regions / people /
open_auctions / closed_auctions / categories) scaled by an ``items``
parameter, deterministically from a seed.
"""

from __future__ import annotations

import random

from repro.datasets.words import (
    CATEGORY_NAMES,
    CITIES,
    COUNTRIES,
    INTERESTS,
    STREETS,
    person_name,
    sentence,
    title_phrase,
)
from repro.xmlio.tree import Document, Element

_REGIONS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]


def generate_xmark(items: int = 100, seed: int = 7) -> Document:
    """An XMark-like document with ``items`` items.

    People scale at ``items // 2 + 5``, open auctions at ``items // 2``,
    closed auctions at ``items // 4``.  The resulting element count is
    roughly ``18 × items``.
    """
    if items < 0:
        raise ValueError("items must be non-negative")
    rng = random.Random(seed)
    root = Element("site")

    people_count = items // 2 + 5
    open_count = items // 2
    closed_count = items // 4

    regions = root.make_child("regions")
    region_elements = {name: regions.make_child(name) for name in _REGIONS}
    for index in range(items):
        region = region_elements[rng.choice(_REGIONS)]
        _make_item(region, index, rng)

    people = root.make_child("people")
    for index in range(people_count):
        _make_person(people, index, rng)

    open_auctions = root.make_child("open_auctions")
    for index in range(open_count):
        _make_open_auction(open_auctions, index, items, people_count, rng)

    closed_auctions = root.make_child("closed_auctions")
    for index in range(closed_count):
        _make_closed_auction(closed_auctions, index, items, people_count, rng)

    categories = root.make_child("categories")
    for index, name in enumerate(CATEGORY_NAMES):
        category = categories.make_child("category", {"id": f"category{index}"})
        category.make_child("name").append_text(name)
        description = category.make_child("description")
        description.make_child("text").append_text(sentence(rng))

    return Document(root, source_name=f"synthetic-xmark-{items}-{seed}")


def generate_xmark_xml(items: int = 100, seed: int = 7) -> str:
    """Like :func:`generate_xmark` but rendered to XML text."""
    from repro.xmlio.serializer import serialize

    return serialize(generate_xmark(items, seed))


def _make_item(region: Element, index: int, rng: random.Random) -> None:
    item = region.make_child("item", {"id": f"item{index}"})
    item.make_child("location").append_text(rng.choice(COUNTRIES))
    item.make_child("name").append_text(title_phrase(rng, 2, 4))
    item.make_child("quantity").append_text(str(rng.randint(1, 10)))
    payment = item.make_child("payment")
    payment.append_text(rng.choice(["cash", "creditcard", "money order"]))
    description = item.make_child("description")
    description.make_child("text").append_text(sentence(rng))
    if rng.random() < 0.4:
        # Nested parlist gives the deep recursive structure twig
        # experiments rely on.
        parlist = description.make_child("parlist")
        for _ in range(rng.randint(1, 3)):
            listitem = parlist.make_child("listitem")
            listitem.make_child("text").append_text(sentence(rng, 3, 8))
    item.make_child("incategory", {"category": f"category{rng.randrange(len(CATEGORY_NAMES))}"})


def _make_person(people: Element, index: int, rng: random.Random) -> None:
    person = people.make_child("person", {"id": f"person{index}"})
    person.make_child("name").append_text(person_name(rng))
    person.make_child("emailaddress").append_text(f"mailto:user{index}@example.org")
    if rng.random() < 0.7:
        address = person.make_child("address")
        address.make_child("street").append_text(
            f"{rng.randint(1, 99)} {rng.choice(STREETS)}"
        )
        address.make_child("city").append_text(rng.choice(CITIES))
        address.make_child("country").append_text(rng.choice(COUNTRIES))
    if rng.random() < 0.6:
        profile = person.make_child("profile")
        profile.make_child("education").append_text(
            rng.choice(["high school", "college", "graduate school"])
        )
        profile.make_child("business").append_text(rng.choice(["yes", "no"]))
        for _ in range(rng.randint(0, 3)):
            profile.make_child(
                "interest", {"category": rng.choice(INTERESTS)}
            )


def _make_open_auction(
    auctions: Element, index: int, items: int, people: int, rng: random.Random
) -> None:
    auction = auctions.make_child("open_auction", {"id": f"open_auction{index}"})
    auction.make_child("initial").append_text(f"{rng.uniform(1, 200):.2f}")
    for _ in range(rng.randint(0, 4)):
        bidder = auction.make_child("bidder")
        bidder.make_child("date").append_text(_date(rng))
        bidder.make_child("personref", {"person": f"person{rng.randrange(max(1, people))}"})
        bidder.make_child("increase").append_text(f"{rng.uniform(1, 50):.2f}")
    auction.make_child("current").append_text(f"{rng.uniform(1, 500):.2f}")
    auction.make_child("itemref", {"item": f"item{rng.randrange(max(1, items))}"})
    auction.make_child("seller", {"person": f"person{rng.randrange(max(1, people))}"})
    annotation = auction.make_child("annotation")
    annotation.make_child("description").make_child("text").append_text(
        sentence(rng, 4, 10)
    )


def _make_closed_auction(
    auctions: Element, index: int, items: int, people: int, rng: random.Random
) -> None:
    auction = auctions.make_child("closed_auction")
    auction.make_child("seller", {"person": f"person{rng.randrange(max(1, people))}"})
    auction.make_child("buyer", {"person": f"person{rng.randrange(max(1, people))}"})
    auction.make_child("itemref", {"item": f"item{rng.randrange(max(1, items))}"})
    auction.make_child("price").append_text(f"{rng.uniform(1, 500):.2f}")
    auction.make_child("date").append_text(_date(rng))


def _date(rng: random.Random) -> str:
    return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1998, 2012)}"
