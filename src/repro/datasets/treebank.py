"""Synthetic Treebank-like generator: deep, recursive parse trees.

Treebank is the classical *deep recursion* XML benchmark: the same tags
(``NP`` inside ``NP`` inside ``VP`` …) nest to large depths, which is
exactly where stack-based twig algorithms earn their keep and where
DataGuides grow large.  This generator produces parse-tree-shaped
documents from a small phrase grammar, deterministically from a seed.
"""

from __future__ import annotations

import random

from repro.xmlio.tree import Document, Element

#: Phrase grammar: tag -> possible child-tag sequences (weights implicit
#: in repetition).  "WORD" is a terminal producing leaf text.
_GRAMMAR: dict[str, list[list[str]]] = {
    "S": [["NP", "VP"], ["S", "CC", "S"], ["VP"], ["NP", "VP", "PP"]],
    "NP": [["DT", "NN"], ["NP", "PP"], ["DT", "JJ", "NN"], ["NN"], ["NP", "CC", "NP"]],
    "VP": [["VB", "NP"], ["VB"], ["VP", "PP"], ["VB", "NP", "PP"]],
    "PP": [["IN", "NP"]],
}

_TERMINALS: dict[str, list[str]] = {
    "DT": ["the", "a", "every", "some"],
    "NN": ["parser", "tree", "query", "label", "stack", "index", "pattern"],
    "JJ": ["deep", "holistic", "recursive", "small", "ordered"],
    "VB": ["matches", "builds", "scans", "joins", "ranks"],
    "IN": ["of", "over", "under", "with"],
    "CC": ["and", "or"],
}


def generate_treebank(
    sentences: int = 50, seed: int = 17, max_depth: int = 12
) -> Document:
    """A ``<treebank>`` of ``sentences`` parse trees.

    ``max_depth`` bounds recursion (beyond it, only terminal expansions
    are chosen).  Deterministic in ``(sentences, seed, max_depth)``.
    """
    if sentences < 0:
        raise ValueError("sentences must be non-negative")
    rng = random.Random(seed)
    root = Element("treebank")
    for index in range(sentences):
        sentence = root.make_child("sentence", {"id": f"s{index}"})
        _expand(sentence.make_child("S"), rng, depth=1, max_depth=max_depth)
    return Document(
        root, source_name=f"synthetic-treebank-{sentences}-{seed}"
    )


def generate_treebank_xml(
    sentences: int = 50, seed: int = 17, max_depth: int = 12
) -> str:
    """Like :func:`generate_treebank` but rendered to XML text."""
    from repro.xmlio.serializer import serialize

    return serialize(generate_treebank(sentences, seed, max_depth))


def _expand(
    node: Element, rng: random.Random, depth: int, max_depth: int
) -> None:
    tag = node.tag
    if tag in _TERMINALS:
        node.append_text(rng.choice(_TERMINALS[tag]))
        return
    productions = _GRAMMAR[tag]
    if depth >= max_depth:
        # Prefer the shallowest production: the one with the fewest
        # non-terminal children.
        productions = [
            min(
                productions,
                key=lambda production: sum(
                    1 for child in production if child in _GRAMMAR
                ),
            )
        ]
    for child_tag in rng.choice(productions):
        _expand(node.make_child(child_tag), rng, depth + 1, max_depth)
