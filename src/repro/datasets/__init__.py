"""Seeded synthetic dataset generators (DBLP-like, XMark-like, bookstore).

Substitutes for the paper's real corpora — see the substitution table in
DESIGN.md.  Everything is deterministic in ``(size, seed)``.
"""

from repro.datasets.books import generate_books, generate_books_xml
from repro.datasets.dblp import generate_dblp, generate_dblp_xml
from repro.datasets.treebank import generate_treebank, generate_treebank_xml
from repro.datasets.xmark import generate_xmark, generate_xmark_xml

__all__ = [
    "generate_books",
    "generate_books_xml",
    "generate_dblp",
    "generate_dblp_xml",
    "generate_treebank",
    "generate_treebank_xml",
    "generate_xmark",
    "generate_xmark_xml",
]
