"""Synthetic DBLP-like bibliography generator.

The paper's demo indexes DBLP; this generator produces a corpus with the
same schema shape — a flat ``<dblp>`` root holding ``article`` /
``inproceedings`` / ``book`` / ``phdthesis`` records with the familiar
child fields — at any requested size, deterministically from a seed.

Completion/matching/ranking behaviour depends on schema shape and term
distributions, both of which this generator mimics (names are Zipf-ish:
a small author pool reused across records, so value completion has
meaningful frequencies).
"""

from __future__ import annotations

import random

from repro.datasets.words import (
    CONFERENCES,
    JOURNALS,
    PUBLISHERS,
    SCHOOLS,
    person_name,
    title_phrase,
)
from repro.xmlio.tree import Document, Element

#: Relative frequency of each publication type (mirrors DBLP's skew).
_TYPE_WEIGHTS = [
    ("article", 45),
    ("inproceedings", 40),
    ("book", 8),
    ("phdthesis", 7),
]


def generate_dblp(publications: int = 1000, seed: int = 42) -> Document:
    """A DBLP-like document with ``publications`` records.

    Deterministic in ``(publications, seed)``.  The resulting element
    count is roughly ``7 × publications``.
    """
    if publications < 0:
        raise ValueError("publications must be non-negative")
    rng = random.Random(seed)
    # A bounded author pool so names repeat across publications.
    pool_size = max(10, publications // 3)
    author_pool = [person_name(rng) for _ in range(pool_size)]

    root = Element("dblp")
    types = [name for name, weight in _TYPE_WEIGHTS for _ in range(weight)]
    for index in range(publications):
        kind = rng.choice(types)
        record = root.make_child(kind, {"key": f"{kind}/{index}"})
        _fill_record(record, kind, rng, author_pool)
    return Document(root, source_name=f"synthetic-dblp-{publications}-{seed}")


def generate_dblp_xml(publications: int = 1000, seed: int = 42) -> str:
    """Like :func:`generate_dblp` but rendered to XML text."""
    from repro.xmlio.serializer import serialize

    return serialize(generate_dblp(publications, seed))


def _fill_record(
    record: Element, kind: str, rng: random.Random, author_pool: list[str]
) -> None:
    record.make_child("title").append_text(title_phrase(rng))
    for _ in range(rng.randint(1, 4)):
        field = "editor" if kind == "book" and rng.random() < 0.3 else "author"
        record.make_child(field).append_text(rng.choice(author_pool))
    record.make_child("year").append_text(str(rng.randint(1990, 2012)))
    if kind == "article":
        record.make_child("journal").append_text(rng.choice(JOURNALS))
        record.make_child("volume").append_text(str(rng.randint(1, 40)))
        _maybe_pages(record, rng)
    elif kind == "inproceedings":
        record.make_child("booktitle").append_text(rng.choice(CONFERENCES))
        _maybe_pages(record, rng)
    elif kind == "book":
        record.make_child("publisher").append_text(rng.choice(PUBLISHERS))
        record.make_child("isbn").append_text(
            "-".join(str(rng.randint(100, 999)) for _ in range(3))
        )
    elif kind == "phdthesis":
        record.make_child("school").append_text(rng.choice(SCHOOLS))


def _maybe_pages(record: Element, rng: random.Random) -> None:
    if rng.random() < 0.8:
        start = rng.randint(1, 400)
        record.make_child("pages").append_text(f"{start}-{start + rng.randint(5, 30)}")
