"""Deterministic word pools for the synthetic dataset generators.

The pools are fixed lists (no randomness here); generators draw from them
with seeded RNGs so every dataset is reproducible byte-for-byte.
"""

from __future__ import annotations

import random

FIRST_NAMES = [
    "wei", "jing", "ana", "maria", "john", "david", "yuki", "sofia", "ivan",
    "elena", "omar", "fatima", "liam", "noah", "emma", "olivia", "lucas",
    "mia", "arjun", "priya", "chen", "hana", "kofi", "amara", "diego",
    "lucia", "marco", "nina", "pavel", "tanya", "erik", "astrid", "jean",
    "claire", "hugo", "ines", "tom", "kate", "sam", "ruth",
]

LAST_NAMES = [
    "lu", "lin", "ling", "cautis", "smith", "johnson", "garcia", "müller",
    "tanaka", "kim", "chen", "wang", "silva", "kumar", "patel", "ivanov",
    "novak", "kowalski", "haddad", "okafor", "nguyen", "tran", "hansen",
    "berg", "dubois", "moreau", "rossi", "ferrari", "lopez", "diaz",
    "brown", "wilson", "taylor", "white", "martin", "hall", "young",
    "walker", "wright", "scott",
]

TOPIC_WORDS = [
    "xml", "twig", "query", "holistic", "join", "pattern", "matching",
    "index", "labeling", "dewey", "region", "keyword", "search", "ranking",
    "completion", "graphical", "interface", "streaming", "database",
    "schema", "dataguide", "semantics", "optimization", "algorithm",
    "structural", "relaxation", "rewriting", "position", "aware",
    "efficient", "scalable", "adaptive", "distributed", "probabilistic",
    "temporal", "spatial", "graph", "tree", "path", "document",
]

FILLER_WORDS = [
    "system", "approach", "framework", "study", "analysis", "evaluation",
    "model", "method", "technique", "survey", "processing", "management",
    "integration", "exploration", "discovery", "estimation", "selection",
    "generation", "compression", "summarization",
]

JOURNALS = [
    "tods", "vldbj", "tkde", "sigmod record", "information systems",
    "jacm", "dke", "is journal", "acm computing surveys", "pvldb",
]

CONFERENCES = [
    "icde", "sigmod", "vldb", "edbt", "cikm", "www", "kdd", "sigir",
    "dasfaa", "xsym",
]

PUBLISHERS = [
    "springer", "acm press", "morgan kaufmann", "ieee press", "elsevier",
    "mit press", "cambridge", "oxford", "wiley", "oreilly",
]

SCHOOLS = [
    "renmin university", "national university of singapore", "mit",
    "stanford", "tsinghua", "eth zurich", "cmu", "berkeley", "oxford",
    "waterloo",
]

CITIES = [
    "beijing", "singapore", "paris", "berlin", "tokyo", "seoul", "madrid",
    "rome", "london", "boston", "seattle", "sydney", "toronto", "mumbai",
    "lagos", "cairo", "lima", "oslo", "prague", "vienna",
]

COUNTRIES = [
    "china", "singapore", "france", "germany", "japan", "korea", "spain",
    "italy", "uk", "usa", "australia", "canada", "india", "nigeria",
    "egypt", "peru", "norway", "czechia", "austria", "brazil",
]

STREETS = [
    "main st", "oak ave", "maple rd", "pine ln", "cedar blvd", "elm dr",
    "river way", "hill ct", "lake view", "park pl",
]

CATEGORY_NAMES = [
    "books", "electronics", "music", "art", "antiques", "sports", "toys",
    "garden", "jewelry", "stamps", "coins", "maps", "instruments",
    "photography", "furniture",
]

INTERESTS = CATEGORY_NAMES

GENRES = [
    "fantasy", "mystery", "romance", "science fiction", "history",
    "biography", "poetry", "thriller", "horror", "travel",
]


def person_name(rng: random.Random) -> str:
    """A full name like ``"jiaheng lu"``."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def title_phrase(rng: random.Random, min_words: int = 3, max_words: int = 7) -> str:
    """A publication-title-like phrase from topic + filler words."""
    length = rng.randint(min_words, max_words)
    words = [rng.choice(TOPIC_WORDS) for _ in range(max(1, length - 1))]
    words.append(rng.choice(FILLER_WORDS))
    return " ".join(words)


def sentence(rng: random.Random, min_words: int = 6, max_words: int = 18) -> str:
    """A prose-like sentence (for descriptions and abstracts)."""
    length = rng.randint(min_words, max_words)
    pool = TOPIC_WORDS + FILLER_WORDS
    return " ".join(rng.choice(pool) for _ in range(length))
