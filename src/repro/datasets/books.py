"""A small bookstore corpus for quickstarts, docs, and unit tests."""

from __future__ import annotations

import random

from repro.datasets.words import GENRES, person_name, sentence, title_phrase
from repro.xmlio.tree import Document, Element


def generate_books(books: int = 50, seed: int = 3) -> Document:
    """A ``catalog`` of ``books`` book records, deterministic in the seed."""
    if books < 0:
        raise ValueError("books must be non-negative")
    rng = random.Random(seed)
    author_pool = [person_name(rng) for _ in range(max(5, books // 4))]
    root = Element("catalog")
    for index in range(books):
        book = root.make_child("book", {"id": f"bk{index:03d}"})
        book.make_child("title").append_text(title_phrase(rng, 2, 5))
        for _ in range(rng.randint(1, 3)):
            book.make_child("author").append_text(rng.choice(author_pool))
        book.make_child("genre").append_text(rng.choice(GENRES))
        book.make_child("price").append_text(f"{rng.uniform(5, 80):.2f}")
        book.make_child("publish_date").append_text(
            f"{rng.randint(1995, 2012)}-{rng.randint(1, 12):02d}-01"
        )
        book.make_child("description").append_text(sentence(rng))
    return Document(root, source_name=f"synthetic-books-{books}-{seed}")


def generate_books_xml(books: int = 50, seed: int = 3) -> str:
    """Like :func:`generate_books` but rendered to XML text."""
    from repro.xmlio.serializer import serialize

    return serialize(generate_books(books, seed))
