"""Inverted term index over element text.

Indexes the *direct* text of every element, keyed by normalized token.
Because elements are numbered in preorder, each element's subtree is a
contiguous range of element orders, so "does this subtree contain term t"
is a binary search over t's posting list — no tree walk.

Posting lists are stored as parallel arrays (orders, term frequencies) in
document order so that subtree-range probes bisect the order array
directly.  The index also maintains a value view (normalized full text
strings, for equality predicates and value completion) and a numeric view
(for range predicates like ``year < 2000``).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections.abc import Iterable
from dataclasses import dataclass

from repro.index.text import completion_value, normalize, tokenize
from repro.labeling.assign import LabeledDocument, LabeledElement


@dataclass(frozen=True, slots=True)
class Posting:
    """One (element, term-frequency) pair; ``order`` is the element's
    preorder index."""

    order: int
    tf: int


class _PostingList:
    """Document-ordered postings as parallel arrays."""

    __slots__ = ("orders", "tfs")

    def __init__(self) -> None:
        self.orders: list[int] = []
        self.tfs: list[int] = []

    def append(self, order: int, tf: int) -> None:
        self.orders.append(order)
        self.tfs.append(tf)

    def __len__(self) -> int:
        return len(self.orders)

    def slice(self, low: int, high: int) -> list[Posting]:
        """Postings with ``low <= order < high``."""
        start = bisect_left(self.orders, low)
        stop = bisect_right(self.orders, high - 1)
        return [
            Posting(self.orders[i], self.tfs[i]) for i in range(start, stop)
        ]

    def any_in(self, low: int, high: int) -> bool:
        index = bisect_left(self.orders, low)
        return index < len(self.orders) and self.orders[index] < high

    def sum_tf(self, low: int, high: int) -> int:
        start = bisect_left(self.orders, low)
        stop = bisect_right(self.orders, high - 1)
        return sum(self.tfs[start:stop])


_EMPTY = _PostingList()


class TermIndex:
    """Inverted index of direct-text tokens, values, and numbers."""

    def __init__(self, labeled: LabeledDocument) -> None:
        self._labeled = labeled
        self._postings: dict[str, _PostingList] = {}
        self._value_postings: dict[str, list[int]] = {}
        self._numeric: dict[int, float] = {}
        self._token_counts: dict[int, int] = {}
        self._subtree_end: list[int] = []
        self._total_tokens = 0
        self._build()

    def _build(self) -> None:
        for labeled_element in self._labeled.elements:
            region = labeled_element.region
            # Each descendant consumes two counter ticks, so the subtree
            # size (self included) is (end - start + 1) // 2.
            subtree_size = (region.end - region.start + 1) // 2
            self._subtree_end.append(labeled_element.order + subtree_size)

            text = labeled_element.element.direct_text
            if not text.strip():
                continue
            tokens = tokenize(text)
            if tokens:
                self._token_counts[labeled_element.order] = len(tokens)
                self._total_tokens += len(tokens)
                frequencies: dict[str, int] = {}
                for token in tokens:
                    frequencies[token] = frequencies.get(token, 0) + 1
                for token, tf in sorted(frequencies.items()):
                    self._postings.setdefault(token, _PostingList()).append(
                        labeled_element.order, tf
                    )
            value = completion_value(text)
            if value is not None:
                self._value_postings.setdefault(value, []).append(
                    labeled_element.order
                )
            number = _parse_number(text)
            if number is not None:
                self._numeric[labeled_element.order] = number

    # ------------------------------------------------------------------
    # Term lookup
    # ------------------------------------------------------------------

    def postings(self, term: str) -> list[Posting]:
        """Posting list for ``term`` (document order); empty if absent."""
        plist = self._postings.get(term.lower(), _EMPTY)
        return [Posting(order, tf) for order, tf in zip(plist.orders, plist.tfs)]

    def document_frequency(self, term: str) -> int:
        """Number of elements whose direct text contains ``term``."""
        return len(self._postings.get(term.lower(), _EMPTY))

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        n = max(1, len(self._token_counts))
        df = self.document_frequency(term)
        return math.log(1.0 + n / (1.0 + df))

    def vocabulary(self) -> Iterable[str]:
        return self._postings.keys()

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    @property
    def text_element_count(self) -> int:
        """Number of elements carrying any direct text tokens."""
        return len(self._token_counts)

    def token_count(self, order: int) -> int:
        """Token length of an element's direct text (0 if none)."""
        return self._token_counts.get(order, 0)

    # ------------------------------------------------------------------
    # Subtree containment
    # ------------------------------------------------------------------

    def subtree_order_range(self, element: LabeledElement) -> tuple[int, int]:
        """Half-open preorder range covering ``element`` and its subtree."""
        return element.order, self._subtree_end[element.order]

    def subtree_postings(self, element: LabeledElement, term: str) -> list[Posting]:
        """Postings of ``term`` that fall inside ``element``'s subtree."""
        low, high = self.subtree_order_range(element)
        return self._postings.get(term.lower(), _EMPTY).slice(low, high)

    def subtree_term_frequency(self, element: LabeledElement, term: str) -> int:
        """Total occurrences of ``term`` in ``element``'s subtree text."""
        low, high = self.subtree_order_range(element)
        return self._postings.get(term.lower(), _EMPTY).sum_tf(low, high)

    def subtree_contains(self, element: LabeledElement, term: str) -> bool:
        """True if ``term`` occurs anywhere in ``element``'s subtree."""
        low, high = self.subtree_order_range(element)
        return self._postings.get(term.lower(), _EMPTY).any_in(low, high)

    def subtree_contains_all(
        self, element: LabeledElement, terms: Iterable[str]
    ) -> bool:
        """True if *every* term occurs in ``element``'s subtree."""
        return all(self.subtree_contains(element, term) for term in terms)

    # ------------------------------------------------------------------
    # Value and numeric lookup
    # ------------------------------------------------------------------

    def elements_with_value(self, value: str) -> list[int]:
        """Preorder indexes of elements whose normalized direct text equals
        ``value`` exactly."""
        return list(self._value_postings.get(normalize(value), ()))

    def has_value(self, element: LabeledElement, value: str) -> bool:
        orders = self._value_postings.get(normalize(value))
        if not orders:
            return False
        low = bisect_left(orders, element.order)
        return low < len(orders) and orders[low] == element.order

    def numeric_value(self, element: LabeledElement) -> float | None:
        """The element's direct text as a number, if it parses as one."""
        return self._numeric.get(element.order)

    def values(self) -> Iterable[str]:
        """All distinct normalized values (for completion indexes)."""
        return self._value_postings.keys()

    def value_count(self, value: str) -> int:
        return len(self._value_postings.get(normalize(value), ()))


def _parse_number(text: str) -> float | None:
    stripped = text.strip()
    if not stripped:
        return None
    try:
        return float(stripped)
    except ValueError:
        return None
