"""Index layer: tries, inverted term index, tag streams, completion tries.

Everything the query-time components (autocompletion, twig matching,
ranking) read is built here, in one pass over a labeled document.
"""

from repro.index.completion_index import CompletionIndex
from repro.index.element_index import ElementFilter, StreamCursor, StreamFactory
from repro.index.statistics import CorpusStatistics, compute_statistics
from repro.index.term_index import Posting, TermIndex
from repro.index.text import (
    MAX_VALUE_LENGTH,
    STOPWORDS,
    completion_value,
    normalize,
    tokenize,
)
from repro.index.trie import Trie

__all__ = [
    "MAX_VALUE_LENGTH",
    "STOPWORDS",
    "CompletionIndex",
    "CorpusStatistics",
    "ElementFilter",
    "Posting",
    "StreamCursor",
    "StreamFactory",
    "TermIndex",
    "Trie",
    "completion_value",
    "compute_statistics",
    "normalize",
    "tokenize",
]
