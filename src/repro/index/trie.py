"""A weighted trie with top-k prefix completion.

Every inserted key carries a non-negative weight (occurrence count).  Each
trie node caches the *maximum* weight in its subtree, which lets
:meth:`Trie.complete` run a best-first search that touches only the
branches that can still contribute to the top-k — the property that keeps
LotusX completions "on-the-fly" even on large vocabularies.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator


class _TrieNode:
    __slots__ = ("children", "weight", "best")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.weight = 0  # weight of the key ending here (0 = no key)
        self.best = 0  # max key weight in this subtree (incl. self)


class Trie:
    """Weighted string trie supporting add, exact lookup, and top-k
    completion."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def add(self, key: str, weight: int = 1) -> None:
        """Add ``weight`` to ``key``'s weight (inserting it if new)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        node = self._root
        path = [node]
        for ch in key:
            node = node.children.setdefault(ch, _TrieNode())
            path.append(node)
        if node.weight == 0:
            self._size += 1
        node.weight += weight
        for visited in path:
            if node.weight > visited.best:
                visited.best = node.weight

    def weight(self, key: str) -> int:
        """Weight of ``key``, or 0 if absent."""
        node = self._find(key)
        return node.weight if node else 0

    def __contains__(self, key: str) -> bool:
        return self.weight(key) > 0

    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._size

    def _find(self, prefix: str) -> _TrieNode | None:
        node = self._root
        for ch in prefix:
            node = node.children.get(ch)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def complete(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        """Top-``k`` keys starting with ``prefix``, by descending weight.

        Ties break alphabetically.  Runs best-first over subtree-max
        weights, so the cost is O(|prefix| + k · branch) rather than the
        size of the matching subtree.
        """
        start = self._find(prefix)
        if start is None or k <= 0:
            return []
        results: list[tuple[str, int]] = []
        counter = itertools.count()
        # Max-heap over two entry kinds:
        #   node entries, keyed by the subtree's best key weight (an upper
        #   bound on every key below), and
        #   key entries, keyed by the key's own weight.
        # A popped *key* entry is final: nothing still in the heap can beat
        # it.  Ties break lexicographically via the key in the sort key.
        heap: list[tuple[int, str, int, _TrieNode | None]] = [
            (-start.best, prefix, next(counter), start)
        ]
        while heap and len(results) < k:
            negative_weight, key, _, node = heapq.heappop(heap)
            if node is None:
                results.append((key, -negative_weight))
                continue
            if node.weight > 0:
                heapq.heappush(heap, (-node.weight, key, next(counter), None))
            for ch, child in node.children.items():
                heapq.heappush(heap, (-child.best, key + ch, next(counter), child))
        return results

    def iter_prefix(self, prefix: str) -> Iterator[tuple[str, int]]:
        """All keys with ``prefix`` (lexicographic order), with weights."""
        start = self._find(prefix)
        if start is None:
            return
        stack: list[tuple[str, _TrieNode]] = [(prefix, start)]
        while stack:
            key, node = stack.pop()
            if node.weight > 0:
                yield key, node.weight
            for ch in sorted(node.children, reverse=True):
                stack.append((key + ch, node.children[ch]))

    def items(self) -> Iterator[tuple[str, int]]:
        """All keys with weights, lexicographic order."""
        return self.iter_prefix("")
