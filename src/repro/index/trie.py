"""A weighted trie with top-k prefix completion.

Every inserted key carries a non-negative weight (occurrence count).  Each
trie node caches the *maximum* weight in its subtree, which lets
:meth:`Trie.complete` run a best-first search that touches only the
branches that can still contribute to the top-k — the property that keeps
LotusX completions "on-the-fly" even on large vocabularies.

Nodes are plain three-slot lists ``[weight, best, children]`` rather than
objects: the snapshot layer pickles completion tries wholesale, and a
pure-container representation (lists, dicts, ints, strings) deserializes
at C speed with no per-node Python calls — measured ~4x faster than an
equivalent ``__slots__`` node class on real corpora.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator

#: Indexes into a node list ``[weight, best, children]``.
_WEIGHT, _BEST, _CHILDREN = 0, 1, 2

#: A trie node: ``[weight of the key ending here (0 = no key),
#:                max key weight in this subtree, {char: child node}]``.
TrieNode = list


def _new_node() -> TrieNode:
    return [0, 0, {}]


class Trie:
    """Weighted string trie supporting add, exact lookup, and top-k
    completion."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: TrieNode = _new_node()
        self._size = 0

    def add(self, key: str, weight: int = 1) -> None:
        """Add ``weight`` to ``key``'s weight (inserting it if new)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        node = self._root
        path = [node]
        for ch in key:
            children = node[_CHILDREN]
            node = children.get(ch)
            if node is None:
                node = _new_node()
                children[ch] = node
            path.append(node)
        if node[_WEIGHT] == 0:
            self._size += 1
        node[_WEIGHT] += weight
        key_weight = node[_WEIGHT]
        for visited in path:
            if key_weight > visited[_BEST]:
                visited[_BEST] = key_weight

    def weight(self, key: str) -> int:
        """Weight of ``key``, or 0 if absent."""
        node = self._find(key)
        return node[_WEIGHT] if node is not None else 0

    def __contains__(self, key: str) -> bool:
        return self.weight(key) > 0

    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._size

    def _find(self, prefix: str) -> TrieNode | None:
        node = self._root
        for ch in prefix:
            node = node[_CHILDREN].get(ch)
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def complete(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        """Top-``k`` keys starting with ``prefix``, by descending weight.

        Ties break alphabetically.  Runs best-first over subtree-max
        weights, so the cost is O(|prefix| + k · branch) rather than the
        size of the matching subtree.
        """
        start = self._find(prefix)
        if start is None or k <= 0:
            return []
        results: list[tuple[str, int]] = []
        counter = itertools.count()
        # Max-heap over two entry kinds:
        #   node entries, keyed by the subtree's best key weight (an upper
        #   bound on every key below), and
        #   key entries, keyed by the key's own weight.
        # A popped *key* entry is final: nothing still in the heap can beat
        # it.  Ties break lexicographically via the key in the sort key.
        heap: list[tuple[int, str, int, TrieNode | None]] = [
            (-start[_BEST], prefix, next(counter), start)
        ]
        while heap and len(results) < k:
            negative_weight, key, _, node = heapq.heappop(heap)
            if node is None:
                results.append((key, -negative_weight))
                continue
            if node[_WEIGHT] > 0:
                heapq.heappush(heap, (-node[_WEIGHT], key, next(counter), None))
            for ch, child in node[_CHILDREN].items():
                heapq.heappush(heap, (-child[_BEST], key + ch, next(counter), child))
        return results

    def iter_prefix(self, prefix: str) -> Iterator[tuple[str, int]]:
        """All keys with ``prefix`` (lexicographic order), with weights."""
        start = self._find(prefix)
        if start is None:
            return
        stack: list[tuple[str, TrieNode]] = [(prefix, start)]
        while stack:
            key, node = stack.pop()
            if node[_WEIGHT] > 0:
                yield key, node[_WEIGHT]
            children = node[_CHILDREN]
            for ch in sorted(children, reverse=True):
                stack.append((key + ch, children[ch]))

    def items(self) -> Iterator[tuple[str, int]]:
        """All keys with weights, lexicographic order."""
        return self.iter_prefix("")

    # ------------------------------------------------------------------
    # Pickling (snapshot support)
    # ------------------------------------------------------------------

    def __getstate__(self):
        return (self._root, self._size)

    def __setstate__(self, state) -> None:
        self._root, self._size = state
