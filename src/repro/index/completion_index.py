"""Completion indexes: the data structures behind LotusX auto-completion.

Two families of tries are maintained:

* **tag completion** — one global trie of tag names weighted by element
  count.  Position-awareness for tags comes from the DataGuide (the
  candidate *set* is restricted first, then weighted), so no per-path tag
  tries are needed.
* **value completion** — per DataGuide path node, a trie of tokens and a
  trie of whole (normalized) values occurring in elements *at that path*.
  This is the position-aware side: when the user types a value into a twig
  node, only values that actually occur at the node's possible positions
  are proposed.  A global token/value trie pair is kept as the
  position-blind baseline (experiment E3) and as a fallback for wildcard
  nodes.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.index.term_index import TermIndex
from repro.index.text import completion_value, tokenize
from repro.index.trie import Trie
from repro.labeling.assign import LabeledDocument


class CompletionIndex:
    """All completion tries for one labeled document."""

    def __init__(self, labeled: LabeledDocument, term_index: TermIndex) -> None:
        self._labeled = labeled
        self._term_index = term_index
        self.tag_trie = Trie()
        self.global_token_trie = Trie()
        self.global_value_trie = Trie()
        self._path_token_tries: dict[int, Trie] = {}
        self._path_value_tries: dict[int, Trie] = {}
        self._build()

    def _build(self) -> None:
        for path_node in self._labeled.guide.iter_nodes():
            self.tag_trie.add(path_node.tag, path_node.count)
        for labeled_element in self._labeled.elements:
            text = labeled_element.element.direct_text
            if not text.strip():
                continue
            path_id = labeled_element.path_node.node_id
            tokens = tokenize(text)
            if tokens:
                token_trie = self._path_token_tries.setdefault(path_id, Trie())
                for token in tokens:
                    token_trie.add(token)
                    self.global_token_trie.add(token)
            value = completion_value(text)
            if value is not None:
                self._path_value_tries.setdefault(path_id, Trie()).add(value)
                self.global_value_trie.add(value)

    # ------------------------------------------------------------------
    # Tag completion
    # ------------------------------------------------------------------

    def complete_tag(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        """Top-k tag names by element count (position-blind)."""
        return self.tag_trie.complete(prefix.lower(), k)

    # ------------------------------------------------------------------
    # Value completion
    # ------------------------------------------------------------------

    def complete_value_at(
        self, path_ids: Iterable[int], prefix: str, k: int = 10
    ) -> list[tuple[str, int]]:
        """Top-k whole values with ``prefix`` occurring at any of the given
        DataGuide path nodes (position-aware)."""
        return _merge_completions(
            (self._path_value_tries.get(pid) for pid in path_ids), prefix, k
        )

    def complete_token_at(
        self, path_ids: Iterable[int], prefix: str, k: int = 10
    ) -> list[tuple[str, int]]:
        """Top-k text tokens with ``prefix`` at the given path nodes."""
        return _merge_completions(
            (self._path_token_tries.get(pid) for pid in path_ids), prefix, k
        )

    def complete_value_global(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        """Position-blind whole-value completion (baseline)."""
        return self.global_value_trie.complete(prefix.lower(), k)

    def complete_token_global(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        """Position-blind token completion (baseline)."""
        return self.global_token_trie.complete(prefix.lower(), k)

    def path_has_values(self, path_id: int) -> bool:
        """True if any completable value occurs at this path node."""
        return path_id in self._path_value_tries or path_id in self._path_token_tries


def _merge_completions(
    tries: Iterable[Trie | None], prefix: str, k: int
) -> list[tuple[str, int]]:
    """Union per-trie top-k lists, summing weights for shared keys.

    Each contributing trie yields its own top-k; summing over at most
    ``len(tries) * k`` entries keeps the merge cheap while remaining exact
    for any key whose total weight places it in the merged top-k.
    """
    merged: dict[str, int] = {}
    normalized = prefix.lower()
    for trie in tries:
        if trie is None:
            continue
        for key, weight in trie.complete(normalized, k):
            merged[key] = merged.get(key, 0) + weight
    ranked = sorted(merged.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]
